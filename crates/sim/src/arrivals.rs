//! Arrival processes: live Poisson, bursty, and Markov-modulated streams,
//! plus frozen traces.
//!
//! The coupling experiments of Theorem 3 need *the same* arrival sequence
//! (times, classes, and sizes) replayed under different policies, so arrival
//! generation is separated from the simulator: a [`PoissonStream`],
//! [`BurstyStream`], or [`MapStream`] samples lazily, while an
//! [`ArrivalTrace`] freezes a finite sequence that a [`TraceStream`]
//! replays verbatim — including from a trace file on disk
//! ([`ArrivalTrace::load`] / [`ArrivalTrace::save`]).
//!
//! All exponential draws route through the one shared inverse-CDF helper
//! [`eirs_queueing::distributions::exp_inverse_cdf`] so the Poisson, MAP,
//! and trace paths stay numerically consistent.

use crate::job::JobClass;
use eirs_queueing::distributions::{exp_inverse_cdf, SizeDistribution};
use eirs_queueing::MapProcess;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, Write};

/// One arriving job: when, which class, how much work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival epoch.
    pub time: f64,
    /// Job class.
    pub class: JobClass,
    /// Inherent size (work).
    pub size: f64,
}

/// A source of arrivals consumed by the simulator.
pub trait ArrivalSource {
    /// The next arrival, or `None` when the source is exhausted.
    fn next_arrival(&mut self) -> Option<Arrival>;
}

/// Two independent Poisson streams (one per class) with per-class size
/// distributions — the stochastic model of the paper.
pub struct PoissonStream {
    lambda_i: f64,
    lambda_e: f64,
    size_i: Box<dyn SizeDistribution>,
    size_e: Box<dyn SizeDistribution>,
    rng: StdRng,
    next_i: f64,
    next_e: f64,
}

impl PoissonStream {
    /// A stream with inelastic rate `lambda_i`, elastic rate `lambda_e`, and
    /// the given size distributions. Rates may be zero (that class never
    /// arrives).
    pub fn new(
        lambda_i: f64,
        lambda_e: f64,
        size_i: Box<dyn SizeDistribution>,
        size_e: Box<dyn SizeDistribution>,
        seed: u64,
    ) -> Self {
        assert!(lambda_i >= 0.0 && lambda_e >= 0.0);
        assert!(lambda_i + lambda_e > 0.0, "at least one class must arrive");
        let mut rng = StdRng::seed_from_u64(seed);
        let next_i = sample_interarrival(&mut rng, lambda_i);
        let next_e = sample_interarrival(&mut rng, lambda_e);
        Self {
            lambda_i,
            lambda_e,
            size_i,
            size_e,
            rng,
            next_i,
            next_e,
        }
    }
}

fn sample_interarrival(rng: &mut StdRng, rate: f64) -> f64 {
    if rate == 0.0 {
        f64::INFINITY
    } else {
        // 1 − u maps the generator's [0, 1) draw into (0, 1], the domain
        // of the shared inverse CDF.
        let u: f64 = rng.random();
        exp_inverse_cdf(1.0 - u, rate)
    }
}

impl ArrivalSource for PoissonStream {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let (time, class) = if self.next_i <= self.next_e {
            (self.next_i, JobClass::Inelastic)
        } else {
            (self.next_e, JobClass::Elastic)
        };
        let size = match class {
            JobClass::Inelastic => {
                self.next_i = time + sample_interarrival(&mut self.rng, self.lambda_i);
                self.size_i.sample(&mut self.rng)
            }
            JobClass::Elastic => {
                self.next_e = time + sample_interarrival(&mut self.rng, self.lambda_e);
                self.size_e.sample(&mut self.rng)
            }
        };
        Some(Arrival { time, class, size })
    }
}

/// Batch-Poisson ("bursty") arrivals: bursts arrive as a Poisson process
/// and each burst delivers a geometric number of jobs at the same instant.
///
/// The paper's optimality proofs for IF are sample-path arguments that
/// never use the Poisson assumption, so IF's dominance should survive
/// bursty traffic — the `thm3_dominance` experiments use this stream to
/// check exactly that.
pub struct BurstyStream {
    burst_rate: f64,
    /// Geometric continuation probability: mean burst size `1/(1-q)`.
    continue_prob: f64,
    inelastic_fraction: f64,
    size_i: Box<dyn SizeDistribution>,
    size_e: Box<dyn SizeDistribution>,
    rng: StdRng,
    next_burst: f64,
    /// Jobs still to emit from the current burst.
    pending_in_burst: u32,
}

impl BurstyStream {
    /// Bursts at rate `burst_rate`; each burst has `Geometric` size with
    /// continuation probability `continue_prob ∈ [0, 1)` (mean
    /// `1/(1-continue_prob)`); each job is inelastic with probability
    /// `inelastic_fraction`.
    pub fn new(
        burst_rate: f64,
        continue_prob: f64,
        inelastic_fraction: f64,
        size_i: Box<dyn SizeDistribution>,
        size_e: Box<dyn SizeDistribution>,
        seed: u64,
    ) -> Self {
        assert!(burst_rate > 0.0);
        assert!((0.0..1.0).contains(&continue_prob));
        assert!((0.0..=1.0).contains(&inelastic_fraction));
        let mut rng = StdRng::seed_from_u64(seed);
        let next_burst = sample_interarrival(&mut rng, burst_rate);
        Self {
            burst_rate,
            continue_prob,
            inelastic_fraction,
            size_i,
            size_e,
            rng,
            next_burst,
            pending_in_burst: 1,
        }
    }

    /// Mean number of jobs per burst.
    pub fn mean_burst_size(&self) -> f64 {
        1.0 / (1.0 - self.continue_prob)
    }

    /// Effective per-job arrival rate `burst_rate · mean_burst_size`.
    pub fn job_rate(&self) -> f64 {
        self.burst_rate * self.mean_burst_size()
    }
}

impl ArrivalSource for BurstyStream {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let time = self.next_burst;
        let class = if self.rng.random::<f64>() < self.inelastic_fraction {
            JobClass::Inelastic
        } else {
            JobClass::Elastic
        };
        let size = match class {
            JobClass::Inelastic => self.size_i.sample(&mut self.rng),
            JobClass::Elastic => self.size_e.sample(&mut self.rng),
        };
        // Decide whether the burst continues.
        if self.rng.random::<f64>() < self.continue_prob {
            self.pending_in_burst += 1;
        } else {
            self.pending_in_burst = 1;
            self.next_burst = time + sample_interarrival(&mut self.rng, self.burst_rate);
        }
        Some(Arrival { time, class, size })
    }
}

/// Arrivals from a Markovian arrival process ([`MapProcess`]): a hidden
/// phase modulates the instantaneous arrival intensity, producing
/// correlated, bursty interarrival times. Each arrival is marked
/// inelastic with probability `inelastic_fraction` and draws its size
/// from the matching class distribution.
///
/// Randomness is consumed in a **documented, fixed order** (the
/// single-phase degeneracy property test reconstructs the stream draw by
/// draw): one uniform up front for the initial phase, then per event one
/// uniform for the holding time, one for the transition choice, and — on
/// arrival events only — one for the class mark followed by the size
/// distribution's own draws.
pub struct MapStream {
    map: MapProcess,
    inelastic_fraction: f64,
    size_i: Box<dyn SizeDistribution>,
    size_e: Box<dyn SizeDistribution>,
    rng: StdRng,
    phase: usize,
    clock: f64,
}

impl MapStream {
    /// A stream driven by `map`, with the initial phase drawn from the
    /// stationary phase distribution.
    pub fn new(
        map: MapProcess,
        inelastic_fraction: f64,
        size_i: Box<dyn SizeDistribution>,
        size_e: Box<dyn SizeDistribution>,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&inelastic_fraction));
        let mut rng = StdRng::seed_from_u64(seed);
        // Initial phase ~ stationary distribution (one uniform, always).
        let u: f64 = rng.random();
        let pi = map.stationary_phases();
        let mut phase = pi.len() - 1;
        let mut cum = 0.0;
        for (m, &mass) in pi.iter().enumerate() {
            cum += mass;
            if u < cum {
                phase = m;
                break;
            }
        }
        Self {
            map,
            inelastic_fraction,
            size_i,
            size_e,
            rng,
            phase,
            clock: 0.0,
        }
    }

    /// The driving process.
    pub fn map(&self) -> &MapProcess {
        &self.map
    }

    /// Stationary per-job arrival rate of the stream.
    pub fn job_rate(&self) -> f64 {
        self.map.arrival_rate()
    }
}

impl ArrivalSource for MapStream {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let p = self.map.phases();
        let (d0, d1) = (self.map.d0(), self.map.d1());
        loop {
            let m = self.phase;
            let mut total = 0.0;
            for b in 0..p {
                total += d1[(m, b)];
                if b != m {
                    total += d0[(m, b)];
                }
            }
            self.clock += sample_interarrival(&mut self.rng, total);
            // Transition choice: arrival transitions (D1) first, then
            // silent phase changes (D0 off-diagonals), in phase order.
            let pick: f64 = self.rng.random::<f64>() * total;
            let mut cum = 0.0;
            let (arrival, next) = 'select: {
                for b in 0..p {
                    cum += d1[(m, b)];
                    if pick < cum {
                        break 'select (true, b);
                    }
                }
                for b in 0..p {
                    if b == m {
                        continue;
                    }
                    cum += d0[(m, b)];
                    if pick < cum {
                        break 'select (false, b);
                    }
                }
                // Floating-point slack: attribute the residual to the last
                // positive transition, scanning silent ones first so the
                // common diagonal-D1 case still lands on an arrival.
                if let Some(b) = (0..p).rev().find(|&b| b != m && d0[(m, b)] > 0.0) {
                    break 'select (false, b);
                }
                (true, (0..p).rev().find(|&b| d1[(m, b)] > 0.0).unwrap_or(m))
            };
            self.phase = next;
            if arrival {
                let class = if self.rng.random::<f64>() < self.inelastic_fraction {
                    JobClass::Inelastic
                } else {
                    JobClass::Elastic
                };
                let size = match class {
                    JobClass::Inelastic => self.size_i.sample(&mut self.rng),
                    JobClass::Elastic => self.size_e.sample(&mut self.rng),
                };
                return Some(Arrival {
                    time: self.clock,
                    class,
                    size,
                });
            }
        }
    }
}

/// A frozen, finite arrival sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

/// Failures when parsing a trace file.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// Underlying I/O failure (message only, to stay `Clone`/`PartialEq`).
    Io(String),
    /// A malformed line: `(1-based line number, message)`.
    Line(usize, String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(msg) => write!(f, "trace I/O error: {msg}"),
            TraceError::Line(n, msg) => write!(f, "trace line {n}: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl ArrivalTrace {
    /// Builds a trace from explicit arrivals; sorts by time.
    pub fn new(mut arrivals: Vec<Arrival>) -> Self {
        assert!(arrivals.iter().all(|a| a.time >= 0.0 && a.size >= 0.0));
        arrivals.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        Self { arrivals }
    }

    /// Records the first arrivals of a [`PoissonStream`] up to `horizon`.
    pub fn record_poisson(
        lambda_i: f64,
        lambda_e: f64,
        size_i: Box<dyn SizeDistribution>,
        size_e: Box<dyn SizeDistribution>,
        seed: u64,
        horizon: f64,
    ) -> Self {
        let mut stream = PoissonStream::new(lambda_i, lambda_e, size_i, size_e, seed);
        Self::record(&mut stream, horizon)
    }

    /// Freezes the arrivals of any source up to `horizon` (inclusive).
    pub fn record(source: &mut dyn ArrivalSource, horizon: f64) -> Self {
        let mut arrivals = Vec::new();
        while let Some(a) = source.next_arrival() {
            if a.time > horizon {
                break;
            }
            arrivals.push(a);
        }
        Self { arrivals }
    }

    /// Serializes the trace as text: a header comment, then one
    /// `time class size` line per arrival (class is `I` or `E`). Floats are
    /// printed in Rust's shortest round-trippable form, so
    /// [`ArrivalTrace::from_reader`] reproduces every arrival
    /// **bit-exactly**.
    pub fn to_writer(&self, w: &mut dyn Write) -> std::io::Result<()> {
        writeln!(w, "# eirs-arrival-trace v1")?;
        writeln!(w, "# time class size")?;
        for a in &self.arrivals {
            let c = match a.class {
                JobClass::Inelastic => 'I',
                JobClass::Elastic => 'E',
            };
            writeln!(w, "{} {} {}", a.time, c, a.size)?;
        }
        Ok(())
    }

    /// Parses the text format of [`ArrivalTrace::to_writer`]. Blank lines
    /// and `#` comments are skipped; classes accept `I`/`E` or the full
    /// `inelastic`/`elastic` words (case-insensitive); arrivals are sorted
    /// by time on load.
    pub fn from_reader(r: &mut dyn BufRead) -> Result<Self, TraceError> {
        let mut arrivals = Vec::new();
        for (idx, line) in r.lines().enumerate() {
            let line = line.map_err(|e| TraceError::Io(e.to_string()))?;
            let body = line.trim();
            if body.is_empty() || body.starts_with('#') {
                continue;
            }
            let n = idx + 1;
            let mut fields = body.split_whitespace();
            let mut next = |name: &str| {
                fields
                    .next()
                    .ok_or_else(|| TraceError::Line(n, format!("missing {name} field")))
            };
            let time: f64 = next("time")?
                .parse()
                .map_err(|_| TraceError::Line(n, "unparsable time".into()))?;
            let class = match next("class")?.to_ascii_lowercase().as_str() {
                "i" | "inelastic" => JobClass::Inelastic,
                "e" | "elastic" => JobClass::Elastic,
                other => {
                    return Err(TraceError::Line(n, format!("unknown class '{other}'")));
                }
            };
            let size: f64 = next("size")?
                .parse()
                .map_err(|_| TraceError::Line(n, "unparsable size".into()))?;
            if fields.next().is_some() {
                return Err(TraceError::Line(n, "trailing fields".into()));
            }
            if !(time.is_finite() && time >= 0.0) {
                return Err(TraceError::Line(n, format!("invalid time {time}")));
            }
            if !(size.is_finite() && size >= 0.0) {
                return Err(TraceError::Line(n, format!("invalid size {size}")));
            }
            arrivals.push(Arrival { time, class, size });
        }
        Ok(Self::new(arrivals))
    }

    /// Writes the trace to `path` in the [`ArrivalTrace::to_writer`] format.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.to_writer(&mut file)
    }

    /// Loads a trace file written by [`ArrivalTrace::save`] (or by any
    /// external tool emitting `time class size` lines).
    pub fn load(path: &std::path::Path) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Self::from_reader(&mut std::io::BufReader::new(file))
    }

    /// The arrivals, ordered by time.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` when the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Sum of all job sizes (total offered work).
    pub fn total_work(&self) -> f64 {
        self.arrivals.iter().map(|a| a.size).sum()
    }

    /// Streams this trace.
    pub fn stream(&self) -> TraceStream<'_> {
        TraceStream {
            trace: self,
            pos: 0,
        }
    }

    /// Streams this trace by value (for callers that need an owned
    /// [`ArrivalSource`], e.g. boxed sources built from a spec).
    pub fn into_stream(self) -> OwnedTraceStream {
        OwnedTraceStream {
            trace: self,
            pos: 0,
        }
    }
}

/// Replays an [`ArrivalTrace`].
pub struct TraceStream<'a> {
    trace: &'a ArrivalTrace,
    pos: usize,
}

impl ArrivalSource for TraceStream<'_> {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let a = self.trace.arrivals.get(self.pos).copied();
        self.pos += 1;
        a
    }
}

/// Replays an owned [`ArrivalTrace`] (see [`ArrivalTrace::into_stream`]).
pub struct OwnedTraceStream {
    trace: ArrivalTrace,
    pos: usize,
}

impl ArrivalSource for OwnedTraceStream {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let a = self.trace.arrivals.get(self.pos).copied();
        self.pos += 1;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_queueing::Exponential;

    #[test]
    fn poisson_stream_produces_increasing_times_per_class() {
        let mut s = PoissonStream::new(
            1.0,
            2.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            3,
        );
        let mut last = 0.0;
        for _ in 0..1000 {
            let a = s.next_arrival().unwrap();
            assert!(a.time >= last, "arrivals must be time-ordered");
            last = a.time;
            assert!(a.size > 0.0);
        }
    }

    #[test]
    fn poisson_stream_rate_is_statistically_right() {
        let mut s = PoissonStream::new(
            3.0,
            1.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            11,
        );
        let n = 40_000;
        let mut count_i = 0usize;
        let mut t_final = 0.0;
        for _ in 0..n {
            let a = s.next_arrival().unwrap();
            if a.class == JobClass::Inelastic {
                count_i += 1;
            }
            t_final = a.time;
        }
        let total_rate = n as f64 / t_final;
        assert!((total_rate - 4.0).abs() < 0.15, "total rate {total_rate}");
        let frac_i = count_i as f64 / n as f64;
        assert!((frac_i - 0.75).abs() < 0.02, "inelastic fraction {frac_i}");
    }

    #[test]
    fn zero_rate_class_never_arrives() {
        let mut s = PoissonStream::new(
            0.0,
            1.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            5,
        );
        for _ in 0..500 {
            assert_eq!(s.next_arrival().unwrap().class, JobClass::Elastic);
        }
    }

    #[test]
    fn bursty_stream_emits_time_ordered_bursts() {
        let mut s = BurstyStream::new(
            1.0,
            0.6,
            0.5,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            3,
        );
        let mut last = 0.0;
        let mut same_instant = 0usize;
        for _ in 0..5_000 {
            let a = s.next_arrival().unwrap();
            assert!(a.time >= last);
            if a.time == last {
                same_instant += 1;
            }
            last = a.time;
        }
        // With continuation probability 0.6 most arrivals share a burst
        // instant with their predecessor.
        assert!(
            same_instant > 2_000,
            "only {same_instant} same-instant arrivals"
        );
    }

    #[test]
    fn bursty_stream_mean_burst_size() {
        let s = BurstyStream::new(
            2.0,
            0.75,
            0.5,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            4,
        );
        assert!((s.mean_burst_size() - 4.0).abs() < 1e-12);
        assert!((s.job_rate() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn bursty_stream_statistical_job_rate() {
        let mut s = BurstyStream::new(
            1.0,
            0.5,
            1.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            5,
        );
        let n = 40_000;
        let mut t_final = 0.0;
        for _ in 0..n {
            t_final = s.next_arrival().unwrap().time;
        }
        let rate = n as f64 / t_final;
        assert!((rate - 2.0).abs() < 0.1, "job rate {rate}");
    }

    #[test]
    fn trace_round_trip_is_deterministic() {
        let t1 = ArrivalTrace::record_poisson(
            1.0,
            1.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(2.0)),
            7,
            50.0,
        );
        let t2 = ArrivalTrace::record_poisson(
            1.0,
            1.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(2.0)),
            7,
            50.0,
        );
        assert_eq!(t1, t2);
        assert!(!t1.is_empty());
        let replayed: Vec<Arrival> = {
            let mut s = t1.stream();
            std::iter::from_fn(move || s.next_arrival()).collect()
        };
        assert_eq!(replayed.as_slice(), t1.arrivals());
    }

    #[test]
    fn map_stream_poisson_case_has_the_right_rate() {
        let mut s = MapStream::new(
            MapProcess::poisson(2.0),
            0.25,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            17,
        );
        let n = 40_000;
        let mut count_i = 0usize;
        let mut t_final = 0.0;
        for _ in 0..n {
            let a = s.next_arrival().unwrap();
            if a.class == JobClass::Inelastic {
                count_i += 1;
            }
            t_final = a.time;
        }
        let rate = n as f64 / t_final;
        assert!((rate - 2.0).abs() < 0.05, "rate {rate}");
        let frac = count_i as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "inelastic fraction {frac}");
    }

    #[test]
    fn map_stream_mmpp_matches_stationary_rate_and_is_bursty() {
        let map = MapProcess::mmpp2(0.5, 0.5, 3.6, 0.4);
        let want = map.arrival_rate();
        let mut s = MapStream::new(
            map,
            0.5,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            23,
        );
        let n = 60_000;
        let mut times = Vec::with_capacity(n);
        for _ in 0..n {
            times.push(s.next_arrival().unwrap().time);
        }
        let rate = n as f64 / times[n - 1];
        assert!((rate - want).abs() / want < 0.05, "rate {rate} vs {want}");
        // Squared CV of interarrivals > 1 marks the burstiness.
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 1.3, "interarrival cv^2 {cv2} not bursty");
    }

    #[test]
    fn map_stream_is_deterministic_per_seed() {
        let mk = || {
            MapStream::new(
                MapProcess::mmpp2(1.0, 1.0, 4.0, 1.0),
                0.5,
                Box::new(Exponential::new(1.0)),
                Box::new(Exponential::new(2.0)),
                5,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..200 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }

    #[test]
    fn trace_file_round_trip_is_bit_exact() {
        let trace = ArrivalTrace::record_poisson(
            1.3,
            0.7,
            Box::new(Exponential::new(0.8)),
            Box::new(Exponential::new(1.9)),
            99,
            40.0,
        );
        let mut buf = Vec::new();
        trace.to_writer(&mut buf).unwrap();
        let parsed = ArrivalTrace::from_reader(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed, trace, "file round trip must be lossless");
    }

    #[test]
    fn trace_parser_accepts_words_and_rejects_garbage() {
        let good = "# comment\n\n0.5 inelastic 2.0\n1.5 E 1.0\n";
        let t = ArrivalTrace::from_reader(&mut std::io::Cursor::new(good)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.arrivals()[0].class, JobClass::Inelastic);
        for bad in [
            "0.5 I\n",
            "0.5 X 1.0\n",
            "abc I 1.0\n",
            "0.5 I abc\n",
            "0.5 I 1.0 extra\n",
            "-1 I 1.0\n",
            "0.5 I -2\n",
        ] {
            let r = ArrivalTrace::from_reader(&mut std::io::Cursor::new(bad));
            assert!(
                matches!(r, Err(TraceError::Line(1, _))),
                "'{}' should fail, got {r:?}",
                bad.trim()
            );
        }
    }

    #[test]
    fn trace_sorts_out_of_order_input() {
        let t = ArrivalTrace::new(vec![
            Arrival {
                time: 2.0,
                class: JobClass::Elastic,
                size: 1.0,
            },
            Arrival {
                time: 1.0,
                class: JobClass::Inelastic,
                size: 2.0,
            },
        ]);
        assert_eq!(t.arrivals()[0].time, 1.0);
        assert!((t.total_work() - 3.0).abs() < 1e-12);
    }
}
