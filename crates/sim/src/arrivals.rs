//! Arrival processes: live Poisson streams and frozen traces.
//!
//! The coupling experiments of Theorem 3 need *the same* arrival sequence
//! (times, classes, and sizes) replayed under different policies, so arrival
//! generation is separated from the simulator: a [`PoissonStream`] samples
//! lazily, while an [`ArrivalTrace`] freezes a finite sequence that a
//! [`TraceStream`] replays verbatim.

use crate::job::JobClass;
use eirs_queueing::distributions::SizeDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One arriving job: when, which class, how much work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival epoch.
    pub time: f64,
    /// Job class.
    pub class: JobClass,
    /// Inherent size (work).
    pub size: f64,
}

/// A source of arrivals consumed by the simulator.
pub trait ArrivalSource {
    /// The next arrival, or `None` when the source is exhausted.
    fn next_arrival(&mut self) -> Option<Arrival>;
}

/// Two independent Poisson streams (one per class) with per-class size
/// distributions — the stochastic model of the paper.
pub struct PoissonStream {
    lambda_i: f64,
    lambda_e: f64,
    size_i: Box<dyn SizeDistribution>,
    size_e: Box<dyn SizeDistribution>,
    rng: StdRng,
    next_i: f64,
    next_e: f64,
}

impl PoissonStream {
    /// A stream with inelastic rate `lambda_i`, elastic rate `lambda_e`, and
    /// the given size distributions. Rates may be zero (that class never
    /// arrives).
    pub fn new(
        lambda_i: f64,
        lambda_e: f64,
        size_i: Box<dyn SizeDistribution>,
        size_e: Box<dyn SizeDistribution>,
        seed: u64,
    ) -> Self {
        assert!(lambda_i >= 0.0 && lambda_e >= 0.0);
        assert!(lambda_i + lambda_e > 0.0, "at least one class must arrive");
        let mut rng = StdRng::seed_from_u64(seed);
        let next_i = sample_interarrival(&mut rng, lambda_i);
        let next_e = sample_interarrival(&mut rng, lambda_e);
        Self {
            lambda_i,
            lambda_e,
            size_i,
            size_e,
            rng,
            next_i,
            next_e,
        }
    }
}

fn sample_interarrival(rng: &mut StdRng, rate: f64) -> f64 {
    if rate == 0.0 {
        f64::INFINITY
    } else {
        let u: f64 = rng.random();
        -(1.0 - u).ln() / rate
    }
}

impl ArrivalSource for PoissonStream {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let (time, class) = if self.next_i <= self.next_e {
            (self.next_i, JobClass::Inelastic)
        } else {
            (self.next_e, JobClass::Elastic)
        };
        let size = match class {
            JobClass::Inelastic => {
                self.next_i = time + sample_interarrival(&mut self.rng, self.lambda_i);
                self.size_i.sample(&mut self.rng)
            }
            JobClass::Elastic => {
                self.next_e = time + sample_interarrival(&mut self.rng, self.lambda_e);
                self.size_e.sample(&mut self.rng)
            }
        };
        Some(Arrival { time, class, size })
    }
}

/// Batch-Poisson ("bursty") arrivals: bursts arrive as a Poisson process
/// and each burst delivers a geometric number of jobs at the same instant.
///
/// The paper's optimality proofs for IF are sample-path arguments that
/// never use the Poisson assumption, so IF's dominance should survive
/// bursty traffic — the `thm3_dominance` experiments use this stream to
/// check exactly that.
pub struct BurstyStream {
    burst_rate: f64,
    /// Geometric continuation probability: mean burst size `1/(1-q)`.
    continue_prob: f64,
    inelastic_fraction: f64,
    size_i: Box<dyn SizeDistribution>,
    size_e: Box<dyn SizeDistribution>,
    rng: StdRng,
    next_burst: f64,
    /// Jobs still to emit from the current burst.
    pending_in_burst: u32,
}

impl BurstyStream {
    /// Bursts at rate `burst_rate`; each burst has `Geometric` size with
    /// continuation probability `continue_prob ∈ [0, 1)` (mean
    /// `1/(1-continue_prob)`); each job is inelastic with probability
    /// `inelastic_fraction`.
    pub fn new(
        burst_rate: f64,
        continue_prob: f64,
        inelastic_fraction: f64,
        size_i: Box<dyn SizeDistribution>,
        size_e: Box<dyn SizeDistribution>,
        seed: u64,
    ) -> Self {
        assert!(burst_rate > 0.0);
        assert!((0.0..1.0).contains(&continue_prob));
        assert!((0.0..=1.0).contains(&inelastic_fraction));
        let mut rng = StdRng::seed_from_u64(seed);
        let next_burst = sample_interarrival(&mut rng, burst_rate);
        Self {
            burst_rate,
            continue_prob,
            inelastic_fraction,
            size_i,
            size_e,
            rng,
            next_burst,
            pending_in_burst: 1,
        }
    }

    /// Mean number of jobs per burst.
    pub fn mean_burst_size(&self) -> f64 {
        1.0 / (1.0 - self.continue_prob)
    }

    /// Effective per-job arrival rate `burst_rate · mean_burst_size`.
    pub fn job_rate(&self) -> f64 {
        self.burst_rate * self.mean_burst_size()
    }
}

impl ArrivalSource for BurstyStream {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let time = self.next_burst;
        let class = if self.rng.random::<f64>() < self.inelastic_fraction {
            JobClass::Inelastic
        } else {
            JobClass::Elastic
        };
        let size = match class {
            JobClass::Inelastic => self.size_i.sample(&mut self.rng),
            JobClass::Elastic => self.size_e.sample(&mut self.rng),
        };
        // Decide whether the burst continues.
        if self.rng.random::<f64>() < self.continue_prob {
            self.pending_in_burst += 1;
        } else {
            self.pending_in_burst = 1;
            self.next_burst = time + sample_interarrival(&mut self.rng, self.burst_rate);
        }
        Some(Arrival { time, class, size })
    }
}

/// A frozen, finite arrival sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

impl ArrivalTrace {
    /// Builds a trace from explicit arrivals; sorts by time.
    pub fn new(mut arrivals: Vec<Arrival>) -> Self {
        assert!(arrivals.iter().all(|a| a.time >= 0.0 && a.size >= 0.0));
        arrivals.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        Self { arrivals }
    }

    /// Records the first arrivals of a [`PoissonStream`] up to `horizon`.
    pub fn record_poisson(
        lambda_i: f64,
        lambda_e: f64,
        size_i: Box<dyn SizeDistribution>,
        size_e: Box<dyn SizeDistribution>,
        seed: u64,
        horizon: f64,
    ) -> Self {
        let mut stream = PoissonStream::new(lambda_i, lambda_e, size_i, size_e, seed);
        let mut arrivals = Vec::new();
        while let Some(a) = stream.next_arrival() {
            if a.time > horizon {
                break;
            }
            arrivals.push(a);
        }
        Self { arrivals }
    }

    /// The arrivals, ordered by time.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// `true` when the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Sum of all job sizes (total offered work).
    pub fn total_work(&self) -> f64 {
        self.arrivals.iter().map(|a| a.size).sum()
    }

    /// Streams this trace.
    pub fn stream(&self) -> TraceStream<'_> {
        TraceStream {
            trace: self,
            pos: 0,
        }
    }
}

/// Replays an [`ArrivalTrace`].
pub struct TraceStream<'a> {
    trace: &'a ArrivalTrace,
    pos: usize,
}

impl ArrivalSource for TraceStream<'_> {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let a = self.trace.arrivals.get(self.pos).copied();
        self.pos += 1;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_queueing::Exponential;

    #[test]
    fn poisson_stream_produces_increasing_times_per_class() {
        let mut s = PoissonStream::new(
            1.0,
            2.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            3,
        );
        let mut last = 0.0;
        for _ in 0..1000 {
            let a = s.next_arrival().unwrap();
            assert!(a.time >= last, "arrivals must be time-ordered");
            last = a.time;
            assert!(a.size > 0.0);
        }
    }

    #[test]
    fn poisson_stream_rate_is_statistically_right() {
        let mut s = PoissonStream::new(
            3.0,
            1.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            11,
        );
        let n = 40_000;
        let mut count_i = 0usize;
        let mut t_final = 0.0;
        for _ in 0..n {
            let a = s.next_arrival().unwrap();
            if a.class == JobClass::Inelastic {
                count_i += 1;
            }
            t_final = a.time;
        }
        let total_rate = n as f64 / t_final;
        assert!((total_rate - 4.0).abs() < 0.15, "total rate {total_rate}");
        let frac_i = count_i as f64 / n as f64;
        assert!((frac_i - 0.75).abs() < 0.02, "inelastic fraction {frac_i}");
    }

    #[test]
    fn zero_rate_class_never_arrives() {
        let mut s = PoissonStream::new(
            0.0,
            1.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            5,
        );
        for _ in 0..500 {
            assert_eq!(s.next_arrival().unwrap().class, JobClass::Elastic);
        }
    }

    #[test]
    fn bursty_stream_emits_time_ordered_bursts() {
        let mut s = BurstyStream::new(
            1.0,
            0.6,
            0.5,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            3,
        );
        let mut last = 0.0;
        let mut same_instant = 0usize;
        for _ in 0..5_000 {
            let a = s.next_arrival().unwrap();
            assert!(a.time >= last);
            if a.time == last {
                same_instant += 1;
            }
            last = a.time;
        }
        // With continuation probability 0.6 most arrivals share a burst
        // instant with their predecessor.
        assert!(
            same_instant > 2_000,
            "only {same_instant} same-instant arrivals"
        );
    }

    #[test]
    fn bursty_stream_mean_burst_size() {
        let s = BurstyStream::new(
            2.0,
            0.75,
            0.5,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            4,
        );
        assert!((s.mean_burst_size() - 4.0).abs() < 1e-12);
        assert!((s.job_rate() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn bursty_stream_statistical_job_rate() {
        let mut s = BurstyStream::new(
            1.0,
            0.5,
            1.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            5,
        );
        let n = 40_000;
        let mut t_final = 0.0;
        for _ in 0..n {
            t_final = s.next_arrival().unwrap().time;
        }
        let rate = n as f64 / t_final;
        assert!((rate - 2.0).abs() < 0.1, "job rate {rate}");
    }

    #[test]
    fn trace_round_trip_is_deterministic() {
        let t1 = ArrivalTrace::record_poisson(
            1.0,
            1.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(2.0)),
            7,
            50.0,
        );
        let t2 = ArrivalTrace::record_poisson(
            1.0,
            1.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(2.0)),
            7,
            50.0,
        );
        assert_eq!(t1, t2);
        assert!(!t1.is_empty());
        let replayed: Vec<Arrival> = {
            let mut s = t1.stream();
            std::iter::from_fn(move || s.next_arrival()).collect()
        };
        assert_eq!(replayed.as_slice(), t1.arrivals());
    }

    #[test]
    fn trace_sorts_out_of_order_input() {
        let t = ArrivalTrace::new(vec![
            Arrival {
                time: 2.0,
                class: JobClass::Elastic,
                size: 1.0,
            },
            Arrival {
                time: 1.0,
                class: JobClass::Inelastic,
                size: 2.0,
            },
        ]);
        assert_eq!(t.arrivals()[0].time, 1.0);
        assert!((t.total_work() - 3.0).abs() < 1e-12);
    }
}
