//! Streaming binary trace storage and cluster-log import.
//!
//! [`crate::arrivals::ArrivalTrace`] is a text format that materializes
//! every arrival in RAM — fine for test fixtures, wrong for the
//! million-to-billion-arrival traces a production replay needs. This
//! module adds the scale path:
//!
//! * **Binary trace format** (`eirs-bt v1`): a 16-byte header (8-byte
//!   magic+version tag, 8-byte little-endian record count) followed by
//!   fixed-width 24-byte records (`f64` time, `f64` size, class byte,
//!   7 reserved zero bytes). Raw IEEE-754 bits are stored, so a binary ⇄
//!   text round-trip is **bit-exact** (the text format prints shortest
//!   round-trippable floats). The record count plus the fixed record
//!   width make truncation detectable: a file whose length disagrees
//!   with its header is rejected at open, never silently shortened —
//!   the same contract the text parser enforces per line.
//! * **[`BinaryTraceReader`]**: a chunked [`ArrivalSource`] that streams
//!   records through a fixed-size buffer, so replay memory is
//!   independent of trace length. [`open_trace_source`] sniffs the magic
//!   and picks the streaming reader for binary files and the in-memory
//!   text loader otherwise, which is how `trace:<path>` workload specs
//!   transparently accept either format.
//! * **SWF import** ([`import_swf`]): maps the standard workload format
//!   used by public cluster logs (and the malleable-HPC evaluations) to
//!   elastic/inelastic arrivals — multi-processor jobs are elastic
//!   (they can scale across servers), single-processor jobs are
//!   inelastic, and a job's size is its total CPU-seconds of work.

use crate::arrivals::{Arrival, ArrivalSource, ArrivalTrace, TraceError};
use crate::job::JobClass;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic + version tag opening every binary trace file.
pub const BINARY_TRACE_MAGIC: [u8; 8] = *b"eirsbt01";

/// Bytes per fixed-width binary record.
pub const BINARY_RECORD_BYTES: usize = 24;

/// Bytes in the binary header (magic + record count).
pub const BINARY_HEADER_BYTES: usize = 16;

/// Records buffered per refill by [`BinaryTraceReader`]; bounds replay
/// memory at `CHUNK_RECORDS * BINARY_RECORD_BYTES` bytes regardless of
/// trace length.
const CHUNK_RECORDS: usize = 4096;

fn io_err(e: std::io::Error) -> TraceError {
    TraceError::Io(e.to_string())
}

fn encode_record(a: &Arrival, out: &mut [u8; BINARY_RECORD_BYTES]) {
    out[0..8].copy_from_slice(&a.time.to_bits().to_le_bytes());
    out[8..16].copy_from_slice(&a.size.to_bits().to_le_bytes());
    out[16] = match a.class {
        JobClass::Inelastic => 0,
        JobClass::Elastic => 1,
    };
    out[17..].fill(0);
}

fn decode_record(index: u64, raw: &[u8]) -> Result<Arrival, TraceError> {
    let rec = index as usize + 1; // 1-based, like text line numbers
    let time = f64::from_bits(u64::from_le_bytes(raw[0..8].try_into().expect("8 bytes")));
    let size = f64::from_bits(u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes")));
    let class = match raw[16] {
        0 => JobClass::Inelastic,
        1 => JobClass::Elastic,
        other => {
            return Err(TraceError::Line(rec, format!("invalid class byte {other}")));
        }
    };
    if !(time.is_finite() && time >= 0.0) {
        return Err(TraceError::Line(rec, format!("invalid time {time}")));
    }
    if !(size.is_finite() && size >= 0.0) {
        return Err(TraceError::Line(rec, format!("invalid size {size}")));
    }
    Ok(Arrival { time, class, size })
}

/// Incremental writer for the binary trace format.
///
/// Records must be pushed in nondecreasing time order (the reader streams
/// and cannot sort); [`BinaryTraceWriter::push`] rejects out-of-order
/// arrivals. The header's record count is back-filled by
/// [`BinaryTraceWriter::finish`] — an unfinished file has count
/// `u64::MAX` and fails validation at open, so a writer crash can never
/// masquerade as a complete trace.
pub struct BinaryTraceWriter {
    out: BufWriter<File>,
    count: u64,
    last_time: f64,
}

impl BinaryTraceWriter {
    /// Creates `path` and writes the provisional header.
    pub fn create(path: &Path) -> Result<Self, TraceError> {
        let mut out = BufWriter::new(File::create(path).map_err(io_err)?);
        out.write_all(&BINARY_TRACE_MAGIC).map_err(io_err)?;
        // Provisional count: u64::MAX never matches a real file length.
        out.write_all(&u64::MAX.to_le_bytes()).map_err(io_err)?;
        Ok(Self {
            out,
            count: 0,
            last_time: f64::NEG_INFINITY,
        })
    }

    /// Appends one arrival. Errors on negative/non-finite fields or a
    /// time earlier than the previous record.
    pub fn push(&mut self, a: &Arrival) -> Result<(), TraceError> {
        let rec = self.count as usize + 1;
        if !(a.time.is_finite() && a.time >= 0.0) {
            return Err(TraceError::Line(rec, format!("invalid time {}", a.time)));
        }
        if !(a.size.is_finite() && a.size >= 0.0) {
            return Err(TraceError::Line(rec, format!("invalid size {}", a.size)));
        }
        if a.time < self.last_time {
            return Err(TraceError::Line(
                rec,
                format!(
                    "out-of-order arrival at t={} after t={}",
                    a.time, self.last_time
                ),
            ));
        }
        self.last_time = a.time;
        let mut raw = [0u8; BINARY_RECORD_BYTES];
        encode_record(a, &mut raw);
        self.out.write_all(&raw).map_err(io_err)?;
        self.count += 1;
        Ok(())
    }

    /// Back-fills the header record count and flushes. Returns the number
    /// of records written.
    pub fn finish(mut self) -> Result<u64, TraceError> {
        self.out.flush().map_err(io_err)?;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(8)).map_err(io_err)?;
        file.write_all(&self.count.to_le_bytes()).map_err(io_err)?;
        file.flush().map_err(io_err)?;
        Ok(self.count)
    }
}

/// Writes a whole in-memory [`ArrivalTrace`] to `path` in the binary
/// format. The text and binary files of the same trace decode to
/// bit-identical arrivals.
pub fn save_binary(trace: &ArrivalTrace, path: &Path) -> Result<u64, TraceError> {
    let mut w = BinaryTraceWriter::create(path)?;
    for a in trace.arrivals() {
        w.push(a)?;
    }
    w.finish()
}

/// Loads a whole binary trace into memory (test-scale convenience; use
/// [`BinaryTraceReader`] for replay at scale).
pub fn load_binary(path: &Path) -> Result<ArrivalTrace, TraceError> {
    let mut reader = BinaryTraceReader::open(path)?;
    let mut arrivals = Vec::with_capacity(reader.len() as usize);
    while let Some(a) = reader.next_arrival() {
        arrivals.push(a);
    }
    Ok(ArrivalTrace::new(arrivals))
}

/// A chunked, bounded-memory [`ArrivalSource`] over a binary trace file.
///
/// Validation happens at [`BinaryTraceReader::open`]: the magic, the
/// header/file-length agreement (every truncation is caught before the
/// first record is served), and a full streaming pass over the records
/// (class bytes, finite nonnegative fields, nondecreasing times). After
/// `open` succeeds, replay itself can no longer fail — `next_arrival`
/// simply refills a fixed 4096-record buffer, so peak memory is
/// independent of trace length.
pub struct BinaryTraceReader {
    file: BufReader<File>,
    total: u64,
    served: u64,
    chunk: Vec<Arrival>,
    chunk_pos: usize,
}

impl std::fmt::Debug for BinaryTraceReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinaryTraceReader")
            .field("total", &self.total)
            .field("served", &self.served)
            .finish()
    }
}

impl BinaryTraceReader {
    /// Opens and fully validates `path`, then rewinds to the first record.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let file = File::open(path).map_err(io_err)?;
        let actual_len = file.metadata().map_err(io_err)?.len();
        let mut reader = BufReader::new(file);

        let mut header = [0u8; BINARY_HEADER_BYTES];
        if actual_len < BINARY_HEADER_BYTES as u64 {
            return Err(TraceError::Io(format!(
                "binary trace header truncated: {actual_len} bytes, need {BINARY_HEADER_BYTES}"
            )));
        }
        reader.read_exact(&mut header).map_err(io_err)?;
        if header[0..8] != BINARY_TRACE_MAGIC {
            return Err(TraceError::Io(format!(
                "bad binary trace magic {:02x?} (expected {:02x?} — not an eirs binary trace, \
                 or an unsupported version)",
                &header[0..8],
                BINARY_TRACE_MAGIC
            )));
        }
        let total = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let expect_len = BINARY_HEADER_BYTES as u64
            + total
                .checked_mul(BINARY_RECORD_BYTES as u64)
                .ok_or_else(|| TraceError::Io(format!("absurd record count {total}")))?;
        if actual_len != expect_len {
            return Err(TraceError::Io(format!(
                "binary trace length mismatch: header claims {total} records \
                 ({expect_len} bytes), file is {actual_len} bytes \
                 (truncated or unfinished write)"
            )));
        }

        let mut me = Self {
            file: reader,
            total,
            served: 0,
            chunk: Vec::new(),
            chunk_pos: 0,
        };
        // Validation pass: stream every record once (bounded memory),
        // checking payloads and time ordering, then rewind. Replay after
        // a successful open cannot hit a decode error.
        let mut last_time = f64::NEG_INFINITY;
        let mut index = 0u64;
        loop {
            let batch = me.refill()?;
            if batch == 0 {
                break;
            }
            for a in &me.chunk {
                if a.time < last_time {
                    return Err(TraceError::Line(
                        index as usize + 1,
                        format!("out-of-order arrival at t={} after t={}", a.time, last_time),
                    ));
                }
                last_time = a.time;
                index += 1;
            }
        }
        me.file
            .seek(SeekFrom::Start(BINARY_HEADER_BYTES as u64))
            .map_err(io_err)?;
        me.served = 0;
        me.chunk.clear();
        me.chunk_pos = 0;
        Ok(me)
    }

    /// Total records in the trace (from the validated header).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Reads the next chunk into the buffer; returns records decoded.
    fn refill(&mut self) -> Result<usize, TraceError> {
        self.chunk.clear();
        self.chunk_pos = 0;
        let remaining = self.total - self.served;
        let take = remaining.min(CHUNK_RECORDS as u64) as usize;
        if take == 0 {
            return Ok(0);
        }
        let mut raw = vec![0u8; take * BINARY_RECORD_BYTES];
        self.file.read_exact(&mut raw).map_err(io_err)?;
        for i in 0..take {
            let a = decode_record(
                self.served + i as u64,
                &raw[i * BINARY_RECORD_BYTES..(i + 1) * BINARY_RECORD_BYTES],
            )?;
            self.chunk.push(a);
        }
        self.served += take as u64;
        Ok(take)
    }
}

impl ArrivalSource for BinaryTraceReader {
    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.chunk_pos >= self.chunk.len() {
            // Open validated the whole file; a refill error here would
            // mean the file changed underneath us mid-replay.
            let n = self.refill().expect("binary trace validated at open");
            if n == 0 {
                return None;
            }
        }
        let a = self.chunk[self.chunk_pos];
        self.chunk_pos += 1;
        Some(a)
    }
}

/// `true` when `path` opens with [`BINARY_TRACE_MAGIC`] (i.e. is a
/// binary trace rather than the text format). Only reads 8 bytes.
pub fn sniff_binary(path: &Path) -> Result<bool, TraceError> {
    let mut probe = [0u8; 8];
    let mut file = File::open(path).map_err(io_err)?;
    match file.read(&mut probe) {
        Ok(n) => Ok(n == 8 && probe == BINARY_TRACE_MAGIC),
        Err(e) => Err(io_err(e)),
    }
}

/// Opens `path` as an [`ArrivalSource`], sniffing the format: files
/// opening with [`BINARY_TRACE_MAGIC`] stream through a
/// [`BinaryTraceReader`] (bounded memory); anything else parses as the
/// text [`ArrivalTrace`] format (in-memory). This is the loader behind
/// `trace:<path>` workload specs.
pub fn open_trace_source(path: &Path) -> Result<Box<dyn ArrivalSource>, TraceError> {
    if sniff_binary(path)? {
        Ok(Box::new(BinaryTraceReader::open(path)?))
    } else {
        Ok(Box::new(ArrivalTrace::load(path)?.into_stream()))
    }
}

/// Import options for [`import_swf`].
#[derive(Debug, Clone)]
pub struct SwfOptions {
    /// Jobs requesting at least this many processors are elastic
    /// (they can spread across servers); below it they are inelastic.
    pub elastic_min_procs: u64,
    /// Keep at most this many jobs (`None` = all).
    pub max_jobs: Option<usize>,
}

impl Default for SwfOptions {
    fn default() -> Self {
        Self {
            elastic_min_procs: 2,
            max_jobs: None,
        }
    }
}

/// Parses a standard workload format (SWF) cluster log into an
/// [`ArrivalTrace`].
///
/// SWF is the interchange format of the parallel workloads archive: `;`
/// header/comment lines, then one whitespace-separated record per job
/// whose first five fields are job number, submit time (seconds), wait
/// time, run time (seconds), and allocated processor count. The mapping
/// to the paper's two-class model:
///
/// * **arrival time** = submit time;
/// * **class** = elastic when the job ran on ≥
///   [`SwfOptions::elastic_min_procs`] processors (a genuinely malleable
///   parallel job), inelastic otherwise;
/// * **size** = run time × processors (total CPU-seconds of work, the
///   unit the DES's unit-speed servers consume).
///
/// Jobs with unknown (`-1`) or zero run time / processor count — failed
/// or cancelled submissions — are skipped. Malformed records are hard
/// errors with their 1-based line number, never silently dropped.
pub fn import_swf(path: &Path, opts: &SwfOptions) -> Result<ArrivalTrace, TraceError> {
    let file = File::open(path).map_err(io_err)?;
    let reader = BufReader::new(file);
    let mut arrivals = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(io_err)?;
        let body = line.trim();
        if body.is_empty() || body.starts_with(';') || body.starts_with('#') {
            continue;
        }
        if let Some(cap) = opts.max_jobs {
            if arrivals.len() >= cap {
                break;
            }
        }
        let n = idx + 1;
        let fields: Vec<&str> = body.split_whitespace().collect();
        if fields.len() < 5 {
            return Err(TraceError::Line(
                n,
                format!("SWF record has {} fields, need at least 5", fields.len()),
            ));
        }
        let num = |i: usize, name: &str| -> Result<f64, TraceError> {
            fields[i]
                .parse::<f64>()
                .map_err(|_| TraceError::Line(n, format!("unparsable {name} '{}'", fields[i])))
        };
        let submit = num(1, "submit time")?;
        let run_time = num(3, "run time")?;
        let procs = num(4, "allocated processors")?;
        if !submit.is_finite() || submit < 0.0 {
            return Err(TraceError::Line(n, format!("invalid submit time {submit}")));
        }
        // -1 marks "unknown" throughout SWF; 0 marks cancelled jobs.
        if run_time <= 0.0 || procs <= 0.0 {
            continue;
        }
        let class = if procs >= opts.elastic_min_procs as f64 {
            JobClass::Elastic
        } else {
            JobClass::Inelastic
        };
        arrivals.push(Arrival {
            time: submit,
            class,
            size: run_time * procs,
        });
    }
    Ok(ArrivalTrace::new(arrivals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::PoissonStream;
    use crate::des::{DesConfig, Simulation};
    use crate::policy::FairShare;
    use eirs_queueing::Exponential;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("eirs-trace-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_trace(n: usize, seed: u64) -> ArrivalTrace {
        let mut s = PoissonStream::new(
            0.6,
            0.9,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(0.7)),
            seed,
        );
        let mut arrivals = Vec::new();
        for _ in 0..n {
            arrivals.push(s.next_arrival().expect("poisson never exhausts"));
        }
        ArrivalTrace::new(arrivals)
    }

    #[test]
    fn binary_round_trip_is_bit_exact() {
        let trace = sample_trace(500, 7);
        let path = tmp("roundtrip.bt");
        assert_eq!(save_binary(&trace, &path).unwrap(), 500);
        let back = load_binary(&path).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.arrivals().iter().zip(back.arrivals()) {
            assert_eq!(a.time.to_bits(), b.time.to_bits());
            assert_eq!(a.size.to_bits(), b.size.to_bits());
            assert_eq!(a.class, b.class);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_trace_round_trips() {
        let path = tmp("empty.bt");
        save_binary(&ArrivalTrace::default(), &path).unwrap();
        let mut r = BinaryTraceReader::open(&path).unwrap();
        assert!(r.is_empty());
        assert!(r.next_arrival().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let trace = sample_trace(10, 3);
        let path = tmp("trunc.bt");
        save_binary(&trace, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let err = BinaryTraceReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("length mismatch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unfinished_writer_is_rejected() {
        let path = tmp("unfinished.bt");
        let mut w = BinaryTraceWriter::create(&path).unwrap();
        w.push(&Arrival {
            time: 0.5,
            class: JobClass::Elastic,
            size: 1.0,
        })
        .unwrap();
        drop(w); // no finish(): header still claims u64::MAX records
        assert!(BinaryTraceReader::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("magic.bt");
        std::fs::write(&path, b"NOTATRACE-AT-ALL-1234567890").unwrap();
        let err = BinaryTraceReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_class_byte_is_rejected_at_open() {
        let trace = sample_trace(4, 9);
        let path = tmp("class.bt");
        save_binary(&trace, &path).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[BINARY_HEADER_BYTES + 2 * BINARY_RECORD_BYTES + 16] = 9;
        std::fs::write(&path, &raw).unwrap();
        let err = BinaryTraceReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("class byte"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_out_of_order_arrivals() {
        let path = tmp("order.bt");
        let mut w = BinaryTraceWriter::create(&path).unwrap();
        let a = |t: f64| Arrival {
            time: t,
            class: JobClass::Inelastic,
            size: 1.0,
        };
        w.push(&a(2.0)).unwrap();
        assert!(w.push(&a(1.0)).is_err());
        drop(w);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_replay_matches_text_replay_through_the_des() {
        let trace = sample_trace(800, 21);
        let bpath = tmp("des.bt");
        save_binary(&trace, &bpath).unwrap();
        let mut bin = BinaryTraceReader::open(&bpath).unwrap();
        let via_bin = Simulation::new(DesConfig::drain(3)).run(&FairShare, &mut bin);
        let mut text = trace.stream();
        let via_text = Simulation::new(DesConfig::drain(3)).run(&FairShare, &mut text);
        assert_eq!(via_bin.completed, via_text.completed);
        assert_eq!(
            via_bin.total_response.to_bits(),
            via_text.total_response.to_bits()
        );
        std::fs::remove_file(&bpath).unwrap();
    }

    #[test]
    fn sniffing_loader_opens_both_formats() {
        let trace = sample_trace(20, 5);
        let tpath = tmp("sniff.trace");
        let bpath = tmp("sniff.bt");
        trace.save(&tpath).unwrap();
        save_binary(&trace, &bpath).unwrap();
        let mut from_text = open_trace_source(&tpath).unwrap();
        let mut from_bin = open_trace_source(&bpath).unwrap();
        for a in trace.arrivals() {
            let t = from_text.next_arrival().unwrap();
            let b = from_bin.next_arrival().unwrap();
            assert_eq!(a.time.to_bits(), t.time.to_bits());
            assert_eq!(a.time.to_bits(), b.time.to_bits());
            assert_eq!(a.size.to_bits(), b.size.to_bits());
        }
        assert!(from_text.next_arrival().is_none());
        assert!(from_bin.next_arrival().is_none());
        std::fs::remove_file(&tpath).unwrap();
        std::fs::remove_file(&bpath).unwrap();
    }

    #[test]
    fn swf_import_maps_classes_and_skips_failed_jobs() {
        let path = tmp("import.swf");
        std::fs::write(
            &path,
            "; SWF test fixture\n\
             ; MaxProcs: 8\n\
             1 0 0 100 4 -1 -1 4 -1 -1 1 1 1 1 1 -1 -1 -1\n\
             2 10 5 50 1 -1 -1 1 -1 -1 1 1 1 1 1 -1 -1 -1\n\
             3 20 0 -1 4 -1 -1 4 -1 -1 0 1 1 1 1 -1 -1 -1\n\
             4 30 0 10 0 -1 -1 0 -1 -1 0 1 1 1 1 -1 -1 -1\n\
             5 5 0 20 2 -1 -1 2 -1 -1 1 1 1 1 1 -1 -1 -1\n",
        )
        .unwrap();
        let trace = import_swf(&path, &SwfOptions::default()).unwrap();
        // Jobs 3 (run time -1) and 4 (0 procs) are skipped; 3 remain,
        // sorted by submit time.
        assert_eq!(trace.len(), 3);
        let a = trace.arrivals();
        assert_eq!(a[0].time, 0.0);
        assert_eq!(a[0].class, JobClass::Elastic); // 4 procs
        assert_eq!(a[0].size, 400.0); // 100 s × 4 procs
        assert_eq!(a[1].time, 5.0);
        assert_eq!(a[1].class, JobClass::Elastic); // 2 procs
        assert_eq!(a[2].time, 10.0);
        assert_eq!(a[2].class, JobClass::Inelastic); // 1 proc
        assert_eq!(a[2].size, 50.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn swf_fixture_imports_and_replays() {
        // The committed fixture (also exercised by external tooling):
        // 5 records, 2 of them failed/cancelled, classes split by the
        // default elastic_min_procs = 2.
        let path = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/tiny.swf"));
        let trace = import_swf(path, &SwfOptions::default()).unwrap();
        assert_eq!(trace.len(), 3, "jobs 2 and 4 must be skipped");
        let a = trace.arrivals();
        assert_eq!(
            (a[0].time, a[0].class, a[0].size),
            (0.0, JobClass::Inelastic, 120.0)
        );
        assert_eq!(
            (a[1].time, a[1].class, a[1].size),
            (60.0, JobClass::Elastic, 1200.0)
        );
        assert_eq!(
            (a[2].time, a[2].class, a[2].size),
            (150.0, JobClass::Elastic, 360.0)
        );

        // max_jobs caps the import after the cap is reached.
        let capped = import_swf(
            path,
            &SwfOptions {
                max_jobs: Some(2),
                ..SwfOptions::default()
            },
        )
        .unwrap();
        assert_eq!(capped.len(), 2);

        // A stricter elasticity threshold reclassifies the 4-proc job.
        let strict = import_swf(
            path,
            &SwfOptions {
                elastic_min_procs: 8,
                max_jobs: None,
            },
        )
        .unwrap();
        assert_eq!(strict.arrivals()[1].class, JobClass::Inelastic);

        // The imported trace drains through the simulator end to end.
        let mut stream = trace.stream();
        let report = Simulation::new(DesConfig::drain(4)).run(&FairShare, &mut stream);
        assert_eq!(report.completed[0] + report.completed[1], 3);
    }

    #[test]
    fn swf_malformed_record_is_a_hard_error() {
        let path = tmp("bad.swf");
        std::fs::write(&path, "1 0 0 not-a-number 4\n").unwrap();
        let err = import_swf(&path, &SwfOptions::default()).unwrap_err();
        assert!(err.to_string().contains("run time"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
