//! Allocation policies.
//!
//! A policy in the paper's model is a stationary, deterministic map from the
//! state `(i, j)` — the numbers of inelastic and elastic jobs in system — to
//! server allocations `(π_I(i,j), π_E(i,j))` with
//!
//! ```text
//! π_I(i,j) ≤ min(i, k),    π_E(i,j) ≤ k·1{j>0},    π_I + π_E ≤ k.
//! ```
//!
//! Fractional allocations are allowed (servers time-share). Within each
//! class, service is FCFS: the first `⌊π_I⌋` inelastic jobs receive one
//! server each and the next receives the fraction; the head-of-line elastic
//! job receives the whole elastic share (this matches the paper's EF and IF
//! definitions; for elastic jobs the split is irrelevant to the class-level
//! departure rate because speedup is linear).

use std::fmt;

/// Per-class server shares chosen by a policy in one state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassAllocation {
    /// Servers given to inelastic jobs in total (`≤ min(i,k)`).
    pub inelastic: f64,
    /// Servers given to elastic jobs in total (`≤ k`, 0 when `j = 0`).
    pub elastic: f64,
}

impl ClassAllocation {
    /// The all-idle allocation.
    pub const IDLE: ClassAllocation = ClassAllocation {
        inelastic: 0.0,
        elastic: 0.0,
    };

    /// Total allocated servers.
    pub fn total(&self) -> f64 {
        self.inelastic + self.elastic
    }
}

/// A stationary, deterministic allocation policy.
pub trait AllocationPolicy: Send + Sync {
    /// Server shares in state `(i, j)` with `k` servers.
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation;

    /// Display name for reports.
    fn name(&self) -> String;

    /// `true` when the policy is work conserving: all of `min(i,k)` inelastic
    /// jobs served whenever no elastic job can soak up the slack, and no
    /// server idles while any job is present. The default checks the
    /// allocation on a state grid; override only to document exceptions.
    fn is_work_conserving_on(&self, k: u32, max_i: usize, max_j: usize) -> bool {
        let kf = k as f64;
        for i in 0..=max_i {
            for j in 0..=max_j {
                if i == 0 && j == 0 {
                    continue;
                }
                let a = self.allocate(i, j, k);
                let feasible = a.inelastic <= (i as f64).min(kf) + 1e-9
                    && a.elastic <= kf + 1e-9
                    && (j > 0 || a.elastic == 0.0)
                    && a.total() <= kf + 1e-9;
                if !feasible {
                    return false;
                }
                let busy = if j > 0 { kf } else { (i as f64).min(kf) };
                if a.total() < busy - 1e-9 {
                    return false;
                }
            }
        }
        true
    }
}

/// Validates an allocation against the feasibility constraints; panics with
/// a descriptive message on violation. Called by the simulator on every
/// decision, so buggy policies fail fast.
pub fn assert_feasible(a: ClassAllocation, i: usize, j: usize, k: u32, name: &str) {
    let kf = k as f64;
    assert!(
        a.inelastic >= -1e-12 && a.elastic >= -1e-12,
        "{name}: negative allocation in state ({i},{j}): {a:?}"
    );
    assert!(
        a.inelastic <= (i as f64).min(kf) + 1e-9,
        "{name}: inelastic allocation {} exceeds min(i,k) in state ({i},{j})",
        a.inelastic
    );
    assert!(
        j > 0 || a.elastic <= 1e-12,
        "{name}: elastic allocation {} with no elastic jobs in state ({i},{j})",
        a.elastic
    );
    assert!(
        a.total() <= kf + 1e-9,
        "{name}: total allocation {} exceeds k={k} in state ({i},{j})",
        a.total()
    );
}

/// **Inelastic-First (IF)**: inelastic jobs get preemptive priority — one
/// server each, up to `k`; any leftover servers go to the head-of-line
/// elastic job. Optimal for mean response time when `µ_I ≥ µ_E`
/// (paper Theorems 1 and 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct InelasticFirst;

impl AllocationPolicy for InelasticFirst {
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
        let kf = k as f64;
        let inelastic = (i as f64).min(kf);
        let elastic = if j > 0 { kf - inelastic } else { 0.0 };
        ClassAllocation { inelastic, elastic }
    }

    fn name(&self) -> String {
        "Inelastic-First".into()
    }
}

/// **Elastic-First (EF)**: the head-of-line elastic job takes all `k`
/// servers; inelastic jobs run only when no elastic job is present.
/// Can beat IF when `µ_I < µ_E` (paper Theorem 6).
#[derive(Debug, Clone, Copy, Default)]
pub struct ElasticFirst;

impl AllocationPolicy for ElasticFirst {
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
        let kf = k as f64;
        if j > 0 {
            ClassAllocation {
                inelastic: 0.0,
                elastic: kf,
            }
        } else {
            ClassAllocation {
                inelastic: (i as f64).min(kf),
                elastic: 0.0,
            }
        }
    }

    fn name(&self) -> String {
        "Elastic-First".into()
    }
}

/// **Fair share**: every job receives an equal share `k/(i+j)` of the
/// cluster, with inelastic jobs capped at one server each; the surplus flows
/// to elastic jobs. A work-conserving "equipartition" baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairShare;

impl AllocationPolicy for FairShare {
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
        let kf = k as f64;
        let n = i + j;
        if n == 0 {
            return ClassAllocation::IDLE;
        }
        let share = kf / n as f64;
        let per_inelastic = share.min(1.0);
        let mut inelastic = per_inelastic * i as f64;
        let mut elastic = if j > 0 { kf - inelastic } else { 0.0 };
        if j == 0 {
            inelastic = (i as f64).min(kf);
            elastic = 0.0;
        }
        ClassAllocation { inelastic, elastic }
    }

    fn name(&self) -> String {
        "Fair-Share".into()
    }
}

/// **Reserve policy**: a one-parameter family interpolating between IF and
/// EF. When elastic jobs are present, `reserve` servers are set aside for
/// the head-of-line elastic job and inelastic jobs fill the rest
/// (`π_I = min(i, k − reserve)`); with `reserve = 0` this is exactly
/// Inelastic-First and with `reserve = k` exactly Elastic-First. A natural
/// candidate family for the paper's open `µ_I < µ_E` regime (Section 6).
#[derive(Debug, Clone, Copy)]
pub struct ReservePolicy {
    /// Servers reserved for elastic jobs whenever any are present.
    pub reserve: u32,
}

impl AllocationPolicy for ReservePolicy {
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
        let kf = k as f64;
        if j == 0 {
            return ClassAllocation {
                inelastic: (i as f64).min(kf),
                elastic: 0.0,
            };
        }
        let cap = kf - (self.reserve.min(k)) as f64;
        let inelastic = (i as f64).min(cap);
        ClassAllocation {
            inelastic,
            elastic: kf - inelastic,
        }
    }

    fn name(&self) -> String {
        format!("Reserve({})", self.reserve)
    }
}

/// **Elastic-threshold policy**: behaves like IF until the elastic queue
/// builds up to `threshold` jobs, then flips to EF (all servers to the
/// elastic head) until the backlog drains below the threshold. Another
/// candidate family for the open regime: it defers parallel work (good for
/// efficiency) but bounds how long elastic jobs can be starved.
#[derive(Debug, Clone, Copy)]
pub struct ElasticThresholdPolicy {
    /// Elastic backlog at which the policy flips to elastic priority.
    pub threshold: usize,
}

impl AllocationPolicy for ElasticThresholdPolicy {
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
        let kf = k as f64;
        if j == 0 {
            return ClassAllocation {
                inelastic: (i as f64).min(kf),
                elastic: 0.0,
            };
        }
        if j >= self.threshold.max(1) {
            ClassAllocation {
                inelastic: 0.0,
                elastic: kf,
            }
        } else {
            let inelastic = (i as f64).min(kf);
            ClassAllocation {
                inelastic,
                elastic: kf - inelastic,
            }
        }
    }

    fn name(&self) -> String {
        format!("ElasticThreshold({})", self.threshold)
    }
}

/// **Switching-curve policy**: flips from IF-mode to EF-mode along a linear
/// curve in the state space — elastic priority whenever
/// `j ≥ intercept + slope·i`, inelastic priority below the curve. With
/// `slope = 0` this is exactly [`ElasticThresholdPolicy`]; a positive slope
/// demands more elastic backlog before preempting a *longer* inelastic
/// queue, a natural shape for the paper's open `µ_I < µ_E` regime
/// (Section 6) where the MDP-optimal policy is itself a switching curve.
#[derive(Debug, Clone, Copy)]
pub struct SwitchingCurvePolicy {
    /// Elastic backlog that flips an empty inelastic queue to EF-mode
    /// (clamped to ≥ 1 so EF-mode never triggers with `j = 0`).
    pub intercept: usize,
    /// Additional elastic backlog required per queued inelastic job.
    pub slope: f64,
}

impl AllocationPolicy for SwitchingCurvePolicy {
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
        let kf = k as f64;
        if j == 0 {
            return ClassAllocation {
                inelastic: (i as f64).min(kf),
                elastic: 0.0,
            };
        }
        let curve = self.intercept.max(1) as f64 + self.slope * i as f64;
        if j as f64 >= curve {
            ClassAllocation {
                inelastic: 0.0,
                elastic: kf,
            }
        } else {
            let inelastic = (i as f64).min(kf);
            ClassAllocation {
                inelastic,
                elastic: kf - inelastic,
            }
        }
    }

    fn name(&self) -> String {
        format!("SwitchingCurve({}+{}i)", self.intercept, self.slope)
    }
}

/// **Weighted water-filling**: the fractional 2-class fair-share family.
/// Every inelastic job weighs 1 and every elastic job weighs
/// `elastic_weight` when splitting the cluster, so each inelastic job gets
/// `min(k / (i + w·j), 1)` servers and the elastic class soaks up the rest
/// (work conserving). `elastic_weight = 1` recovers [`FairShare`]; larger
/// weights shift servers toward elastic jobs, interpolating continuously
/// toward Elastic-First as `w → ∞`.
#[derive(Debug, Clone, Copy)]
pub struct WeightedWaterFilling {
    /// Relative weight of one elastic job (`> 0`).
    pub elastic_weight: f64,
}

impl AllocationPolicy for WeightedWaterFilling {
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
        let kf = k as f64;
        if j == 0 {
            return ClassAllocation {
                inelastic: (i as f64).min(kf),
                elastic: 0.0,
            };
        }
        let w = self.elastic_weight;
        debug_assert!(w > 0.0 && w.is_finite(), "elastic weight must be positive");
        let share = (kf / (i as f64 + w * j as f64)).min(1.0);
        let inelastic = share * i as f64;
        ClassAllocation {
            inelastic,
            elastic: kf - inelastic,
        }
    }

    fn name(&self) -> String {
        format!("WaterFilling(w={})", self.elastic_weight)
    }
}

/// A **tabular policy**: allocations stored densely on a state grid
/// `(i, j) ∈ [0, max_i] × [0, max_j]`, with states beyond the grid clamped
/// to the nearest edge. This is the bridge from solved MDPs to the shared
/// policy layer — `eirs_mdp::MdpSolution::tabular_policy` packs its optimal
/// actions into one of these, after which the numerically-optimal policy
/// runs on every substrate (analysis, DES, state-level CTMC) like any
/// hand-written policy.
#[derive(Debug, Clone)]
pub struct TabularPolicy {
    name: String,
    k: u32,
    max_i: usize,
    max_j: usize,
    table: Vec<ClassAllocation>,
}

impl TabularPolicy {
    /// Builds a table by evaluating `f(i, j) → (π_I, π_E)` on the grid.
    /// Entries are clamped into the feasible polytope for `k` servers.
    pub fn from_fn(
        name: impl Into<String>,
        k: u32,
        max_i: usize,
        max_j: usize,
        f: impl Fn(usize, usize) -> (f64, f64),
    ) -> Self {
        let kf = k as f64;
        let mut table = Vec::with_capacity((max_i + 1) * (max_j + 1));
        for i in 0..=max_i {
            for j in 0..=max_j {
                let (a, e) = f(i, j);
                let inelastic = a.clamp(0.0, (i as f64).min(kf));
                let elastic = if j > 0 {
                    e.clamp(0.0, kf - inelastic)
                } else {
                    0.0
                };
                table.push(ClassAllocation { inelastic, elastic });
            }
        }
        Self {
            name: name.into(),
            k,
            max_i,
            max_j,
            table,
        }
    }

    /// Servers the table was built for.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Grid bound in `i`; states with larger `i` are clamped to the edge.
    pub fn max_i(&self) -> usize {
        self.max_i
    }

    /// Grid bound in `j`; states with larger `j` are clamped to the edge.
    pub fn max_j(&self) -> usize {
        self.max_j
    }
}

impl AllocationPolicy for TabularPolicy {
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
        let kf = k as f64;
        let entry = self.table[i.min(self.max_i) * (self.max_j + 1) + j.min(self.max_j)];
        // Re-clamp against the *actual* state: edge-clamping `i` can only
        // shrink `min(i, k)`, but a caller may query with a different `k`
        // than the table was built for, and `j = 0` must yield no elastic
        // share even though the clamped column is feasible by construction.
        let inelastic = entry.inelastic.clamp(0.0, (i as f64).min(kf));
        let elastic = if j > 0 {
            entry.elastic.clamp(0.0, kf - inelastic)
        } else {
            0.0
        };
        ClassAllocation { inelastic, elastic }
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

/// A policy defined by an arbitrary function `(i, j, k) → π_I`, completed to
/// a work-conserving allocation (`π_E = k − π_I` when `j > 0`; all inelastic
/// served when `j = 0`). With inelastic-FCFS service this is exactly the
/// paper's class **P**.
pub struct TablePolicy {
    name: String,
    inelastic_share: Box<dyn Fn(usize, usize, u32) -> f64 + Send + Sync>,
}

impl TablePolicy {
    /// Builds a class-P policy from `π_I(i, j, k)`. The returned value is
    /// clamped into `[0, min(i,k)]`.
    pub fn from_fn<F>(name: impl Into<String>, f: F) -> Self
    where
        F: Fn(usize, usize, u32) -> f64 + Send + Sync + 'static,
    {
        Self {
            name: name.into(),
            inelastic_share: Box::new(f),
        }
    }

    /// A pseudo-random but *stationary deterministic* class-P policy: the
    /// inelastic share in each state `(i, j)` is a reproducible hash-based
    /// choice from `{0, 1, …, min(i,k)}`. Different seeds give different
    /// policies; the same seed always gives the same policy.
    pub fn random_class_p(seed: u64) -> Self {
        Self::from_fn(format!("RandomP(seed={seed})"), move |i, j, k| {
            let cap = (i as u64).min(k as u64);
            if cap == 0 {
                return 0.0;
            }
            // SplitMix64 on (seed, i, j) for a uniform stationary choice.
            let mut x = seed
                ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            (x % (cap + 1)) as f64
        })
    }
}

impl AllocationPolicy for TablePolicy {
    fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
        let kf = k as f64;
        if i == 0 && j == 0 {
            return ClassAllocation::IDLE;
        }
        if j == 0 {
            return ClassAllocation {
                inelastic: (i as f64).min(kf),
                elastic: 0.0,
            };
        }
        let raw = (self.inelastic_share)(i, j, k);
        let inelastic = raw.clamp(0.0, (i as f64).min(kf));
        ClassAllocation {
            inelastic,
            elastic: kf - inelastic,
        }
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

impl fmt::Debug for TablePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TablePolicy({})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inelastic_first_matches_paper_definition() {
        let p = InelasticFirst;
        // i < k, elastic present: inelastic get i servers, elastic the rest.
        let a = p.allocate(2, 3, 4);
        assert_eq!(
            a,
            ClassAllocation {
                inelastic: 2.0,
                elastic: 2.0
            }
        );
        // i >= k: all servers to inelastic.
        let a = p.allocate(7, 3, 4);
        assert_eq!(
            a,
            ClassAllocation {
                inelastic: 4.0,
                elastic: 0.0
            }
        );
        // No elastic jobs: no elastic allocation.
        let a = p.allocate(2, 0, 4);
        assert_eq!(
            a,
            ClassAllocation {
                inelastic: 2.0,
                elastic: 0.0
            }
        );
    }

    #[test]
    fn elastic_first_matches_paper_definition() {
        let p = ElasticFirst;
        let a = p.allocate(5, 1, 4);
        assert_eq!(
            a,
            ClassAllocation {
                inelastic: 0.0,
                elastic: 4.0
            }
        );
        let a = p.allocate(5, 0, 4);
        assert_eq!(
            a,
            ClassAllocation {
                inelastic: 4.0,
                elastic: 0.0
            }
        );
        let a = p.allocate(2, 0, 4);
        assert_eq!(
            a,
            ClassAllocation {
                inelastic: 2.0,
                elastic: 0.0
            }
        );
    }

    #[test]
    fn fair_share_caps_inelastic_jobs_at_one_server() {
        let p = FairShare;
        // 2 inelastic + 2 elastic on 8 servers: share 2 each, inelastic
        // capped at 1 → inelastic total 2, elastic 6.
        let a = p.allocate(2, 2, 8);
        assert_eq!(
            a,
            ClassAllocation {
                inelastic: 2.0,
                elastic: 6.0
            }
        );
        // Crowded: 6+2 jobs on 4 servers: share 0.5 → inelastic 3, elastic 1.
        let a = p.allocate(6, 2, 4);
        assert!((a.inelastic - 3.0).abs() < 1e-12);
        assert!((a.elastic - 1.0).abs() < 1e-12);
    }

    #[test]
    fn builtin_policies_are_work_conserving() {
        assert!(InelasticFirst.is_work_conserving_on(4, 12, 12));
        assert!(ElasticFirst.is_work_conserving_on(4, 12, 12));
        assert!(FairShare.is_work_conserving_on(4, 12, 12));
        assert!(FairShare.is_work_conserving_on(16, 40, 40));
    }

    #[test]
    fn random_class_p_is_work_conserving_and_stationary() {
        for seed in 0..20 {
            let p = TablePolicy::random_class_p(seed);
            assert!(p.is_work_conserving_on(4, 10, 10), "seed {seed}");
            // Stationarity: same state, same decision.
            let a1 = p.allocate(3, 2, 4);
            let a2 = p.allocate(3, 2, 4);
            assert_eq!(a1, a2);
        }
    }

    #[test]
    fn random_class_p_policies_differ_across_seeds() {
        let p1 = TablePolicy::random_class_p(1);
        let p2 = TablePolicy::random_class_p(2);
        let differs = (1..10)
            .flat_map(|i| (1..10).map(move |j| (i, j)))
            .any(|(i, j)| p1.allocate(i, j, 4) != p2.allocate(i, j, 4));
        assert!(differs);
    }

    #[test]
    fn table_policy_clamps_out_of_range_shares() {
        let p = TablePolicy::from_fn("overcommit", |_, _, k| (k * 10) as f64);
        let a = p.allocate(2, 1, 4);
        assert_eq!(a.inelastic, 2.0);
        assert_eq!(a.elastic, 2.0);
    }

    #[test]
    fn assert_feasible_rejects_oversubscription() {
        let result = std::panic::catch_unwind(|| {
            assert_feasible(
                ClassAllocation {
                    inelastic: 3.0,
                    elastic: 3.0,
                },
                2,
                1,
                4,
                "test",
            );
        });
        assert!(result.is_err());
    }

    #[test]
    fn reserve_policy_interpolates_between_if_and_ef() {
        let k = 4;
        for i in 0..10usize {
            for j in 0..10usize {
                let r0 = ReservePolicy { reserve: 0 }.allocate(i, j, k);
                let rif = InelasticFirst.allocate(i, j, k);
                assert_eq!(r0, rif, "reserve 0 != IF at ({i},{j})");
                let rk = ReservePolicy { reserve: k }.allocate(i, j, k);
                let ref_ = ElasticFirst.allocate(i, j, k);
                assert_eq!(rk, ref_, "reserve k != EF at ({i},{j})");
            }
        }
    }

    #[test]
    fn reserve_policy_is_work_conserving() {
        for reserve in 0..=4 {
            assert!(ReservePolicy { reserve }.is_work_conserving_on(4, 12, 12));
        }
    }

    #[test]
    fn elastic_threshold_policy_flips_at_threshold() {
        let p = ElasticThresholdPolicy { threshold: 3 };
        // Below threshold: IF behavior.
        assert_eq!(p.allocate(2, 2, 4), InelasticFirst.allocate(2, 2, 4));
        // At/above: EF behavior.
        assert_eq!(p.allocate(2, 3, 4), ElasticFirst.allocate(2, 3, 4));
        assert!(p.is_work_conserving_on(4, 12, 12));
    }

    #[test]
    fn switching_curve_reduces_to_threshold_at_zero_slope() {
        let curve = SwitchingCurvePolicy {
            intercept: 3,
            slope: 0.0,
        };
        let threshold = ElasticThresholdPolicy { threshold: 3 };
        for i in 0..10usize {
            for j in 0..10usize {
                assert_eq!(curve.allocate(i, j, 4), threshold.allocate(i, j, 4));
            }
        }
    }

    #[test]
    fn switching_curve_demands_more_backlog_for_longer_inelastic_queues() {
        let p = SwitchingCurvePolicy {
            intercept: 2,
            slope: 1.0,
        };
        // i = 0: flips at j = 2.
        assert_eq!(p.allocate(0, 2, 4), ElasticFirst.allocate(0, 2, 4));
        // i = 3: curve at j = 5; j = 4 still IF-mode.
        assert_eq!(p.allocate(3, 4, 4), InelasticFirst.allocate(3, 4, 4));
        assert_eq!(p.allocate(3, 5, 4), ElasticFirst.allocate(3, 5, 4));
        assert!(p.is_work_conserving_on(4, 12, 12));
    }

    #[test]
    fn weighted_water_filling_interpolates_between_fair_share_and_ef() {
        let w1 = WeightedWaterFilling {
            elastic_weight: 1.0,
        };
        for i in 0..12usize {
            for j in 0..12usize {
                let a = w1.allocate(i, j, 4);
                let b = FairShare.allocate(i, j, 4);
                assert!(
                    (a.inelastic - b.inelastic).abs() < 1e-12,
                    "w=1 diverges from FairShare at ({i},{j})"
                );
            }
        }
        // Heavy elastic weight starves inelastic jobs toward EF.
        let heavy = WeightedWaterFilling {
            elastic_weight: 1e6,
        };
        let a = heavy.allocate(6, 2, 4);
        assert!(a.inelastic < 1e-4 && a.elastic > 4.0 - 1e-4);
        for w in [0.25, 1.0, 2.0, 8.0] {
            assert!(WeightedWaterFilling { elastic_weight: w }.is_work_conserving_on(4, 12, 12));
        }
    }

    #[test]
    fn weighted_water_filling_allocations_are_genuinely_fractional() {
        let p = WeightedWaterFilling {
            elastic_weight: 2.0,
        };
        // (3, 2) on k=4: share = 4/(3+4) = 4/7 < 1 → π_I = 12/7.
        let a = p.allocate(3, 2, 4);
        assert!((a.inelastic - 12.0 / 7.0).abs() < 1e-12);
        assert!((a.elastic - (4.0 - 12.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn tabular_policy_clamps_beyond_grid_and_stays_feasible() {
        // Table mimicking IF on a small grid.
        let t = TabularPolicy::from_fn("tab-if", 4, 6, 6, |i, j| {
            let a = (i as f64).min(4.0);
            (a, if j > 0 { 4.0 - a } else { 0.0 })
        });
        assert_eq!(t.k(), 4);
        assert_eq!((t.max_i(), t.max_j()), (6, 6));
        // Inside the grid: exactly IF.
        assert_eq!(t.allocate(2, 3, 4), InelasticFirst.allocate(2, 3, 4));
        // Beyond the grid: clamped to the edge, still IF here.
        assert_eq!(t.allocate(50, 80, 4), InelasticFirst.allocate(50, 80, 4));
        // j = 0 never receives an elastic share even off-grid.
        assert_eq!(t.allocate(9, 0, 4).elastic, 0.0);
        assert!(t.is_work_conserving_on(4, 12, 12));
    }

    #[test]
    fn tabular_policy_from_fn_clamps_infeasible_entries() {
        let t = TabularPolicy::from_fn("greedy", 4, 4, 4, |_, _| (100.0, 100.0));
        let a = t.allocate(2, 1, 4);
        assert_eq!(a.inelastic, 2.0);
        assert_eq!(a.elastic, 2.0);
        let result = std::panic::catch_unwind(|| {
            for i in 0..8 {
                for j in 0..8 {
                    assert_feasible(t.allocate(i, j, 4), i, j, 4, "greedy");
                }
            }
        });
        assert!(result.is_ok());
    }

    #[test]
    fn idle_policy_is_not_work_conserving() {
        let lazy = TablePolicy::from_fn("lazy", |_, _, _| 0.0);
        // With j = 0 TablePolicy still serves inelastic, so build a truly
        // idling policy manually.
        struct Idler;
        impl AllocationPolicy for Idler {
            fn allocate(&self, _i: usize, _j: usize, _k: u32) -> ClassAllocation {
                ClassAllocation::IDLE
            }
            fn name(&self) -> String {
                "Idler".into()
            }
        }
        assert!(!Idler.is_work_conserving_on(2, 4, 4));
        // The lazy table policy is still in class P (elastic absorbs slack).
        assert!(lazy.is_work_conserving_on(4, 10, 10));
    }
}
