//! Job-level discrete-event simulator.
//!
//! Tracks the remaining work of every job in the system and advances time to
//! the next arrival or completion. Between events every allocation is
//! constant, so each served job's completion time is `remaining / rate`;
//! the engine is exact (no time discretization). Sizes are fixed at arrival,
//! so the simulator works for arbitrary size distributions — which the
//! distribution-free coupling experiments (Theorem 3) rely on.
//!
//! Within each class service is FCFS: the first `⌊π_I⌋` inelastic jobs get
//! one server each, the next inelastic job gets the fractional remainder,
//! and the head-of-line elastic job receives the entire elastic share (for
//! linear-speedup jobs the split within the class does not affect the
//! class-level completion rate, and head-of-line matches the paper's EF/IF
//! definitions).
//!
//! # Capacity churn
//!
//! A simulation may carry a [`FaultSchedule`]
//! ([`Simulation::with_faults`]): capacity-change events are first-class
//! DES events, and between them only `avail ≤ k` servers exist. The
//! degraded-decision rule is: at full capacity the policy is called with
//! `k` (the hot path, bit-identical to the fault-free run); at zero
//! capacity the allocation is [`ClassAllocation::IDLE`](crate::policy::ClassAllocation::IDLE) *without
//! consulting the policy* (policies need not be defined on an empty
//! cluster); otherwise the policy is called with the available count.
//! Elastic jobs are malleable and simply shrink onto the surviving
//! servers — no work is lost. Inelastic jobs use one server each and
//! cannot migrate mid-flight: when capacity drops below the served
//! prefix, every partially-served inelastic job beyond queue position
//! `avail` is **preempt-restarted** — its remaining work resets to its
//! full size and it re-enters at the back of the inelastic queue (it
//! restarts from scratch, behind work that kept its server). Untouched
//! jobs keep their position; capacity increases never disturb state.

use crate::arrivals::{Arrival, ArrivalSource};
use crate::availability::{CapacityEvent, FaultSchedule};
use crate::job::{Job, JobClass};
use crate::policy::{assert_feasible, AllocationPolicy};
use crate::quantile::TailStats;
use crate::stats::{TimeAverage, Welford};
use std::collections::VecDeque;

/// When a simulation run ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Stop after this many *measured* (post-warmup) departures.
    Departures(u64),
    /// Stop at this simulated time.
    SimTime(f64),
    /// Run until the arrival source is exhausted and the system is empty.
    Drain,
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy)]
pub struct DesConfig {
    /// Number of servers `k`.
    pub k: u32,
    /// Termination rule.
    pub stop: StopRule,
    /// Departures to discard before measurement starts (warm-up).
    pub warmup_departures: u64,
}

impl DesConfig {
    /// Steady-state measurement: warm up for `warmup` departures, then
    /// measure `departures` of them.
    pub fn steady_state(k: u32, warmup: u64, departures: u64) -> Self {
        Self {
            k,
            stop: StopRule::Departures(departures),
            warmup_departures: warmup,
        }
    }

    /// Transient run: no warm-up, drain the trace.
    pub fn drain(k: u32) -> Self {
        Self {
            k,
            stop: StopRule::Drain,
            warmup_departures: 0,
        }
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Measured departures per class `[inelastic, elastic]`.
    pub completed: [u64; 2],
    /// Mean response time across measured jobs of both classes.
    pub mean_response: f64,
    /// Mean response time of measured inelastic jobs (`NaN` if none).
    pub mean_response_inelastic: f64,
    /// Mean response time of measured elastic jobs (`NaN` if none).
    pub mean_response_elastic: f64,
    /// Sum of response times across measured jobs.
    pub total_response: f64,
    /// Time-average number of jobs in system over the measured window.
    pub mean_num_in_system: f64,
    /// Time-average number of inelastic jobs.
    pub mean_num_inelastic: f64,
    /// Time-average number of elastic jobs.
    pub mean_num_elastic: f64,
    /// Time-average total work in system `E[W]`.
    pub mean_work: f64,
    /// Time-average inelastic work in system `E[W_I]`.
    pub mean_work_inelastic: f64,
    /// Time-average fraction of busy servers.
    pub utilization: f64,
    /// `(P50, P95, P99)` response-time estimates over all measured jobs
    /// (P² streaming quantiles; `NaN` with no observations).
    pub tail_response: (f64, f64, f64),
    /// `(P50, P95, P99)` for measured inelastic jobs.
    pub tail_response_inelastic: (f64, f64, f64),
    /// `(P50, P95, P99)` for measured elastic jobs.
    pub tail_response_elastic: (f64, f64, f64),
    /// Length of the measured window.
    pub measured_time: f64,
    /// Simulated end time.
    pub end_time: f64,
    /// Inelastic jobs preempt-restarted by capacity-loss events (zero
    /// without a fault schedule).
    pub preemptions: u64,
}

/// The discrete-event simulation engine.
pub struct Simulation {
    config: DesConfig,
    time: f64,
    inelastic: VecDeque<Job>,
    elastic: VecDeque<Job>,
    next_id: u64,
    total_departures: u64,
    // Capacity churn: the remaining fault schedule, the cursor into it,
    // and the currently available server count.
    faults: Vec<CapacityEvent>,
    fault_cursor: usize,
    avail: u32,
    preemptions: u64,
    // Remaining work per class, maintained incrementally (O(1) per event
    // instead of an O(n) queue scan): arrivals add their size, the advance
    // loop subtracts exactly the work it removes from served jobs, and
    // departures subtract the numerical residual of the departing job.
    work_total_i: f64,
    work_total_e: f64,
    // Measurement state.
    measuring: bool,
    resp_all: Welford,
    resp_i: Welford,
    resp_e: Welford,
    tails_all: TailStats,
    tails_i: TailStats,
    tails_e: TailStats,
    total_response: f64,
    completed: [u64; 2],
    num_jobs: TimeAverage,
    num_i: TimeAverage,
    num_e: TimeAverage,
    work: TimeAverage,
    work_i: TimeAverage,
    busy: TimeAverage,
}

impl Simulation {
    /// A fresh simulation with the given configuration.
    pub fn new(config: DesConfig) -> Self {
        assert!(config.k >= 1, "need at least one server");
        Self {
            config,
            time: 0.0,
            inelastic: VecDeque::with_capacity(64),
            elastic: VecDeque::with_capacity(64),
            next_id: 0,
            total_departures: 0,
            faults: Vec::new(),
            fault_cursor: 0,
            avail: config.k,
            preemptions: 0,
            work_total_i: 0.0,
            work_total_e: 0.0,
            measuring: config.warmup_departures == 0,
            resp_all: Welford::new(),
            resp_i: Welford::new(),
            resp_e: Welford::new(),
            tails_all: TailStats::new(),
            tails_i: TailStats::new(),
            tails_e: TailStats::new(),
            total_response: 0.0,
            completed: [0, 0],
            num_jobs: TimeAverage::new(),
            num_i: TimeAverage::new(),
            num_e: TimeAverage::new(),
            work: TimeAverage::new(),
            work_i: TimeAverage::new(),
            busy: TimeAverage::new(),
        }
    }

    /// Attaches a capacity-churn schedule (see the [module docs](self)
    /// for the degraded-decision and preempt-restart semantics). The
    /// schedule's `k` must match the configuration.
    pub fn with_faults(mut self, schedule: &FaultSchedule) -> Self {
        assert_eq!(
            schedule.k(),
            self.config.k,
            "fault schedule generated for k={}, simulation has k={}",
            schedule.k(),
            self.config.k
        );
        assert_eq!(self.time, 0.0, "attach faults before running");
        self.faults = schedule.events().to_vec();
        self.fault_cursor = 0;
        self
    }

    /// Seeds the system with jobs present at time zero (arrival time 0).
    pub fn preload(&mut self, jobs: impl IntoIterator<Item = (JobClass, f64)>) {
        assert_eq!(self.time, 0.0, "preload before running");
        for (class, size) in jobs {
            let job = Job::new(self.next_id, class, size, 0.0);
            self.next_id += 1;
            match class {
                JobClass::Inelastic => {
                    self.work_total_i += size;
                    self.inelastic.push_back(job);
                }
                JobClass::Elastic => {
                    self.work_total_e += size;
                    self.elastic.push_back(job);
                }
            }
        }
    }

    /// Runs the simulation to completion under `policy` with arrivals from
    /// `source`.
    pub fn run(
        mut self,
        policy: &dyn AllocationPolicy,
        source: &mut dyn ArrivalSource,
    ) -> SimReport {
        let mut pending: Option<Arrival> = source.next_arrival();
        let k = self.config.k;
        let kf = k as f64;
        let name = policy.name();

        loop {
            match self.config.stop {
                StopRule::Departures(n) => {
                    if self.measuring && self.completed[0] + self.completed[1] >= n {
                        break;
                    }
                }
                StopRule::SimTime(t_end) => {
                    if self.time >= t_end {
                        break;
                    }
                }
                StopRule::Drain => {
                    if pending.is_none() && self.inelastic.is_empty() && self.elastic.is_empty() {
                        break;
                    }
                }
            }

            // Capacity changes due now take effect before the decision.
            self.apply_due_capacity_events();

            let i = self.inelastic.len();
            let j = self.elastic.len();
            let avail = self.avail;
            let alloc = if avail == k {
                policy.allocate(i, j, k)
            } else if avail == 0 {
                // Never consult the policy on an empty cluster.
                crate::policy::ClassAllocation::IDLE
            } else {
                policy.allocate(i, j, avail)
            };
            assert_feasible(alloc, i, j, avail, &name);

            // FCFS rate assignment within classes.
            let whole = alloc.inelastic.floor() as usize;
            let frac = alloc.inelastic - whole as f64;
            let inelastic_rate = |idx: usize| -> f64 {
                if idx < whole {
                    1.0
                } else if idx == whole {
                    frac
                } else {
                    0.0
                }
            };

            // Earliest completion among served jobs.
            let mut dt_completion = f64::INFINITY;
            for (idx, job) in self.inelastic.iter().enumerate().take(whole + 1) {
                let rate = inelastic_rate(idx);
                if rate > 0.0 {
                    dt_completion = dt_completion.min(job.remaining / rate);
                }
            }
            if alloc.elastic > 0.0 {
                if let Some(head) = self.elastic.front() {
                    dt_completion = dt_completion.min(head.remaining / alloc.elastic);
                }
            }

            let dt_arrival = pending.map_or(f64::INFINITY, |a| a.time - self.time);
            debug_assert!(dt_arrival >= -1e-9, "arrival in the past");
            let dt_fault = self
                .faults
                .get(self.fault_cursor)
                .map_or(f64::INFINITY, |e| e.time - self.time);
            let mut dt = dt_completion
                .min(dt_arrival.max(0.0))
                .min(dt_fault.max(0.0));
            if let StopRule::SimTime(t_end) = self.config.stop {
                dt = dt.min(t_end - self.time);
            }
            if !dt.is_finite() {
                // No arrivals left, nothing in service, and no capacity
                // change ahead: with jobs present this would be a
                // permanently idle (non-progressing) policy.
                assert!(
                    i == 0 && j == 0,
                    "policy {name} idles forever with jobs present \
                     (state ({i},{j}), {avail}/{k} servers available)"
                );
                break;
            }

            // Accumulate time-weighted statistics over [time, time+dt).
            if self.measuring && dt > 0.0 {
                let w_i = self.work_total_i;
                let w_e = self.work_total_e;
                let total_rate = alloc.total();
                // Work decreases linearly at the service rate:
                // ∫ W dt = W₀·dt − rate·dt²/2.
                self.num_jobs.add((i + j) as f64, dt);
                self.num_i.add(i as f64, dt);
                self.num_e.add(j as f64, dt);
                self.work.add(w_i + w_e - 0.5 * total_rate * dt, dt);
                self.work_i.add(w_i - 0.5 * alloc.inelastic * dt, dt);
                self.busy.add(total_rate / kf, dt);
            }

            // Advance remaining work of served jobs, keeping the class work
            // totals in sync with exactly the work removed (clamps at zero
            // included), so the totals never drift from the queue contents.
            if dt > 0.0 {
                let mut reduced_i = 0.0;
                for (idx, job) in self.inelastic.iter_mut().enumerate().take(whole + 1) {
                    let rate = inelastic_rate(idx);
                    if rate > 0.0 {
                        let before = job.remaining;
                        job.remaining = (before - rate * dt).max(0.0);
                        reduced_i += before - job.remaining;
                    }
                }
                self.work_total_i -= reduced_i;
                if alloc.elastic > 0.0 {
                    if let Some(head) = self.elastic.front_mut() {
                        let before = head.remaining;
                        head.remaining = (before - alloc.elastic * dt).max(0.0);
                        self.work_total_e -= before - head.remaining;
                    }
                }
                self.time += dt;
            }

            // Departures (possibly several at once).
            self.collect_departures();

            // Arrival, if this event is one.
            if let Some(a) = pending {
                if a.time <= self.time + 1e-12 && dt_arrival <= dt_completion {
                    let job = Job::new(self.next_id, a.class, a.size, a.time);
                    self.next_id += 1;
                    self.time = self.time.max(a.time);
                    match a.class {
                        JobClass::Inelastic => {
                            self.work_total_i += a.size;
                            self.inelastic.push_back(job);
                        }
                        JobClass::Elastic => {
                            self.work_total_e += a.size;
                            self.elastic.push_back(job);
                        }
                    }
                    pending = source.next_arrival();
                    // Zero-size jobs depart immediately.
                    self.collect_departures();
                }
            }
        }

        self.report()
    }

    fn collect_departures(&mut self) {
        let time = self.time;
        let depart = |job: Job, stats: &mut Self| {
            // Remove the numerical residual (is_done() tolerates ~1e-12) so
            // the incremental work totals exactly track the queue contents.
            match job.class {
                JobClass::Inelastic => stats.work_total_i -= job.remaining,
                JobClass::Elastic => stats.work_total_e -= job.remaining,
            }
            stats.total_departures += 1;
            if !stats.measuring && stats.total_departures >= stats.config.warmup_departures {
                stats.measuring = true;
            } else if stats.measuring {
                let t = time - job.arrival;
                stats.resp_all.push(t);
                stats.tails_all.push(t);
                stats.total_response += t;
                match job.class {
                    JobClass::Inelastic => {
                        stats.resp_i.push(t);
                        stats.tails_i.push(t);
                        stats.completed[0] += 1;
                    }
                    JobClass::Elastic => {
                        stats.resp_e.push(t);
                        stats.tails_e.push(t);
                        stats.completed[1] += 1;
                    }
                }
            }
        };
        // Completed jobs can only be among the FCFS-served prefix, but a
        // retain-style sweep is simplest and queues are short-prefix-done.
        while let Some(front) = self.inelastic.front() {
            if front.is_done() {
                let job = self.inelastic.pop_front().expect("front exists");
                depart(job, self);
            } else {
                break;
            }
        }
        // Fractionally-served inelastic job may complete while earlier jobs
        // have not (only when sizes differ); sweep the rest once.
        let mut idx = 0;
        while idx < self.inelastic.len() {
            if self.inelastic[idx].is_done() {
                let job = self.inelastic.remove(idx).expect("index in range");
                depart(job, self);
            } else {
                idx += 1;
            }
        }
        while let Some(front) = self.elastic.front() {
            if front.is_done() {
                let job = self.elastic.pop_front().expect("front exists");
                depart(job, self);
            } else {
                break;
            }
        }
    }

    /// Applies every capacity event due at the current clock (changes
    /// take effect at their timestamp, after any simultaneous
    /// completion has been collected).
    fn apply_due_capacity_events(&mut self) {
        while let Some(&e) = self.faults.get(self.fault_cursor) {
            if e.time <= self.time + 1e-12 {
                self.fault_cursor += 1;
                self.apply_capacity(e.available);
            } else {
                break;
            }
        }
    }

    /// Sets the available capacity, preempt-restarting partially-served
    /// inelastic jobs that no longer fit: FCFS progress lives only in
    /// the queue prefix of length `avail`, so every job with progress at
    /// position `>= available` lost its server — its remaining work
    /// resets to its full size and it re-enters at the back of the
    /// queue. Elastic jobs are malleable and keep all progress.
    fn apply_capacity(&mut self, available: u32) {
        self.avail = available;
        let keep = available as usize;
        if keep >= self.inelastic.len() {
            return;
        }
        let mut preempted: Vec<Job> = Vec::new();
        let mut idx = keep;
        while idx < self.inelastic.len() {
            let job = &self.inelastic[idx];
            if job.remaining < job.size {
                let mut job = self.inelastic.remove(idx).expect("index in range");
                // The lost progress re-enters the work totals.
                self.work_total_i += job.size - job.remaining;
                job.remaining = job.size;
                self.preemptions += 1;
                preempted.push(job);
            } else {
                idx += 1;
            }
        }
        self.inelastic.extend(preempted);
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.time
    }

    fn report(self) -> SimReport {
        SimReport {
            completed: self.completed,
            mean_response: self.resp_all.mean(),
            mean_response_inelastic: if self.resp_i.count() > 0 {
                self.resp_i.mean()
            } else {
                f64::NAN
            },
            mean_response_elastic: if self.resp_e.count() > 0 {
                self.resp_e.mean()
            } else {
                f64::NAN
            },
            total_response: self.total_response,
            mean_num_in_system: self.num_jobs.average(),
            mean_num_inelastic: self.num_i.average(),
            mean_num_elastic: self.num_e.average(),
            mean_work: self.work.average(),
            mean_work_inelastic: self.work_i.average(),
            utilization: self.busy.average(),
            tail_response: self.tails_all.estimates(),
            tail_response_inelastic: self.tails_i.estimates(),
            tail_response_elastic: self.tails_e.estimates(),
            measured_time: self.num_jobs.elapsed(),
            end_time: self.time,
            preemptions: self.preemptions,
        }
    }
}

/// Convenience: runs one steady-state replication of the Markovian model of
/// the paper (Poisson arrivals, exponential sizes) under `policy`.
#[allow(clippy::too_many_arguments)]
pub fn run_markovian(
    policy: &dyn AllocationPolicy,
    k: u32,
    lambda_i: f64,
    lambda_e: f64,
    mu_i: f64,
    mu_e: f64,
    seed: u64,
    warmup: u64,
    departures: u64,
) -> SimReport {
    use eirs_queueing::Exponential;
    let mut source = crate::arrivals::PoissonStream::new(
        lambda_i,
        lambda_e,
        Box::new(Exponential::new(mu_i)),
        Box::new(Exponential::new(mu_e)),
        seed,
    );
    Simulation::new(DesConfig::steady_state(k, warmup, departures)).run(policy, &mut source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalTrace;
    use crate::policy::{ElasticFirst, InelasticFirst};

    fn trace(entries: &[(f64, JobClass, f64)]) -> ArrivalTrace {
        ArrivalTrace::new(
            entries
                .iter()
                .map(|&(time, class, size)| Arrival { time, class, size })
                .collect(),
        )
    }

    #[test]
    fn deterministic_drain_if_vs_ef_hand_computed() {
        // k=2; at t=0: inelastic sizes {2, 1}, elastic size 1.
        // IF: inelastic both served; sizes 1 done at t=1, size 2 at t=2;
        //     elastic gets 1 server from t=1, needs 1 unit → done at t=2.
        //     ΣT = 1 + 2 + 2 = 5.
        // EF: elastic on both servers → done 0.5; then inelastic in
        //     parallel → done at 1.5 and 2.5. ΣT = 0.5 + 1.5 + 2.5 = 4.5.
        let tr = trace(&[
            (0.0, JobClass::Inelastic, 2.0),
            (0.0, JobClass::Inelastic, 1.0),
            (0.0, JobClass::Elastic, 1.0),
        ]);
        let run = |policy: &dyn AllocationPolicy| {
            let mut s = tr.stream();
            Simulation::new(DesConfig::drain(2)).run(policy, &mut s)
        };
        let rif = run(&InelasticFirst);
        let ref_ = run(&ElasticFirst);
        assert!(
            (rif.total_response - 5.0).abs() < 1e-9,
            "IF {}",
            rif.total_response
        );
        assert!(
            (ref_.total_response - 4.5).abs() < 1e-9,
            "EF {}",
            ref_.total_response
        );
        assert_eq!(rif.completed, [2, 1]);
        assert_eq!(ref_.completed, [2, 1]);
    }

    #[test]
    fn elastic_parallelism_is_linear() {
        // One elastic job of size 4 on k=4 servers finishes at t=1.
        let tr = trace(&[(0.0, JobClass::Elastic, 4.0)]);
        let mut s = tr.stream();
        let r = Simulation::new(DesConfig::drain(4)).run(&ElasticFirst, &mut s);
        assert!((r.end_time - 1.0).abs() < 1e-12);
        assert!((r.mean_response - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inelastic_cannot_use_more_than_one_server() {
        // One inelastic job of size 3 on k=4: still takes 3 time units.
        let tr = trace(&[(0.0, JobClass::Inelastic, 3.0)]);
        let mut s = tr.stream();
        let r = Simulation::new(DesConfig::drain(4)).run(&InelasticFirst, &mut s);
        assert!((r.end_time - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_allocation_serves_at_fractional_rate() {
        // Policy giving 0.5 servers to a lone inelastic job: size 1 → 2s.
        struct Half;
        impl AllocationPolicy for Half {
            fn allocate(&self, i: usize, _j: usize, _k: u32) -> crate::policy::ClassAllocation {
                crate::policy::ClassAllocation {
                    inelastic: 0.5 * (i.min(1)) as f64,
                    elastic: 0.0,
                }
            }
            fn name(&self) -> String {
                "Half".into()
            }
        }
        let tr = trace(&[(0.0, JobClass::Inelastic, 1.0)]);
        let mut s = tr.stream();
        let r = Simulation::new(DesConfig::drain(2)).run(&Half, &mut s);
        assert!((r.end_time - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_mean_response_matches_theory() {
        // k=1, inelastic only, λ=0.5, µ=1 → E[T] = 2.
        let r = run_markovian(&InelasticFirst, 1, 0.5, 0.0, 1.0, 1.0, 42, 20_000, 200_000);
        let want = eirs_queueing::MM1::new(0.5, 1.0).mean_response_time();
        assert!(
            (r.mean_response_inelastic - want).abs() / want < 0.03,
            "sim {} vs theory {want}",
            r.mean_response_inelastic
        );
    }

    #[test]
    fn mmk_mean_response_matches_theory() {
        // k=4, inelastic only, λ=3, µ=1.
        let r = run_markovian(&InelasticFirst, 4, 3.0, 0.0, 1.0, 1.0, 7, 20_000, 200_000);
        let want = eirs_queueing::MMk::new(3.0, 1.0, 4).mean_response_time();
        assert!(
            (r.mean_response_inelastic - want).abs() / want < 0.03,
            "sim {} vs theory {want}",
            r.mean_response_inelastic
        );
    }

    #[test]
    fn ef_elastic_class_is_mm1_at_rate_k_mu() {
        // Elastic under EF: M/M/1 with service rate kµ_E. k=4, λ_E=2, µ_E=1.
        let r = run_markovian(&ElasticFirst, 4, 0.0, 2.0, 1.0, 1.0, 11, 20_000, 200_000);
        let want = eirs_queueing::MM1::new(2.0, 4.0).mean_response_time();
        assert!(
            (r.mean_response_elastic - want).abs() / want < 0.03,
            "sim {} vs theory {want}",
            r.mean_response_elastic
        );
    }

    #[test]
    fn littles_law_holds_within_run() {
        let r = run_markovian(&InelasticFirst, 4, 1.5, 1.0, 1.0, 0.8, 3, 20_000, 150_000);
        // E[N] ≈ (λ_I + λ_E) E[T] — both estimated from the same run.
        let lhs = r.mean_num_in_system;
        let rhs = 2.5 * r.mean_response;
        assert!((lhs - rhs).abs() / rhs < 0.05, "N {lhs} vs λT {rhs}");
    }

    #[test]
    fn same_seed_same_report() {
        let a = run_markovian(&InelasticFirst, 2, 0.5, 0.5, 1.0, 1.0, 5, 100, 5_000);
        let b = run_markovian(&InelasticFirst, 2, 0.5, 0.5, 1.0, 1.0, 5, 100, 5_000);
        assert_eq!(a.mean_response, b.mean_response);
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn warmup_discards_departures() {
        let tr = trace(&[
            (0.0, JobClass::Inelastic, 1.0),
            (0.0, JobClass::Inelastic, 1.0),
            (5.0, JobClass::Inelastic, 1.0),
        ]);
        let mut s = tr.stream();
        let cfg = DesConfig {
            k: 1,
            stop: StopRule::Drain,
            warmup_departures: 2,
        };
        let r = Simulation::new(cfg).run(&InelasticFirst, &mut s);
        // Only the third departure is measured.
        assert_eq!(r.completed, [1, 0]);
        assert!((r.mean_response - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sim_time_stop_rule_ends_on_time() {
        let cfg = DesConfig {
            k: 1,
            stop: StopRule::SimTime(100.0),
            warmup_departures: 0,
        };
        use eirs_queueing::Exponential;
        let mut source = crate::arrivals::PoissonStream::new(
            0.5,
            0.0,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(1.0)),
            9,
        );
        let r = Simulation::new(cfg).run(&InelasticFirst, &mut source);
        assert!((r.end_time - 100.0).abs() < 1e-9);
    }

    #[test]
    fn work_accounting_matches_hand_computation() {
        // One inelastic job size 2 served alone on k=1 from t=0 to 2:
        // ∫W dt = ∫ (2−t) dt over [0,2] = 2. Time-avg W over [0,2] = 1.
        let tr = trace(&[(0.0, JobClass::Inelastic, 2.0)]);
        let mut s = tr.stream();
        let r = Simulation::new(DesConfig::drain(1)).run(&InelasticFirst, &mut s);
        assert!(
            (r.mean_work - 1.0).abs() < 1e-9,
            "mean work {}",
            r.mean_work
        );
        assert!((r.mean_work_inelastic - 1.0).abs() < 1e-9);
        assert!((r.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_drop_preempt_restarts_the_displaced_inelastic_job() {
        use crate::availability::{CapacityEvent, FaultSchedule};
        // k=2, two inelastic jobs of size 5 at t=0 under IF: one server
        // each. At t=2 capacity drops to 1: the job at position 1 has
        // progress (remaining 3) and is preempt-restarted — reset to
        // size 5, requeued behind the survivor. The survivor finishes at
        // t=5, the restarted job runs 5..10. ΣT = 5 + 10 = 15 (vs 10
        // fault-free). One preemption recorded.
        let tr = trace(&[
            (0.0, JobClass::Inelastic, 5.0),
            (0.0, JobClass::Inelastic, 5.0),
        ]);
        let faults = FaultSchedule::from_events(
            2,
            vec![
                CapacityEvent {
                    time: 2.0,
                    available: 1,
                },
                CapacityEvent {
                    time: 50.0,
                    available: 2,
                },
            ],
        );
        let mut s = tr.stream();
        let r = Simulation::new(DesConfig::drain(2))
            .with_faults(&faults)
            .run(&InelasticFirst, &mut s);
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.completed, [2, 0]);
        assert!(
            (r.total_response - 15.0).abs() < 1e-9,
            "{}",
            r.total_response
        );
        assert!((r.end_time - 10.0).abs() < 1e-9, "{}", r.end_time);
    }

    #[test]
    fn elastic_jobs_shrink_gracefully_without_losing_work() {
        use crate::availability::{CapacityEvent, FaultSchedule};
        // k=4, one elastic job of size 8 under EF: rate 4 until t=1
        // (4 units done), then capacity halves — rate 2 on the remaining
        // 4 units → done at t=3. No preemption, no lost work.
        let tr = trace(&[(0.0, JobClass::Elastic, 8.0)]);
        let faults = FaultSchedule::from_events(
            4,
            vec![
                CapacityEvent {
                    time: 1.0,
                    available: 2,
                },
                CapacityEvent {
                    time: 50.0,
                    available: 4,
                },
            ],
        );
        let mut s = tr.stream();
        let r = Simulation::new(DesConfig::drain(4))
            .with_faults(&faults)
            .run(&ElasticFirst, &mut s);
        assert_eq!(r.preemptions, 0);
        assert!((r.end_time - 3.0).abs() < 1e-9, "{}", r.end_time);
        assert!((r.mean_response - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_idles_without_consulting_the_policy() {
        use crate::availability::{CapacityEvent, FaultSchedule};
        /// Panics if ever asked to allocate on an empty cluster.
        struct NoZero;
        impl AllocationPolicy for NoZero {
            fn allocate(&self, i: usize, _j: usize, k: u32) -> crate::policy::ClassAllocation {
                assert!(k >= 1, "policy consulted at zero capacity");
                crate::policy::ClassAllocation {
                    inelastic: (i.min(k as usize)) as f64,
                    elastic: 0.0,
                }
            }
            fn name(&self) -> String {
                "NoZero".into()
            }
        }
        // The cluster is dark from t=0 to t=5; the size-1 job waits out
        // the outage and completes at t=6.
        let tr = trace(&[(0.0, JobClass::Inelastic, 1.0)]);
        let faults = FaultSchedule::from_events(
            1,
            vec![
                CapacityEvent {
                    time: 0.0,
                    available: 0,
                },
                CapacityEvent {
                    time: 5.0,
                    available: 1,
                },
            ],
        );
        let mut s = tr.stream();
        let r = Simulation::new(DesConfig::drain(1))
            .with_faults(&faults)
            .run(&NoZero, &mut s);
        assert!((r.end_time - 6.0).abs() < 1e-9, "{}", r.end_time);
        assert!((r.mean_response - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_fault_schedule_is_bit_identical_to_no_schedule() {
        use crate::availability::FaultSchedule;
        use eirs_queueing::Exponential;
        let run = |faulted: bool| {
            let mut source = crate::arrivals::PoissonStream::new(
                0.8,
                0.5,
                Box::new(Exponential::new(1.0)),
                Box::new(Exponential::new(1.0)),
                13,
            );
            let sim = Simulation::new(DesConfig::steady_state(2, 50, 2_000));
            let sim = if faulted {
                sim.with_faults(&FaultSchedule::none(2))
            } else {
                sim
            };
            sim.run(&InelasticFirst, &mut source)
        };
        let (a, b) = (run(false), run(true));
        assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
        assert_eq!(a.end_time.to_bits(), b.end_time.to_bits());
    }

    #[test]
    fn generated_crash_schedule_runs_to_completion_and_degrades() {
        use crate::availability::FaultSpec;
        use eirs_queueing::Exponential;
        let spec = FaultSpec::parse("crash:mtbf=30,mttr=10").unwrap();
        let run = |faulted: bool| {
            let mut source = crate::arrivals::PoissonStream::new(
                1.2,
                0.8,
                Box::new(Exponential::new(1.0)),
                Box::new(Exponential::new(1.0)),
                21,
            );
            let cfg = DesConfig {
                k: 4,
                stop: StopRule::SimTime(3_000.0),
                warmup_departures: 0,
            };
            let sim = Simulation::new(cfg);
            let sim = if faulted {
                sim.with_faults(&spec.schedule(4, 9, 3_000.0))
            } else {
                sim
            };
            sim.run(&crate::policy::FairShare, &mut source)
        };
        let faulted = run(true);
        let clean = run(false);
        assert!(faulted.preemptions > 0, "a lossy schedule must preempt");
        assert!(faulted.completed[0] + faulted.completed[1] > 0);
        // Losing ~25% of capacity must hurt mean response.
        assert!(
            faulted.mean_response > clean.mean_response,
            "faulted {} vs clean {}",
            faulted.mean_response,
            clean.mean_response
        );
    }

    #[test]
    fn preloaded_jobs_have_zero_arrival_time() {
        let mut sim = Simulation::new(DesConfig::drain(2));
        sim.preload([(JobClass::Inelastic, 1.0), (JobClass::Elastic, 2.0)]);
        let empty = ArrivalTrace::default();
        let mut s = empty.stream();
        let r = sim.run(&InelasticFirst, &mut s);
        // IF: inelastic done at 1 (1 server), elastic on remaining 1 server
        // until t=1 (1 unit done), then 2 servers: remaining 1 → 0.5 → t=1.5.
        assert!(
            (r.total_response - 2.5).abs() < 1e-9,
            "{}",
            r.total_response
        );
    }
}
