//! Streaming quantile estimation with the P² algorithm.
//!
//! Mean response time is the paper's objective, but real deployments (the
//! ML-inference example in Section 1.3) care about tails. Storing every
//! response time of a 10⁷-departure run just to read P99 is wasteful; the
//! P² algorithm (Jain & Chlamtac, CACM 1985) maintains a five-marker
//! parabolic approximation of the quantile in O(1) space and O(1) time per
//! observation, accurate to a fraction of a percent for smooth
//! distributions.

/// Streaming estimator of a single quantile `p ∈ (0, 1)`.
///
/// Equality compares the full marker state bit for bit — two estimators
/// are equal exactly when they observed the same values in the same
/// order (the P² update is order-dependent, which is also why sketches
/// from different shards cannot be merged; merged quantiles come from
/// the mergeable histograms in `eirs_obs`).
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the quantile curve).
    q: [f64; 5],
    /// Marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments per observation.
    dn: [f64; 5],
    count: u64,
    /// First five observations, before the markers initialize.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// An estimator for quantile `p` (e.g. `0.99` for P99).
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1), got {p}");
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// The tracked quantile parameter.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.warmup.push(x);
            if self.count == 5 {
                self.warmup
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
                for (i, &v) in self.warmup.iter().enumerate() {
                    self.q[i] = v;
                }
            }
            return;
        }

        // Locate the cell containing x and update extreme markers.
        let kcell = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };

        for marker in self.n.iter_mut().skip(kcell + 1) {
            *marker += 1.0;
        }
        for (npi, dni) in self.np.iter_mut().zip(&self.dn) {
            *npi += dni;
        }

        // Adjust the three interior markers with parabolic interpolation.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, q0, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, n0, np) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        q0 + d / (np - nm)
            * ((n0 - nm + d) * (qp - q0) / (np - n0) + (np - n0 - d) * (q0 - qm) / (n0 - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current quantile estimate. With fewer than five observations the
    /// exact empirical quantile of the warm-up buffer is returned.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.count < 5 {
            let mut buf = self.warmup.clone();
            buf.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
            let rank = (self.p * (buf.len() as f64 - 1.0)).round() as usize;
            return buf[rank.min(buf.len() - 1)];
        }
        self.q[2]
    }

    /// Serializes the full estimator state as whitespace-separated
    /// tokens (floats in Rust's shortest round-trippable form). The
    /// token count is `3 + warmup_len + 20`, so encodings are
    /// self-delimiting when concatenated — the serve-snapshot format
    /// relies on this to freeze per-shard sketches bit-exactly.
    pub fn encode(&self) -> String {
        let mut out = format!("{} {} {}", self.p, self.count, self.warmup.len());
        for v in &self.warmup {
            out.push_str(&format!(" {v}"));
        }
        for block in [&self.q, &self.n, &self.np, &self.dn] {
            for v in block {
                out.push_str(&format!(" {v}"));
            }
        }
        out
    }

    /// Parses one [`P2Quantile::encode`] state from the front of a token
    /// stream, consuming exactly the tokens it needs.
    pub fn decode_from<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> Result<Self, String> {
        let mut next_f64 = |name: &str| -> Result<f64, String> {
            tokens
                .next()
                .ok_or_else(|| format!("p2 state: missing {name}"))?
                .parse::<f64>()
                .map_err(|e| format!("p2 state {name}: {e}"))
        };
        let p = next_f64("p")?;
        if !(p > 0.0 && p < 1.0) {
            return Err(format!("p2 state: quantile {p} out of range"));
        }
        let count = next_f64("count")? as u64;
        let w_len = next_f64("warmup_len")? as usize;
        if w_len > 5 || w_len != (count.min(5)) as usize {
            return Err(format!(
                "p2 state: warmup length {w_len} inconsistent with count {count}"
            ));
        }
        let mut warmup = Vec::with_capacity(5);
        for i in 0..w_len {
            warmup.push(next_f64(&format!("warmup[{i}]"))?);
        }
        let mut est = P2Quantile::new(p);
        est.count = count;
        est.warmup = warmup;
        for block in [&mut est.q, &mut est.n, &mut est.np, &mut est.dn] {
            for (i, slot) in block.iter_mut().enumerate() {
                *slot = next_f64(&format!("marker[{i}]"))?;
            }
        }
        Ok(est)
    }
}

/// A bundle of the quantiles operators usually watch.
#[derive(Debug, Clone, PartialEq)]
pub struct TailStats {
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl TailStats {
    /// Fresh P50/P95/P99 trackers.
    pub fn new() -> Self {
        Self {
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Adds one observation to all trackers.
    pub fn push(&mut self, x: f64) {
        self.p50.push(x);
        self.p95.push(x);
        self.p99.push(x);
    }

    /// `(P50, P95, P99)` estimates.
    pub fn estimates(&self) -> (f64, f64, f64) {
        (
            self.p50.estimate(),
            self.p95.estimate(),
            self.p99.estimate(),
        )
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.p50.count()
    }

    /// Serializes all three estimator states on one line (see
    /// [`P2Quantile::encode`]; the per-estimator encodings are
    /// self-delimiting, so simple concatenation round-trips).
    pub fn encode(&self) -> String {
        format!(
            "{} {} {}",
            self.p50.encode(),
            self.p95.encode(),
            self.p99.encode()
        )
    }

    /// Parses a [`TailStats::encode`] line bit-exactly.
    pub fn decode(s: &str) -> Result<Self, String> {
        let mut tokens = s.split_whitespace();
        let out = Self {
            p50: P2Quantile::decode_from(&mut tokens)?,
            p95: P2Quantile::decode_from(&mut tokens)?,
            p99: P2Quantile::decode_from(&mut tokens)?,
        };
        if tokens.next().is_some() {
            return Err("tail state: trailing tokens".into());
        }
        Ok(out)
    }
}

impl Default for TailStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
        let rank = (p * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank]
    }

    #[test]
    fn uniform_quantiles_are_accurate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut est = P2Quantile::new(0.5);
        let mut all = Vec::new();
        for _ in 0..100_000 {
            let x: f64 = rng.random();
            est.push(x);
            all.push(x);
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let exact = exact_quantile(&all, 0.5);
        assert!(
            (est.estimate() - exact).abs() < 0.01,
            "{} vs {exact}",
            est.estimate()
        );
    }

    #[test]
    fn exponential_p99_is_accurate() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut est = P2Quantile::new(0.99);
        let mut all = Vec::new();
        for _ in 0..200_000 {
            let u: f64 = rng.random();
            let x = -(1.0 - u).ln();
            est.push(x);
            all.push(x);
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let exact = exact_quantile(&all, 0.99);
        // Theoretical P99 of Exp(1) is ln(100) ≈ 4.605.
        assert!(
            (est.estimate() - exact).abs() / exact < 0.05,
            "{} vs {exact}",
            est.estimate()
        );
    }

    #[test]
    fn small_samples_fall_back_to_exact() {
        let mut est = P2Quantile::new(0.5);
        est.push(3.0);
        est.push(1.0);
        est.push(2.0);
        assert_eq!(est.estimate(), 2.0);
    }

    #[test]
    fn empty_estimator_is_nan() {
        assert!(P2Quantile::new(0.9).estimate().is_nan());
    }

    #[test]
    fn estimates_are_monotone_across_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut tails = TailStats::new();
        for _ in 0..50_000 {
            let u: f64 = rng.random();
            tails.push(-(1.0 - u).ln() * 2.0);
        }
        let (p50, p95, p99) = tails.estimates();
        assert!(p50 < p95 && p95 < p99, "({p50}, {p95}, {p99})");
        assert_eq!(tails.count(), 50_000);
    }

    #[test]
    fn constant_stream_converges_to_the_constant() {
        let mut est = P2Quantile::new(0.95);
        for _ in 0..100 {
            est.push(7.0);
        }
        assert!((est.estimate() - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn rejects_out_of_range_p() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [0usize, 1, 4, 5, 6, 1000] {
            let mut tails = TailStats::new();
            for _ in 0..n {
                let u: f64 = rng.random();
                tails.push(-(1.0 - u).ln());
            }
            let restored = TailStats::decode(&tails.encode()).expect("round trip");
            assert_eq!(restored, tails, "state differs after {n} pushes");
            // And the restored sketch keeps evolving identically.
            let mut a = tails.clone();
            let mut b = restored;
            for _ in 0..100 {
                let u: f64 = rng.random();
                a.push(u);
                b.push(u);
            }
            assert_eq!(a, b);
        }
    }

    #[test]
    fn decode_rejects_malformed_state() {
        assert!(TailStats::decode("").is_err());
        assert!(TailStats::decode("0.5 0 0").is_err()); // only one estimator
        let good = TailStats::new().encode();
        assert!(TailStats::decode(&format!("{good} 7")).is_err()); // trailing token
        assert!(TailStats::decode(&good.replace("0.5", "1.5")).is_err());
    }
}
