//! Deterministic server-availability processes: the fault layer's source
//! of truth.
//!
//! The paper's model keeps all `k` servers up forever; a production fleet
//! does not. This module turns a seeded fault model ([`FaultSpec`]) into
//! an explicit, finite schedule of capacity-change events
//! ([`FaultSchedule`]) that the discrete-event simulator and the serving
//! engine consume identically. Three fault families cover the common
//! operating conditions:
//!
//! * **`crash`** — every server independently alternates exponential
//!   up-times (mean `mtbf`) and repair times (mean `mttr`): the classic
//!   machine-repair availability model.
//! * **`drain`** — scheduled maintenance: every `period` time units,
//!   `servers` servers drain for `down` time units. Fully deterministic
//!   (no randomness consumed), so it composes with trace replays without
//!   perturbing any seed.
//! * **`mmpp`** — spot-reclamation bursts: reclamation events arrive from
//!   an MMPP-2 (the same modulated process the arrival layer uses), each
//!   taking one server down for an exponential `mttr`; overlapping
//!   reclamations stack, flooring available capacity at zero.
//!
//! # Determinism contract
//!
//! Generation draws all randomness from `StdRng::seed_from_u64`: the same
//! `(spec, k, seed, horizon)` always yields the same event list, on every
//! platform. Sharded consumers derive per-shard schedules with
//! [`FaultSpec::schedule_for_shard`], which mixes the shard *index* (the
//! routing position — never the worker id) into the seed, so worker
//! parallelism cannot change what fails when.
//!
//! Every generated schedule ends with a full-recovery event at the
//! horizon: capacity past the horizon is `k` again, so drain phases
//! always terminate even when a fault interval straddles the horizon.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One capacity change: at `time`, the number of available servers
/// becomes `available` (an absolute level, not a delta — consumers never
/// have to track which individual server failed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityEvent {
    /// Epoch of the change.
    pub time: f64,
    /// Servers available from `time` on (`0 ..= k`).
    pub available: u32,
}

/// A fault model: how capacity is lost and recovered. Parsed from the
/// `churn` workload axis (see [`FaultSpec::parse`]) and expanded into a
/// concrete [`FaultSchedule`] per run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// Independent per-server crash/repair: exponential up-times with
    /// mean `mtbf`, exponential repairs with mean `mttr`.
    Crash {
        /// Mean time between failures of one server.
        mtbf: f64,
        /// Mean time to repair one server.
        mttr: f64,
    },
    /// Scheduled maintenance: every `period`, `servers` servers drain for
    /// `down` time units. Deterministic — consumes no randomness.
    Drain {
        /// Time between drain starts.
        period: f64,
        /// Length of each drain (must be `< period`).
        down: f64,
        /// Servers taken down per drain (capped at `k`).
        servers: u32,
    },
    /// MMPP-2-modulated reclamation bursts: reclamations arrive at rate
    /// `a0` (phase 0) / `a1` (phase 1) with phase-switch rates `r01` and
    /// `r10`; each takes one server for an exponential `mttr`.
    Mmpp {
        /// Phase 0 → 1 switch rate.
        r01: f64,
        /// Phase 1 → 0 switch rate.
        r10: f64,
        /// Reclamation rate in phase 0.
        a0: f64,
        /// Reclamation rate in phase 1.
        a1: f64,
        /// Mean repair time per reclaimed server.
        mttr: f64,
    },
}

/// The forms [`FaultSpec::parse`] accepts, quoted in its error message.
pub const FAULT_SPEC_FORMS: &str = "churn spec: crash:mtbf=<t>,mttr=<t> | \
     drain:period=<t>,down=<t>[,servers=<n>] | \
     mmpp:r01=<r>,r10=<r>,a0=<r>,a1=<r>[,mttr=<t>]";

impl FaultSpec {
    /// Parses a churn spec string: `crash:mtbf=50,mttr=5`,
    /// `drain:period=100,down=10,servers=1`, or
    /// `mmpp:r01=0.05,r10=0.5,a0=0.01,a1=1,mttr=5`. The canonical form
    /// printed by [`FaultSpec::label`] round-trips.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let bad = || format!("cannot parse '{spec}' (expected {FAULT_SPEC_FORMS})");
        let (family, rest) = spec.split_once(':').ok_or_else(bad)?;
        let mut fields = std::collections::BTreeMap::new();
        for pair in rest.split(',') {
            let (key, value) = pair.split_once('=').ok_or_else(bad)?;
            let value: f64 = value.parse().map_err(|_| bad())?;
            if !value.is_finite() {
                return Err(bad());
            }
            if fields.insert(key.trim(), value).is_some() {
                return Err(bad());
            }
        }
        let mut take = |key: &str| fields.remove(key).ok_or_else(bad);
        let parsed = match family {
            "crash" => {
                let (mtbf, mttr) = (take("mtbf")?, take("mttr")?);
                if mtbf <= 0.0 || mttr <= 0.0 {
                    return Err(bad());
                }
                FaultSpec::Crash { mtbf, mttr }
            }
            "drain" => {
                let (period, down) = (take("period")?, take("down")?);
                let servers = fields.remove("servers").unwrap_or(1.0);
                if period <= 0.0 || down <= 0.0 || down >= period {
                    return Err(bad());
                }
                if servers < 1.0 || servers.fract() != 0.0 || servers > u32::MAX as f64 {
                    return Err(bad());
                }
                FaultSpec::Drain {
                    period,
                    down,
                    servers: servers as u32,
                }
            }
            "mmpp" => {
                let (r01, r10) = (take("r01")?, take("r10")?);
                let (a0, a1) = (take("a0")?, take("a1")?);
                let mttr = fields.remove("mttr").unwrap_or(1.0);
                if r01 <= 0.0 || r10 <= 0.0 || a0 < 0.0 || a1 < 0.0 || mttr <= 0.0 {
                    return Err(bad());
                }
                if a0 + a1 <= 0.0 {
                    return Err(bad());
                }
                FaultSpec::Mmpp {
                    r01,
                    r10,
                    a0,
                    a1,
                    mttr,
                }
            }
            _ => return Err(bad()),
        };
        if fields.is_empty() {
            Ok(parsed)
        } else {
            Err(bad())
        }
    }

    /// Canonical spec string; [`FaultSpec::parse`] of the label yields an
    /// equal spec (used as the churn identity in snapshots and journals).
    pub fn label(&self) -> String {
        match *self {
            FaultSpec::Crash { mtbf, mttr } => format!("crash:mtbf={mtbf},mttr={mttr}"),
            FaultSpec::Drain {
                period,
                down,
                servers,
            } => format!("drain:period={period},down={down},servers={servers}"),
            FaultSpec::Mmpp {
                r01,
                r10,
                a0,
                a1,
                mttr,
            } => format!("mmpp:r01={r01},r10={r10},a0={a0},a1={a1},mttr={mttr}"),
        }
    }

    /// Expands the spec into the concrete event schedule for a `k`-server
    /// cluster over `[0, horizon]`.
    pub fn schedule(&self, k: u32, seed: u64, horizon: f64) -> FaultSchedule {
        assert!(k >= 1, "need at least one server");
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "fault horizon must be a finite positive time (got {horizon})"
        );
        let deltas = match *self {
            FaultSpec::Crash { mtbf, mttr } => crash_deltas(k, seed, horizon, mtbf, mttr),
            FaultSpec::Drain {
                period,
                down,
                servers,
            } => drain_deltas(k, horizon, period, down, servers),
            FaultSpec::Mmpp {
                r01,
                r10,
                a0,
                a1,
                mttr,
            } => mmpp_deltas(seed, horizon, r01, r10, a0, a1, mttr),
        };
        FaultSchedule {
            k,
            events: fold_deltas(k, horizon, deltas),
        }
    }

    /// The schedule for routing shard `shard` of a sharded consumer:
    /// [`FaultSpec::schedule`] under a seed mixed from `(seed, shard)`.
    /// Keyed on the shard *index* so faults are a pure function of the
    /// routing partition, invariant to worker parallelism.
    pub fn schedule_for_shard(
        &self,
        k: u32,
        seed: u64,
        shard: usize,
        horizon: f64,
    ) -> FaultSchedule {
        self.schedule(k, shard_seed(seed, shard as u64), horizon)
    }
}

/// SplitMix64-style mix of the base fault seed and a shard index.
fn shard_seed(seed: u64, shard: u64) -> u64 {
    let mut x = seed ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    // Same inverse-CDF discipline as the arrival layer: -mean·ln(1-u).
    let u: f64 = rng.random();
    -mean * (1.0 - u).ln()
}

/// Per-server alternating renewal: up Exp(mtbf), down Exp(mttr).
fn crash_deltas(k: u32, seed: u64, horizon: f64, mtbf: f64, mttr: f64) -> Vec<(f64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut deltas = Vec::new();
    for _server in 0..k {
        let mut t = 0.0;
        loop {
            t += sample_exp(&mut rng, mtbf);
            if t >= horizon {
                break;
            }
            deltas.push((t, 1));
            t += sample_exp(&mut rng, mttr);
            if t >= horizon {
                break;
            }
            deltas.push((t, -1));
        }
    }
    deltas
}

/// Deterministic periodic drains (no randomness consumed).
fn drain_deltas(k: u32, horizon: f64, period: f64, down: f64, servers: u32) -> Vec<(f64, i64)> {
    let lost = servers.min(k) as i64;
    let mut deltas = Vec::new();
    let mut m = 1u64;
    loop {
        let start = m as f64 * period;
        if start >= horizon {
            break;
        }
        deltas.push((start, lost));
        let end = start + down;
        if end < horizon {
            deltas.push((end, -lost));
        }
        m += 1;
    }
    deltas
}

/// Reclamation events from a simulated MMPP-2, each holding one server
/// for Exp(mttr).
#[allow(clippy::too_many_arguments)]
fn mmpp_deltas(
    seed: u64,
    horizon: f64,
    r01: f64,
    r10: f64,
    a0: f64,
    a1: f64,
    mttr: f64,
) -> Vec<(f64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut deltas = Vec::new();
    let mut phase = 0u8;
    let mut t = 0.0;
    loop {
        let (arrive, switch) = if phase == 0 { (a0, r01) } else { (a1, r10) };
        let total = arrive + switch;
        if total <= 0.0 {
            break;
        }
        t += sample_exp(&mut rng, 1.0 / total);
        if t >= horizon {
            break;
        }
        let pick: f64 = rng.random();
        if pick * total < arrive {
            deltas.push((t, 1));
            let repair = t + sample_exp(&mut rng, mttr);
            if repair < horizon {
                deltas.push((repair, -1));
            }
        } else {
            phase = 1 - phase;
        }
    }
    deltas
}

/// Sorts `(time, down-delta)` pairs and folds them into absolute
/// capacity levels, capping concurrent outages at `k` and appending the
/// full-recovery event at the horizon.
fn fold_deltas(k: u32, horizon: f64, mut deltas: Vec<(f64, i64)>) -> Vec<CapacityEvent> {
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut events: Vec<CapacityEvent> = Vec::new();
    let mut down = 0i64;
    for (time, delta) in deltas {
        down += delta;
        debug_assert!(down >= 0, "repair without a preceding failure");
        let available = k.saturating_sub(down.clamp(0, k as i64) as u32);
        match events.last_mut() {
            // Same-instant changes collapse to the final level.
            Some(last) if last.time == time => last.available = available,
            Some(last) if last.available == available => {}
            None if available == k => {}
            _ => events.push(CapacityEvent { time, available }),
        }
    }
    if events.last().is_some_and(|e| e.available != k) {
        events.push(CapacityEvent {
            time: horizon,
            available: k,
        });
    }
    events
}

/// A concrete, finite capacity-change schedule for one `k`-server
/// cluster (or cluster shard). Time-ordered; ends at full capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    k: u32,
    events: Vec<CapacityEvent>,
}

impl FaultSchedule {
    /// A schedule with no faults: capacity is `k` forever.
    pub fn none(k: u32) -> Self {
        assert!(k >= 1, "need at least one server");
        Self {
            k,
            events: Vec::new(),
        }
    }

    /// A schedule from an explicit event list (hand-written fault
    /// scripts in tests, or events deserialized by a consumer). Events
    /// must be time-ordered with capacities in `0 ..= k`.
    pub fn from_events(k: u32, events: Vec<CapacityEvent>) -> Self {
        assert!(k >= 1, "need at least one server");
        for pair in events.windows(2) {
            assert!(pair[0].time <= pair[1].time, "events must be time-ordered");
        }
        for e in &events {
            assert!(e.available <= k, "capacity {} above k={k}", e.available);
            assert!(e.time >= 0.0, "negative event time");
        }
        Self { k, events }
    }

    /// The nominal cluster size the schedule was generated for.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The time-ordered capacity events.
    pub fn events(&self) -> &[CapacityEvent] {
        &self.events
    }

    /// Available servers at time `t` (capacity changes take effect at
    /// their timestamp).
    pub fn available_at(&self, t: f64) -> u32 {
        match self.events.partition_point(|e| e.time <= t) {
            0 => self.k,
            n => self.events[n - 1].available,
        }
    }

    /// The deepest capacity loss anywhere in the schedule.
    pub fn min_available(&self) -> u32 {
        self.events
            .iter()
            .map(|e| e.available)
            .min()
            .unwrap_or(self.k)
    }

    /// Fraction of server-time lost over `[0, horizon]`: the integral of
    /// `(k - available)` divided by `k·horizon`. The x-axis of the
    /// degradation-curve bench.
    pub fn capacity_loss(&self, horizon: f64) -> f64 {
        assert!(horizon > 0.0, "need a positive horizon");
        let mut lost = 0.0;
        let mut level = self.k;
        let mut at = 0.0;
        for e in &self.events {
            let until = e.time.min(horizon);
            if until > at {
                lost += (self.k - level) as f64 * (until - at);
                at = until;
            }
            level = e.available;
        }
        if horizon > at {
            lost += (self.k - level) as f64 * (horizon - at);
        }
        lost / (self.k as f64 * horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_label() {
        for spec in [
            "crash:mtbf=50,mttr=5",
            "drain:period=100,down=10,servers=2",
            "mmpp:r01=0.05,r10=0.5,a0=0.01,a1=1,mttr=5",
        ] {
            let parsed = FaultSpec::parse(spec).expect(spec);
            let relabeled = FaultSpec::parse(&parsed.label()).expect("label parses");
            assert_eq!(parsed, relabeled, "{spec}");
        }
        // Defaults fill in and appear in the canonical label.
        let drain = FaultSpec::parse("drain:period=10,down=1").unwrap();
        assert_eq!(drain.label(), "drain:period=10,down=1,servers=1");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "crash",
            "crash:",
            "crash:mtbf=50",
            "crash:mtbf=50,mttr=0",
            "crash:mtbf=-1,mttr=5",
            "crash:mtbf=50,mttr=5,extra=1",
            "crash:mtbf=50,mtbf=60,mttr=5",
            "drain:period=10,down=10",
            "drain:period=10,down=1,servers=0",
            "drain:period=10,down=1,servers=1.5",
            "mmpp:r01=0,r10=0.5,a0=0.1,a1=1",
            "mmpp:r01=0.1,r10=0.5,a0=0,a1=0",
            "meteor:strike=1",
            "crash:mtbf=inf,mttr=5",
        ] {
            let err = FaultSpec::parse(bad).expect_err(bad);
            assert!(err.contains("cannot parse"), "{bad}: {err}");
            assert!(err.contains("expected"), "{bad}: {err}");
        }
    }

    #[test]
    fn same_seed_same_schedule_different_seed_different() {
        let spec = FaultSpec::parse("crash:mtbf=20,mttr=4").unwrap();
        let a = spec.schedule(4, 7, 500.0);
        let b = spec.schedule(4, 7, 500.0);
        assert_eq!(a, b);
        let c = spec.schedule(4, 8, 500.0);
        assert_ne!(a, c, "different seeds should fault differently");
    }

    #[test]
    fn shard_schedules_differ_by_shard_index() {
        let spec = FaultSpec::parse("crash:mtbf=20,mttr=4").unwrap();
        let s0 = spec.schedule_for_shard(4, 7, 0, 500.0);
        let s1 = spec.schedule_for_shard(4, 7, 1, 500.0);
        assert_ne!(s0, s1);
        assert_eq!(s0, spec.schedule_for_shard(4, 7, 0, 500.0));
    }

    #[test]
    fn drain_schedule_is_exactly_periodic() {
        let spec = FaultSpec::Drain {
            period: 10.0,
            down: 2.0,
            servers: 1,
        };
        let sched = spec.schedule(3, 0, 31.0);
        let events = sched.events();
        // Drains at 10 and 20 complete; the drain at 30 is cut by the
        // horizon's full-recovery event.
        assert_eq!(
            events,
            &[
                CapacityEvent {
                    time: 10.0,
                    available: 2
                },
                CapacityEvent {
                    time: 12.0,
                    available: 3
                },
                CapacityEvent {
                    time: 20.0,
                    available: 2
                },
                CapacityEvent {
                    time: 22.0,
                    available: 3
                },
                CapacityEvent {
                    time: 30.0,
                    available: 2
                },
                CapacityEvent {
                    time: 31.0,
                    available: 3
                },
            ]
        );
        assert_eq!(sched.available_at(11.0), 2);
        assert_eq!(sched.available_at(15.0), 3);
        assert_eq!(sched.available_at(0.0), 3);
        assert_eq!(sched.min_available(), 2);
        // Lost server-time: 2+2+1 = 5 of 3·31.
        assert!((sched.capacity_loss(31.0) - 5.0 / 93.0).abs() < 1e-12);
    }

    #[test]
    fn schedules_end_recovered_and_stay_in_range() {
        for spec in [
            FaultSpec::parse("crash:mtbf=5,mttr=5").unwrap(),
            FaultSpec::parse("mmpp:r01=0.2,r10=0.5,a0=0.05,a1=2,mttr=3").unwrap(),
            FaultSpec::parse("drain:period=7,down=3,servers=9").unwrap(),
        ] {
            for seed in 0..5u64 {
                let sched = spec.schedule(3, seed, 200.0);
                let events = sched.events();
                for pair in events.windows(2) {
                    assert!(pair[0].time <= pair[1].time, "{spec:?} unordered");
                }
                for e in events {
                    assert!(e.available <= 3, "{spec:?} capacity above k");
                    assert!(e.time <= 200.0, "{spec:?} event past horizon");
                }
                assert_eq!(
                    events.last().map_or(3, |e| e.available),
                    3,
                    "{spec:?} must end fully recovered"
                );
                assert_eq!(sched.available_at(1e18), 3);
            }
        }
    }

    #[test]
    fn crash_downtime_matches_the_availability_formula() {
        // Steady-state per-server unavailability = mttr/(mtbf+mttr) = 1/6.
        let spec = FaultSpec::Crash {
            mtbf: 50.0,
            mttr: 10.0,
        };
        let mut loss = 0.0;
        let n = 40;
        for seed in 0..n {
            loss += spec.schedule(8, seed, 5_000.0).capacity_loss(5_000.0);
        }
        let mean = loss / n as f64;
        assert!(
            (mean - 1.0 / 6.0).abs() < 0.02,
            "mean capacity loss {mean} vs theory {}",
            1.0 / 6.0
        );
    }

    #[test]
    fn mmpp_reclamations_stack_and_floor_at_zero() {
        // Ferocious reclamation rate on a tiny cluster: capacity must
        // floor at zero, never wrap.
        let spec = FaultSpec::Mmpp {
            r01: 0.5,
            r10: 0.5,
            a0: 2.0,
            a1: 2.0,
            mttr: 10.0,
        };
        let sched = spec.schedule(2, 3, 100.0);
        assert_eq!(sched.min_available(), 0);
        for e in sched.events() {
            assert!(e.available <= 2);
        }
    }

    #[test]
    fn none_schedule_never_changes_capacity() {
        let sched = FaultSchedule::none(4);
        assert!(sched.events().is_empty());
        assert_eq!(sched.available_at(123.0), 4);
        assert_eq!(sched.min_available(), 4);
        assert_eq!(sched.capacity_loss(10.0), 0.0);
    }
}
