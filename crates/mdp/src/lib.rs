//! Average-cost MDP solver for the elastic/inelastic allocation problem.
//!
//! The paper proves Inelastic-First optimal for `µ_I ≥ µ_E` (Theorems 1
//! and 5) and leaves the optimal policy for `µ_I < µ_E` open (Section 6).
//! This crate attacks both numerically, in the style of the MDP analysis of
//! Berg, Dorsman & Harchol-Balter (2018) that the paper cites:
//!
//! 1. **Uniformize** the CTMC on a truncated grid `(i, j) ∈ [0, N_I] ×
//!    [0, N_E]` (arrivals at the boundary are rejected) with constant
//!    `Λ = λ_I + λ_E + k·max(µ_I, µ_E)`.
//! 2. Run **relative value iteration** on the cost rate `c(i,j) = i + j`
//!    (by Little's law, minimizing `E[N]` minimizes `E[T]`).
//! 3. Extract the optimal stationary allocation and its average cost.
//!
//! Because the uniformized Bellman operator is *linear* in the allocation
//! pair `(a, e)`, the optimum over the allocation polytope
//! `{0 ≤ a ≤ min(i,k), 0 ≤ e ≤ (k−a)·1{j>0}}` is attained at a vertex, so
//! integer actions suffice. The `allow_idling` switch adds the idle vertices
//! `e = 0` (and free `a` at `j = 0`), which lets the tests verify
//! Appendix B (there is always a non-idling optimal policy) numerically.

//!
//! The solved policy is not a dead end: [`MdpSolution::tabular_policy`]
//! packs the optimal actions into an
//! [`eirs_sim::policy::TabularPolicy`], so the numerically-optimal policy
//! can be run through the DES, the state-level CTMC simulator, and the
//! policy-generic QBD analysis in `eirs-core` like any hand-written
//! policy; [`evaluate_allocation_policy`] goes the other way and scores
//! any shared-layer policy on this crate's truncated grid.

mod solver;

pub use solver::{
    ef_allocation, evaluate_allocation_policy, evaluate_policy, if_allocation, solve_optimal,
    MdpConfig, MdpError, MdpSolution, PolicyFn,
};
