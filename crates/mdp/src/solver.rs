//! Relative value iteration on the uniformized, truncated chain.

use eirs_sim::policy::{AllocationPolicy, TabularPolicy};

/// Configuration of the truncated MDP.
#[derive(Debug, Clone, Copy)]
pub struct MdpConfig {
    /// Number of servers `k`.
    pub k: u32,
    /// Inelastic arrival rate.
    pub lambda_i: f64,
    /// Elastic arrival rate.
    pub lambda_e: f64,
    /// Inelastic size rate.
    pub mu_i: f64,
    /// Elastic size rate.
    pub mu_e: f64,
    /// Truncation: `i ≤ max_i` (arrivals beyond are rejected).
    pub max_i: usize,
    /// Truncation: `j ≤ max_j`.
    pub max_j: usize,
    /// Include idling vertices in the action set (Appendix B ablation).
    pub allow_idling: bool,
}

impl MdpConfig {
    /// Uniformization constant `Λ`.
    pub fn uniformization_rate(&self) -> f64 {
        self.lambda_i + self.lambda_e + self.k as f64 * self.mu_i.max(self.mu_e)
    }

    fn states(&self) -> usize {
        (self.max_i + 1) * (self.max_j + 1)
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        i * (self.max_j + 1) + j
    }

    fn validate(&self) {
        assert!(self.k >= 1);
        assert!(self.lambda_i >= 0.0 && self.lambda_e >= 0.0);
        assert!(self.mu_i > 0.0 && self.mu_e > 0.0);
        assert!(self.max_i >= 1 && self.max_j >= 1);
    }
}

/// Failures of the value iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum MdpError {
    /// Span did not contract below tolerance within the iteration budget.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final span of the value difference.
        span: f64,
    },
}

impl std::fmt::Display for MdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdpError::NotConverged { iterations, span } => write!(
                f,
                "relative value iteration did not converge in {iterations} iterations (span {span:.3e})"
            ),
        }
    }
}

impl std::error::Error for MdpError {}

/// A fixed stationary policy for evaluation: maps `(i, j)` to the
/// (possibly fractional) allocation `(servers_to_inelastic,
/// servers_to_elastic)`.
pub type PolicyFn<'a> = &'a dyn Fn(usize, usize) -> (f64, f64);

/// Solution of the truncated average-cost MDP.
#[derive(Debug, Clone)]
pub struct MdpSolution {
    /// Optimal long-run average number of jobs in system `g = E[N]`.
    pub average_cost: f64,
    /// Optimal integer inelastic allocation per state (row-major over
    /// `(i, j)`), paired with the elastic allocation actually used.
    actions: Vec<(u32, u32)>,
    k: u32,
    max_i: usize,
    max_j: usize,
    /// Iterations used.
    pub iterations: usize,
}

impl MdpSolution {
    /// The optimal action `(a, e)` in state `(i, j)`.
    pub fn action(&self, i: usize, j: usize) -> (u32, u32) {
        self.actions[i * (self.max_j + 1) + j]
    }

    /// Packs the optimal actions into a [`TabularPolicy`] — the bridge that
    /// turns solver output into an [`AllocationPolicy`] every substrate
    /// understands. States beyond the truncation grid clamp to the grid
    /// edge (the standard extension; boundary actions there react to
    /// rejected arrivals, so downstream analyses should use a grid
    /// comfortably larger than the region that carries probability mass).
    pub fn tabular_policy(&self) -> TabularPolicy {
        TabularPolicy::from_fn(
            format!("MdpOptimal(k={})", self.k),
            self.k,
            self.max_i,
            self.max_j,
            |i, j| {
                let (a, e) = self.action(i, j);
                (a as f64, e as f64)
            },
        )
    }

    /// `true` when the extracted policy allocates like Inelastic-First on
    /// the interior region `i ≤ i_max, j ≤ j_max`.
    ///
    /// Two caveats make a whole-grid check meaningless: actions at the
    /// truncation boundary react to rejected arrivals (an artifact of the
    /// finite grid), and in deep, rarely-visited states with `µ_I = µ_E`
    /// all work-conserving allocations are optimal to within the value-
    /// iteration tolerance, so ties are broken arbitrarily. Callers should
    /// pass a region well inside the grid.
    pub fn matches_inelastic_first(&self, k: u32, i_max: usize, j_max: usize) -> bool {
        assert!(j_max <= self.max_j);
        for i in 0..=i_max {
            for j in 0..=j_max {
                let (a, _) = self.action(i, j);
                if i > 0 || j > 0 {
                    let want = (i as u32).min(k);
                    if a != want {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Mean response time via Little's law, `E[T] = g / (λ_I + λ_E)`.
    pub fn mean_response(&self, lambda_total: f64) -> f64 {
        self.average_cost / lambda_total
    }
}

/// Per-state candidate actions: vertices of the allocation polytope.
fn candidate_actions(cfg: &MdpConfig, i: usize, j: usize, out: &mut Vec<(u32, u32)>) {
    out.clear();
    let k = cfg.k;
    let cap = (i as u32).min(k);
    if j == 0 {
        if cfg.allow_idling {
            for a in 0..=cap {
                out.push((a, 0));
            }
        } else {
            out.push((cap, 0));
        }
        return;
    }
    for a in 0..=cap {
        out.push((a, k - a));
        if cfg.allow_idling {
            out.push((a, 0));
        }
    }
}

/// Solves the truncated average-cost MDP by relative value iteration.
///
/// Ties in the Bellman minimization are broken toward *larger* inelastic
/// allocations, so in the `µ_I = µ_E` regime (where many allocations are
/// optimal) the extracted policy is IF itself.
pub fn solve_optimal(cfg: &MdpConfig, tol: f64, max_iter: usize) -> Result<MdpSolution, MdpError> {
    cfg.validate();
    let n = cfg.states();
    let lam = cfg.uniformization_rate();
    let mut h = vec![0.0f64; n];
    let mut h_next = vec![0.0f64; n];
    let mut actions = vec![(0u32, 0u32); n];
    let mut candidates: Vec<(u32, u32)> = Vec::with_capacity(2 * (cfg.k as usize + 1));

    let mut g_estimate = 0.0;
    for it in 0..max_iter {
        let mut min_delta = f64::INFINITY;
        let mut max_delta = f64::NEG_INFINITY;
        for i in 0..=cfg.max_i {
            for j in 0..=cfg.max_j {
                let s = cfg.index(i, j);
                let cost = (i + j) as f64;
                // Arrival terms are action-independent.
                let up_i = if i < cfg.max_i {
                    h[cfg.index(i + 1, j)]
                } else {
                    h[s]
                };
                let up_j = if j < cfg.max_j {
                    h[cfg.index(i, j + 1)]
                } else {
                    h[s]
                };
                let base = cost + cfg.lambda_i * up_i + cfg.lambda_e * up_j;

                candidate_actions(cfg, i, j, &mut candidates);
                let mut best = f64::INFINITY;
                let mut best_action = (0u32, 0u32);
                for &(a, e) in &candidates {
                    let d_i = a as f64 * cfg.mu_i;
                    let d_e = e as f64 * cfg.mu_e;
                    let down_i = if a > 0 { h[cfg.index(i - 1, j)] } else { 0.0 };
                    let down_j = if e > 0 { h[cfg.index(i, j - 1)] } else { 0.0 };
                    let stay = lam - cfg.lambda_i - cfg.lambda_e - d_i - d_e;
                    debug_assert!(stay >= -1e-9);
                    let v = base + d_i * down_i + d_e * down_j + stay * h[s];
                    // Strictly-better or tie-with-larger-a wins.
                    if v < best - 1e-12 || (v < best + 1e-12 && (a, e) > best_action) {
                        if v < best {
                            best = v;
                        }
                        best_action = (a, e);
                    }
                }
                let value = best / lam;
                h_next[s] = value;
                actions[s] = best_action;
                let delta = value - h[s];
                min_delta = min_delta.min(delta);
                max_delta = max_delta.max(delta);
            }
        }
        // Average cost per unit time: deltas converge to g/Λ.
        g_estimate = 0.5 * (min_delta + max_delta) * lam;
        let span = max_delta - min_delta;
        // Renormalize (relative VI) to keep h bounded.
        let offset = h_next[0];
        for (dst, src) in h.iter_mut().zip(&h_next) {
            *dst = src - offset;
        }
        if span * lam < tol {
            return Ok(MdpSolution {
                average_cost: g_estimate,
                actions,
                k: cfg.k,
                max_i: cfg.max_i,
                max_j: cfg.max_j,
                iterations: it + 1,
            });
        }
    }
    Err(MdpError::NotConverged {
        iterations: max_iter,
        span: g_estimate,
    })
}

/// Evaluates a *fixed* stationary policy on the truncated chain, returning
/// its long-run average number in system `E[N]`.
///
/// Allocations may be fractional; they are clamped to the feasible polytope.
pub fn evaluate_policy(
    cfg: &MdpConfig,
    policy: PolicyFn<'_>,
    tol: f64,
    max_iter: usize,
) -> Result<f64, MdpError> {
    cfg.validate();
    let n = cfg.states();
    let lam = cfg.uniformization_rate();
    let kf = cfg.k as f64;
    // Precompute per-state rates.
    let mut rate_i = vec![0.0f64; n];
    let mut rate_e = vec![0.0f64; n];
    for i in 0..=cfg.max_i {
        for j in 0..=cfg.max_j {
            let (a, e) = policy(i, j);
            let a = a.clamp(0.0, (i as f64).min(kf));
            let e = if j > 0 { e.clamp(0.0, kf - a) } else { 0.0 };
            let s = cfg.index(i, j);
            rate_i[s] = a * cfg.mu_i;
            rate_e[s] = e * cfg.mu_e;
        }
    }
    let mut h = vec![0.0f64; n];
    let mut h_next = vec![0.0f64; n];
    for it in 0..max_iter {
        let mut min_delta = f64::INFINITY;
        let mut max_delta = f64::NEG_INFINITY;
        for i in 0..=cfg.max_i {
            for j in 0..=cfg.max_j {
                let s = cfg.index(i, j);
                let up_i = if i < cfg.max_i {
                    h[cfg.index(i + 1, j)]
                } else {
                    h[s]
                };
                let up_j = if j < cfg.max_j {
                    h[cfg.index(i, j + 1)]
                } else {
                    h[s]
                };
                let down_i = if i > 0 { h[cfg.index(i - 1, j)] } else { 0.0 };
                let down_j = if j > 0 { h[cfg.index(i, j - 1)] } else { 0.0 };
                let d_i = rate_i[s];
                let d_e = rate_e[s];
                let stay = lam - cfg.lambda_i - cfg.lambda_e - d_i - d_e;
                let v = ((i + j) as f64
                    + cfg.lambda_i * up_i
                    + cfg.lambda_e * up_j
                    + d_i * down_i
                    + d_e * down_j
                    + stay * h[s])
                    / lam;
                h_next[s] = v;
                let delta = v - h[s];
                min_delta = min_delta.min(delta);
                max_delta = max_delta.max(delta);
            }
        }
        let g = 0.5 * (min_delta + max_delta) * lam;
        let span = max_delta - min_delta;
        let offset = h_next[0];
        for (dst, src) in h.iter_mut().zip(&h_next) {
            *dst = src - offset;
        }
        if span * lam < tol {
            return Ok(g);
        }
        if it == max_iter - 1 {
            return Err(MdpError::NotConverged {
                iterations: max_iter,
                span: span * lam,
            });
        }
    }
    unreachable!("loop returns");
}

/// [`evaluate_policy`] for a shared-layer [`AllocationPolicy`]: evaluates
/// the policy's allocation map on the truncated grid, returning its
/// long-run average number in system `E[N]`. This is the third substrate
/// (after the QBD analysis and the simulators) on which any policy from
/// the shared registry can be scored.
pub fn evaluate_allocation_policy(
    cfg: &MdpConfig,
    policy: &dyn AllocationPolicy,
    tol: f64,
    max_iter: usize,
) -> Result<f64, MdpError> {
    let k = cfg.k;
    evaluate_policy(
        cfg,
        &move |i, j| {
            let a = policy.allocate(i, j, k);
            (a.inelastic, a.elastic)
        },
        tol,
        max_iter,
    )
}

/// The IF allocation as a [`PolicyFn`]-compatible closure target.
pub fn if_allocation(k: u32) -> impl Fn(usize, usize) -> (f64, f64) {
    move |i, j| {
        let kf = k as f64;
        let a = (i as f64).min(kf);
        let e = if j > 0 { kf - a } else { 0.0 };
        (a, e)
    }
}

/// The EF allocation as a [`PolicyFn`]-compatible closure target.
pub fn ef_allocation(k: u32) -> impl Fn(usize, usize) -> (f64, f64) {
    move |i, j| {
        let kf = k as f64;
        if j > 0 {
            (0.0, kf)
        } else {
            ((i as f64).min(kf), 0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(k: u32, li: f64, le: f64, mi: f64, me: f64, n: usize) -> MdpConfig {
        MdpConfig {
            k,
            lambda_i: li,
            lambda_e: le,
            mu_i: mi,
            mu_e: me,
            max_i: n,
            max_j: n,
            allow_idling: false,
        }
    }

    #[test]
    fn policy_evaluation_recovers_mm1() {
        // Pure inelastic M/M/1: E[N] = ρ/(1−ρ) = 1 at ρ = 0.5.
        let c = cfg(1, 0.5, 0.0, 1.0, 1.0, 80);
        let g = evaluate_policy(&c, &if_allocation(1), 1e-10, 200_000).unwrap();
        assert!((g - 1.0).abs() < 1e-6, "E[N] {g}");
    }

    #[test]
    fn policy_evaluation_recovers_mmk() {
        let c = cfg(4, 3.0, 0.0, 1.0, 1.0, 80);
        let g = evaluate_policy(&c, &if_allocation(4), 1e-10, 200_000).unwrap();
        let want = eirs_queueing::MMk::new(3.0, 1.0, 4).mean_number_in_system();
        assert!((g - want).abs() / want < 1e-6, "E[N] {g} vs {want}");
    }

    #[test]
    fn optimal_cost_is_no_worse_than_if_and_ef() {
        let c = cfg(2, 0.4, 0.4, 1.0, 1.2, 40);
        let opt = solve_optimal(&c, 1e-9, 200_000).unwrap();
        let g_if = evaluate_policy(&c, &if_allocation(2), 1e-9, 200_000).unwrap();
        let g_ef = evaluate_policy(&c, &ef_allocation(2), 1e-9, 200_000).unwrap();
        assert!(opt.average_cost <= g_if + 1e-6);
        assert!(opt.average_cost <= g_ef + 1e-6);
    }

    #[test]
    fn if_is_optimal_when_mu_i_geq_mu_e() {
        // Theorem 5 numerically: the optimal average cost equals IF's.
        for (mi, me) in [(1.0, 1.0), (1.5, 1.0), (2.0, 0.5)] {
            let c = cfg(2, 0.5, 0.3, mi, me, 50);
            let opt = solve_optimal(&c, 1e-9, 400_000).unwrap();
            let g_if = evaluate_policy(&c, &if_allocation(2), 1e-9, 400_000).unwrap();
            assert!(
                (opt.average_cost - g_if).abs() < 1e-5,
                "(µI={mi}, µE={me}): opt {} vs IF {g_if}",
                opt.average_cost
            );
        }
    }

    #[test]
    fn if_is_strictly_suboptimal_for_small_mu_i_at_load() {
        // µ_I < µ_E with enough load: the optimal policy beats IF.
        let c = cfg(2, 0.5, 0.5, 0.25, 1.0, 60);
        let opt = solve_optimal(&c, 1e-9, 400_000).unwrap();
        let g_if = evaluate_policy(&c, &if_allocation(2), 1e-9, 400_000).unwrap();
        assert!(
            opt.average_cost < g_if - 1e-3,
            "opt {} vs IF {g_if}",
            opt.average_cost
        );
    }

    #[test]
    fn extracted_policy_is_if_in_the_optimal_regime() {
        let c = cfg(2, 0.5, 0.3, 2.0, 1.0, 30);
        let opt = solve_optimal(&c, 1e-9, 400_000).unwrap();
        assert!(opt.matches_inelastic_first(2, 12, 12));
    }

    #[test]
    fn idling_never_helps() {
        // Appendix B / Theorem 12 numerically: expanding the action space
        // with idling vertices does not lower the optimal cost.
        for (mi, me) in [(1.0, 1.0), (0.5, 1.0), (2.0, 1.0)] {
            let base = cfg(2, 0.4, 0.4, mi, me, 30);
            let idling = MdpConfig {
                allow_idling: true,
                ..base
            };
            let g_base = solve_optimal(&base, 1e-9, 400_000).unwrap().average_cost;
            let g_idle = solve_optimal(&idling, 1e-9, 400_000).unwrap().average_cost;
            assert!(
                (g_base - g_idle).abs() < 1e-5,
                "(µI={mi}, µE={me}): non-idling {g_base} vs idling {g_idle}"
            );
        }
    }

    #[test]
    fn tabular_bridge_reproduces_the_optimal_average_cost() {
        // Re-evaluating the solver's own policy through the TabularPolicy
        // bridge must return the optimal average cost: solver → policy →
        // evaluator closes the loop.
        let c = cfg(2, 0.5, 0.5, 0.25, 1.0, 40);
        let opt = solve_optimal(&c, 1e-9, 400_000).unwrap();
        let policy = opt.tabular_policy();
        assert_eq!(policy.k(), 2);
        assert_eq!((policy.max_i(), policy.max_j()), (40, 40));
        let g = evaluate_allocation_policy(&c, &policy, 1e-9, 400_000).unwrap();
        assert!(
            (g - opt.average_cost).abs() < 1e-6,
            "bridge {g} vs optimal {}",
            opt.average_cost
        );
    }

    #[test]
    fn allocation_policy_evaluation_matches_closure_evaluation() {
        let c = cfg(2, 0.4, 0.4, 1.0, 1.2, 40);
        let g_closure = evaluate_policy(&c, &if_allocation(2), 1e-9, 200_000).unwrap();
        let g_policy =
            evaluate_allocation_policy(&c, &eirs_sim::policy::InelasticFirst, 1e-9, 200_000)
                .unwrap();
        assert_eq!(g_closure.to_bits(), g_policy.to_bits());
    }

    #[test]
    fn mean_response_uses_littles_law() {
        let c = cfg(2, 0.4, 0.4, 1.0, 1.0, 40);
        let opt = solve_optimal(&c, 1e-9, 200_000).unwrap();
        assert!((opt.mean_response(0.8) - opt.average_cost / 0.8).abs() < 1e-12);
    }

    #[test]
    fn truncation_error_shrinks_with_grid() {
        let coarse = cfg(1, 0.5, 0.0, 1.0, 1.0, 10);
        let fine = cfg(1, 0.5, 0.0, 1.0, 1.0, 60);
        let g_coarse = evaluate_policy(&coarse, &if_allocation(1), 1e-10, 100_000).unwrap();
        let g_fine = evaluate_policy(&fine, &if_allocation(1), 1e-10, 100_000).unwrap();
        assert!((g_fine - 1.0).abs() < (g_coarse - 1.0).abs());
    }
}
