//! Inelastic-First analysis (paper Appendix D, Figure 7).
//!
//! Under IF, inelastic jobs preempt everything, so:
//!
//! * inelastic class = M/M/k(λ_I, µ_I) — exact (Erlang-C);
//! * elastic class = QBD over levels `j` (number of elastic jobs) with
//!   `k + 2` phases: phases `0..k-1` track the number of inelastic jobs
//!   while it is below `k` (the head-of-line elastic job then runs on the
//!   remaining `k − i` servers), and phases `b1`/`b2` are the two Coxian
//!   stages of an *inelastic* busy-at-`k` period, during which elastic jobs
//!   receive no service.
//!
//! The Coxian `(γ1, γ2, γ3)` matches the first three moments of the
//! M/M/1(λ_I, kµ_I) busy period: once all `k` servers hold inelastic jobs,
//! further inelastic arrivals queue and the excursion back down to `k − 1`
//! inelastic jobs is exactly such a busy period (Figure 7b → 7c).

use super::{AnalysisError, PolicyAnalysis};
use crate::params::SystemParams;
use eirs_markov::qbd::Qbd;
use eirs_numerics::Matrix;
use eirs_queueing::coxian::fit_busy_period;
use eirs_queueing::{MMk, MM1};

/// Mean response time (and class means) under **Inelastic-First**.
pub fn analyze_inelastic_first(params: &SystemParams) -> Result<PolicyAnalysis, AnalysisError> {
    let kf = params.k as f64;

    // Inelastic class: exact M/M/k.
    let n_i = if params.lambda_i > 0.0 {
        MMk::new(params.lambda_i, params.mu_i, params.k).mean_number_in_system()
    } else {
        0.0
    };

    if params.lambda_e == 0.0 {
        return Ok(PolicyAnalysis::from_class_means(params, n_i, 0.0));
    }
    if params.lambda_i == 0.0 {
        // Elastic jobs alone: M/M/1 at rate kµ_E.
        let n_e = MM1::new(params.lambda_e, kf * params.mu_e).mean_number_in_system();
        return Ok(PolicyAnalysis::from_class_means(params, 0.0, n_e));
    }

    let n_e = elastic_mean_number(params)?;
    Ok(PolicyAnalysis::from_class_means(params, n_i, n_e))
}

/// Builds and solves the busy-period-transformed IF chain, returning
/// `E[N_E]`.
fn elastic_mean_number(params: &SystemParams) -> Result<f64, AnalysisError> {
    let k = params.k as usize;
    let kf = params.k as f64;
    let phases = k + 2; // 0..k-1 inelastic counts, then b1, b2.
    let b1 = k;
    let b2 = k + 1;

    let cox = fit_busy_period(&MM1::new(params.lambda_i, kf * params.mu_i))?;
    let (g1, g2, g3) = cox.gamma_rates();

    // Phase process shared by every level (Figure 7c): births of inelastic
    // jobs up to the busy-period states and deaths back down.
    let mut local = Matrix::zeros(phases, phases);
    for i in 0..k {
        if i + 1 < k {
            local[(i, i + 1)] = params.lambda_i;
        } else {
            local[(i, b1)] = params.lambda_i; // k-1 --λ_I--> busy period
        }
        if i >= 1 {
            local[(i, i - 1)] = i as f64 * params.mu_i;
        }
    }
    local[(b1, k - 1)] = g1;
    local[(b1, b2)] = g2;
    local[(b2, k - 1)] = g3;

    // Elastic arrivals in every phase.
    let up = Matrix::diag(&vec![params.lambda_e; phases]);

    // Elastic service: the head-of-line elastic job gets the k − i servers
    // left over by inelastic jobs; nothing during a busy period.
    let mut a2 = Matrix::zeros(phases, phases);
    for i in 0..k {
        a2[(i, i)] = (kf - i as f64) * params.mu_e;
    }

    let qbd = Qbd::new(vec![up.clone()], vec![local.clone()], vec![], up, local, a2)?;
    let sol = qbd.solve()?;
    debug_assert!((sol.total_probability() - 1.0).abs() < 1e-8);
    Ok(sol.mean_level())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inelastic_class_is_exact_mmk() {
        let p = SystemParams::new(4, 2.0, 0.5, 1.0, 1.0).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        let want = MMk::new(2.0, 1.0, 4).mean_response_time();
        assert!((a.mean_response_inelastic - want).abs() < 1e-10);
    }

    #[test]
    fn no_inelastic_traffic_reduces_to_elastic_mm1() {
        let p = SystemParams::new(4, 0.0, 2.0, 1.0, 1.0).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        let want = MM1::new(2.0, 4.0).mean_response_time();
        assert!((a.mean_response_elastic - want).abs() < 1e-12);
    }

    #[test]
    fn no_elastic_traffic_reduces_to_mmk_only() {
        let p = SystemParams::new(4, 3.0, 0.0, 1.0, 1.0).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        assert!(a.mean_response_elastic.is_nan());
        let want = MMk::new(3.0, 1.0, 4).mean_response_time();
        assert!((a.mean_response - want).abs() < 1e-10);
    }

    #[test]
    fn k1_with_identical_classes_is_priority_mm1() {
        // k=1, µ_I = µ_E = µ: IF is preemptive-priority M/M/1 with the
        // inelastic class on top; the low class has the classical mean
        // E[T_low] = (1/µ)/((1-ρ_I)(1-ρ_I-ρ_E)).
        let (li, le, mu) = (0.4, 0.3, 1.0);
        let p = SystemParams::new(1, li, le, mu, mu).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        let t_low = (1.0 / mu) / ((1.0 - li / mu) * (1.0 - li / mu - le / mu));
        assert!(
            (a.mean_response_elastic - t_low).abs() / t_low < 0.01,
            "QBD {} vs priority formula {t_low}",
            a.mean_response_elastic
        );
        let t_high = 1.0 / (mu - li);
        assert!((a.mean_response_inelastic - t_high).abs() < 1e-10);
    }

    #[test]
    fn littles_law_holds() {
        let p = SystemParams::with_equal_lambdas(4, 2.0, 1.0, 0.7).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        assert!((a.mean_num_elastic - p.lambda_e * a.mean_response_elastic).abs() < 1e-9);
        assert!((a.mean_num_inelastic - p.lambda_i * a.mean_response_inelastic).abs() < 1e-9);
    }

    #[test]
    fn if_beats_ef_when_mu_i_geq_mu_e() {
        // Theorem 5 regime across loads and a few shape ratios.
        for rho in [0.5, 0.7, 0.9] {
            for (mu_i, mu_e) in [(1.0, 1.0), (2.0, 1.0), (3.25, 1.0)] {
                let p = SystemParams::with_equal_lambdas(4, mu_i, mu_e, rho).unwrap();
                let a_if = analyze_inelastic_first(&p).unwrap();
                let a_ef = super::super::analyze_elastic_first(&p).unwrap();
                assert!(
                    a_if.mean_response <= a_ef.mean_response + 1e-9,
                    "rho={rho} mu_i={mu_i}: IF {} vs EF {}",
                    a_if.mean_response,
                    a_ef.mean_response
                );
            }
        }
    }

    #[test]
    fn ef_beats_if_for_small_mu_i_high_load() {
        // The µ_I < µ_E regime where Figure 4c shows EF superior.
        let p = SystemParams::with_equal_lambdas(4, 0.25, 1.0, 0.9).unwrap();
        let a_if = analyze_inelastic_first(&p).unwrap();
        let a_ef = super::super::analyze_elastic_first(&p).unwrap();
        assert!(
            a_ef.mean_response < a_if.mean_response,
            "EF {} vs IF {}",
            a_ef.mean_response,
            a_if.mean_response
        );
    }

    #[test]
    fn scales_to_many_servers() {
        let p = SystemParams::with_equal_lambdas(16, 0.25, 1.0, 0.9).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        assert!(a.mean_response.is_finite() && a.mean_response > 0.0);
        let p = SystemParams::with_equal_lambdas(64, 2.0, 1.0, 0.8).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        assert!(a.mean_response.is_finite() && a.mean_response > 0.0);
    }
}
