//! Inelastic-First analysis (paper Appendix D, Figure 7).
//!
//! Under IF, inelastic jobs preempt everything, so:
//!
//! * inelastic class = M/M/k(λ_I, µ_I) — exact (Erlang-C);
//! * elastic class = QBD over levels `j` (number of elastic jobs) with
//!   `k + 2` phases: phases `0..k-1` track the number of inelastic jobs
//!   while it is below `k` (the head-of-line elastic job then runs on the
//!   remaining `k − i` servers), and phases `b1`/`b2` are the two Coxian
//!   stages of an *inelastic* busy-at-`k` period, during which elastic jobs
//!   receive no service.
//!
//! The Coxian `(γ1, γ2, γ3)` matches the first three moments of the
//! M/M/1(λ_I, kµ_I) busy period: once all `k` servers hold inelastic jobs,
//! further inelastic arrivals queue and the excursion back down to `k − 1`
//! inelastic jobs is exactly such a busy period (Figure 7b → 7c).
//!
//! Since the policy-layer refactor this is a thin wrapper: the chain is
//! assembled by the policy-generic generator from [`InelasticFirst`]'s
//! allocation map, bit-identically to the old hand-built construction
//! (kept in [`super::reference`] for the differential tests).

use super::{AnalysisCache, AnalysisError, PolicyAnalysis};
use crate::params::SystemParams;
use eirs_sim::policy::InelasticFirst;

/// [`analyze_inelastic_first`] warm-started from (and refreshing) the IF
/// slot of `cache` — for chains of nearby parameter points.
pub fn analyze_inelastic_first_warm(
    params: &SystemParams,
    cache: &mut AnalysisCache,
) -> Result<PolicyAnalysis, AnalysisError> {
    super::generator::analyze_inelastic_priority_cached(&InelasticFirst, params, &mut cache.if_r)
}

/// Mean response time (and class means) under **Inelastic-First**.
pub fn analyze_inelastic_first(params: &SystemParams) -> Result<PolicyAnalysis, AnalysisError> {
    super::generator::analyze_inelastic_priority(&InelasticFirst, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_queueing::{MMk, MM1};

    #[test]
    fn inelastic_class_is_exact_mmk() {
        let p = SystemParams::new(4, 2.0, 0.5, 1.0, 1.0).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        let want = MMk::new(2.0, 1.0, 4).mean_response_time();
        assert!((a.mean_response_inelastic - want).abs() < 1e-10);
    }

    #[test]
    fn no_inelastic_traffic_reduces_to_elastic_mm1() {
        let p = SystemParams::new(4, 0.0, 2.0, 1.0, 1.0).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        let want = MM1::new(2.0, 4.0).mean_response_time();
        assert!((a.mean_response_elastic - want).abs() < 1e-12);
    }

    #[test]
    fn no_elastic_traffic_reduces_to_mmk_only() {
        let p = SystemParams::new(4, 3.0, 0.0, 1.0, 1.0).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        assert!(a.mean_response_elastic.is_nan());
        let want = MMk::new(3.0, 1.0, 4).mean_response_time();
        assert!((a.mean_response - want).abs() < 1e-10);
    }

    #[test]
    fn k1_with_identical_classes_is_priority_mm1() {
        // k=1, µ_I = µ_E = µ: IF is preemptive-priority M/M/1 with the
        // inelastic class on top; the low class has the classical mean
        // E[T_low] = (1/µ)/((1-ρ_I)(1-ρ_I-ρ_E)).
        let (li, le, mu) = (0.4, 0.3, 1.0);
        let p = SystemParams::new(1, li, le, mu, mu).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        let t_low = (1.0 / mu) / ((1.0 - li / mu) * (1.0 - li / mu - le / mu));
        assert!(
            (a.mean_response_elastic - t_low).abs() / t_low < 0.01,
            "QBD {} vs priority formula {t_low}",
            a.mean_response_elastic
        );
        let t_high = 1.0 / (mu - li);
        assert!((a.mean_response_inelastic - t_high).abs() < 1e-10);
    }

    #[test]
    fn littles_law_holds() {
        let p = SystemParams::with_equal_lambdas(4, 2.0, 1.0, 0.7).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        assert!((a.mean_num_elastic - p.lambda_e * a.mean_response_elastic).abs() < 1e-9);
        assert!((a.mean_num_inelastic - p.lambda_i * a.mean_response_inelastic).abs() < 1e-9);
    }

    #[test]
    fn if_beats_ef_when_mu_i_geq_mu_e() {
        // Theorem 5 regime across loads and a few shape ratios.
        for rho in [0.5, 0.7, 0.9] {
            for (mu_i, mu_e) in [(1.0, 1.0), (2.0, 1.0), (3.25, 1.0)] {
                let p = SystemParams::with_equal_lambdas(4, mu_i, mu_e, rho).unwrap();
                let a_if = analyze_inelastic_first(&p).unwrap();
                let a_ef = super::super::analyze_elastic_first(&p).unwrap();
                assert!(
                    a_if.mean_response <= a_ef.mean_response + 1e-9,
                    "rho={rho} mu_i={mu_i}: IF {} vs EF {}",
                    a_if.mean_response,
                    a_ef.mean_response
                );
            }
        }
    }

    #[test]
    fn ef_beats_if_for_small_mu_i_high_load() {
        // The µ_I < µ_E regime where Figure 4c shows EF superior.
        let p = SystemParams::with_equal_lambdas(4, 0.25, 1.0, 0.9).unwrap();
        let a_if = analyze_inelastic_first(&p).unwrap();
        let a_ef = super::super::analyze_elastic_first(&p).unwrap();
        assert!(
            a_ef.mean_response < a_if.mean_response,
            "EF {} vs IF {}",
            a_ef.mean_response,
            a_if.mean_response
        );
    }

    #[test]
    fn scales_to_many_servers() {
        let p = SystemParams::with_equal_lambdas(16, 0.25, 1.0, 0.9).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        assert!(a.mean_response.is_finite() && a.mean_response > 0.0);
        let p = SystemParams::with_equal_lambdas(64, 2.0, 1.0, 0.8).unwrap();
        let a = analyze_inelastic_first(&p).unwrap();
        assert!(a.mean_response.is_finite() && a.mean_response > 0.0);
    }

    #[test]
    fn wrapper_is_bit_identical_to_the_reference_implementation() {
        for (k, mu_i, mu_e, rho) in [
            (4, 2.0, 1.0, 0.5),
            (4, 0.25, 1.0, 0.9),
            (1, 1.0, 1.0, 0.7),
            (16, 2.0, 1.0, 0.8),
        ] {
            let p = SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho).unwrap();
            let new = analyze_inelastic_first(&p).unwrap();
            let old = super::super::reference::analyze_inelastic_first_reference(&p).unwrap();
            assert_eq!(new, old, "k={k} µI={mu_i} µE={mu_e} ρ={rho}");
        }
    }
}
