//! The policy-generic QBD generator: one builder that turns any
//! [`AllocationPolicy`]'s allocation map into a solvable chain.
//!
//! Three chain shapes cover the policies this workspace ships:
//!
//! * **Elastic-priority** (the paper's Figure 3c): when the policy gives
//!   elastic jobs strict preemptive priority — `(π_I, π_E) = (0, k)`
//!   whenever `j > 0`, `(min(i,k), 0)` at `j = 0` — the elastic class is an
//!   exact M/M/1 and the inelastic class a 3-phase QBD whose elastic-busy
//!   excursions are the Coxian busy-period fit. This reproduces the old
//!   hardcoded EF analysis **bit for bit**, with every service rate now
//!   sampled from `policy.allocate` instead of written out by hand.
//! * **Inelastic-priority** (Figure 7c): the mirror image — inelastic jobs
//!   always get `min(i, k)` servers and elastic jobs the remainder. The
//!   inelastic class is an exact M/M/k, the elastic class a `k+2`-phase
//!   QBD. Bit-identical to the old hardcoded IF analysis.
//! * **General**: any other policy is analyzed on a QBD whose level is the
//!   inelastic count `i` and whose phases are the elastic count `j`
//!   truncated at [`AnalyzeOptions::phase_cap`] (elastic arrivals beyond
//!   the cap are rejected — the same truncation the MDP grid uses). The
//!   repeating blocks start at the first level where the allocation map
//!   stops depending on `i` (probed with
//!   [`AnalyzeOptions::homogeneity_window`]); maps that never homogenize
//!   (e.g. water-filling) are *saturated* at
//!   [`AnalyzeOptions::max_level_cut`]: deeper levels reuse the cut
//!   level's allocation, a controlled approximation whose error decays
//!   with the geometric tail of the level distribution.
//!
//! Structure is **detected by probing** the allocation map on a grid
//! (`i ≤ max(2k, 8) + 2`, `j ≤ phase_cap`), not declared by the policy, so
//! a policy that *is* EF in disguise (e.g. `Reserve(k)`,
//! `ElasticThreshold(1)`) automatically gets the exact busy-period chain.
//! A policy that deviates only outside the probed window is analyzed with
//! the wrong (exact-priority) chain; set [`AnalyzeOptions::force_general`]
//! to opt out of detection in that case.

use super::{AnalysisError, AnalyzeOptions, PolicyAnalysis};
use crate::params::SystemParams;
use eirs_markov::qbd::{Qbd, QbdError, QbdSolution};
use eirs_numerics::Matrix;
use eirs_queueing::coxian::fit_busy_period;
use eirs_queueing::{MMk, MM1};
use eirs_sim::policy::AllocationPolicy;

/// Solves `qbd`, warm-started from the R matrix cached in `slot` when one
/// is present, and refreshes the slot with the solved R for the next cell
/// in the chain. With an empty slot this is exactly `qbd.solve()`, so
/// cache-less callers and the first cell of every warm chain share one
/// code path. A cached R of the wrong dimension (the chain shape changed
/// mid-chain) falls back to the cold solve inside
/// [`Qbd::solve_warm`] — callers never need to invalidate.
fn solve_maybe_warm(qbd: &Qbd, slot: &mut Option<Matrix>) -> Result<QbdSolution, QbdError> {
    // Warm-chain hit-rate telemetry: how many solves rode a cached
    // neighbor R vs started a fresh chain. (Whether the *warm solver*
    // then accepted the seed is counted one layer down, in
    // `eirs_markov::qbd::telemetry`.)
    static CHAINED: eirs_obs::LazyCounter = eirs_obs::LazyCounter::new("core.solve.warm_chained");
    static STARTS: eirs_obs::LazyCounter = eirs_obs::LazyCounter::new("core.solve.chain_starts");
    let sol = match slot.take() {
        Some(prev) => {
            CHAINED.inc();
            qbd.solve_warm(&prev)
        }
        None => {
            STARTS.inc();
            qbd.solve()
        }
    }?;
    *slot = Some(sol.r().clone());
    Ok(sol)
}

/// The chain shape [`super::analyze_policy`] selected for a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyStructure {
    /// Elastic jobs strictly preempt (EF-shaped exact chain).
    ElasticPriority,
    /// Inelastic jobs strictly preempt (IF-shaped exact chain).
    InelasticPriority,
    /// Anything else: truncated-phase QBD over the allocation map.
    General,
}

/// Probes `policy` on a state grid and classifies its chain shape.
pub fn detect_structure(
    policy: &dyn AllocationPolicy,
    k: u32,
    opts: &AnalyzeOptions,
) -> PolicyStructure {
    let kf = k as f64;
    let max_i = (2 * k as usize).max(8) + 2;
    let max_j = opts.phase_cap.max(8);
    let mut elastic_priority = true;
    let mut inelastic_priority = true;
    for i in 0..=max_i {
        let cap = (i as f64).min(kf);
        for j in 0..=max_j {
            let a = policy.allocate(i, j, k);
            if j == 0 {
                // Both exact shapes serve all of min(i, k) when no elastic
                // job is present (and may give the idle class nothing).
                if a.inelastic != cap || a.elastic != 0.0 {
                    return PolicyStructure::General;
                }
                continue;
            }
            if a.inelastic != 0.0 || a.elastic != kf {
                elastic_priority = false;
            }
            if a.inelastic != cap || a.elastic != kf - cap {
                inelastic_priority = false;
            }
            if !elastic_priority && !inelastic_priority {
                return PolicyStructure::General;
            }
        }
    }
    if elastic_priority {
        PolicyStructure::ElasticPriority
    } else {
        PolicyStructure::InelasticPriority
    }
}

/// Exact analysis of an elastic-priority policy (EF-shaped chain).
///
/// The elastic class is an M/M/1 at rate `kµ_E`; the inelastic class is a
/// QBD over levels `i` with three phases (`0` = no elastic jobs, `b1`/`b2`
/// = Coxian stages of an elastic busy period). Inelastic service rates are
/// sampled from `policy.allocate(i, 0, k)`.
pub(crate) fn analyze_elastic_priority(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
) -> Result<PolicyAnalysis, AnalysisError> {
    analyze_elastic_priority_cached(policy, params, &mut None)
}

/// [`analyze_elastic_priority`] with a warm-start cache slot: the QBD
/// solve seeds from the previous cell's R (see [`solve_maybe_warm`]).
pub(crate) fn analyze_elastic_priority_cached(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
    r_cache: &mut Option<Matrix>,
) -> Result<PolicyAnalysis, AnalysisError> {
    let kf = params.k as f64;

    // Elastic class: exact M/M/1 at service rate kµ_E.
    let elastic_queue = MM1::new(params.lambda_e, kf * params.mu_e);
    let n_e = if params.lambda_e > 0.0 {
        elastic_queue.mean_number_in_system()
    } else {
        0.0
    };

    // Degenerate cases avoid the QBD entirely.
    if params.lambda_i == 0.0 {
        return Ok(PolicyAnalysis::from_class_means(params, 0.0, n_e));
    }
    if params.lambda_e == 0.0 {
        // No elastic jobs ever: inelastic class is an exact M/M/k.
        let mmk = MMk::new(params.lambda_i, params.mu_i, params.k);
        return Ok(PolicyAnalysis::from_class_means(
            params,
            mmk.mean_number_in_system(),
            0.0,
        ));
    }

    let k = params.k as usize;
    let cox = fit_busy_period(&MM1::new(params.lambda_e, kf * params.mu_e))?;
    let (g1, g2, g3) = cox.gamma_rates();
    let lambda_e = params.lambda_e;
    let mu_i = params.mu_i;

    // Phase layout (Figure 3c): 0 = no elastic jobs, 1/2 = Coxian stages.
    let qbd = Qbd::from_rate_fns(
        3,
        k,
        |_, a, b| if a == b { params.lambda_i } else { 0.0 },
        |_, a, b| match (a, b) {
            (0, 1) => lambda_e,
            (1, 0) => g1,
            (1, 2) => g2,
            (2, 0) => g3,
            _ => 0.0,
        },
        |level, a, b| {
            if a == 0 && b == 0 {
                policy.allocate(level, 0, params.k).inelastic * mu_i
            } else {
                0.0
            }
        },
    )?;
    let sol = solve_maybe_warm(&qbd, r_cache)?;
    debug_assert!((sol.total_probability() - 1.0).abs() < 1e-8);
    Ok(PolicyAnalysis::from_class_means(
        params,
        sol.mean_level(),
        n_e,
    ))
}

/// Exact analysis of an inelastic-priority policy (IF-shaped chain).
///
/// The inelastic class is an exact M/M/k; the elastic class is a QBD over
/// levels `j` with `k + 2` phases (`0..k-1` = inelastic count below `k`,
/// then the two Coxian stages of an inelastic busy-at-`k` period). Service
/// rates are sampled from `policy.allocate(i, 1, k)`.
pub(crate) fn analyze_inelastic_priority(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
) -> Result<PolicyAnalysis, AnalysisError> {
    analyze_inelastic_priority_cached(policy, params, &mut None)
}

/// [`analyze_inelastic_priority`] with a warm-start cache slot.
pub(crate) fn analyze_inelastic_priority_cached(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
    r_cache: &mut Option<Matrix>,
) -> Result<PolicyAnalysis, AnalysisError> {
    let kf = params.k as f64;

    // Inelastic class: exact M/M/k.
    let n_i = if params.lambda_i > 0.0 {
        MMk::new(params.lambda_i, params.mu_i, params.k).mean_number_in_system()
    } else {
        0.0
    };

    if params.lambda_e == 0.0 {
        return Ok(PolicyAnalysis::from_class_means(params, n_i, 0.0));
    }
    if params.lambda_i == 0.0 {
        // Elastic jobs alone: M/M/1 at rate kµ_E.
        let n_e = MM1::new(params.lambda_e, kf * params.mu_e).mean_number_in_system();
        return Ok(PolicyAnalysis::from_class_means(params, 0.0, n_e));
    }

    let k = params.k as usize;
    let phases = k + 2; // 0..k-1 inelastic counts, then b1, b2.
    let b1 = k;
    let b2 = k + 1;
    let cox = fit_busy_period(&MM1::new(params.lambda_i, kf * params.mu_i))?;
    let (g1, g2, g3) = cox.gamma_rates();
    let lambda_i = params.lambda_i;
    let (mu_i, mu_e) = (params.mu_i, params.mu_e);

    let qbd = Qbd::from_rate_fns(
        phases,
        1,
        |_, a, b| if a == b { params.lambda_e } else { 0.0 },
        // Phase process (Figure 7c): inelastic births up into the busy
        // period, deaths back down at the policy's inelastic service rate.
        |_, a, b| {
            if a < k && b == if a + 1 < k { a + 1 } else { b1 } {
                lambda_i
            } else if a < k && a >= 1 && b == a - 1 {
                policy.allocate(a, 1, params.k).inelastic * mu_i
            } else if (a, b) == (b1, k - 1) {
                g1
            } else if (a, b) == (b1, b2) {
                g2
            } else if (a, b) == (b2, k - 1) {
                g3
            } else {
                0.0
            }
        },
        // Elastic service: whatever the policy leaves for the head-of-line
        // elastic job; nothing during an inelastic busy period.
        |_, a, b| {
            if a < k && a == b {
                policy.allocate(a, 1, params.k).elastic * mu_e
            } else {
                0.0
            }
        },
    )?;
    let sol = solve_maybe_warm(&qbd, r_cache)?;
    debug_assert!((sol.total_probability() - 1.0).abs() < 1e-8);
    Ok(PolicyAnalysis::from_class_means(
        params,
        n_i,
        sol.mean_level(),
    ))
}

/// Smallest level `m ≥ max(k, 1)` from which the allocation map is
/// `i`-independent over the probed window, or `opts.max_level_cut` if it
/// never homogenizes (the saturation fallback).
fn find_level_cut(
    policy: &dyn AllocationPolicy,
    k: u32,
    phase_cap: usize,
    opts: &AnalyzeOptions,
) -> usize {
    let start = (k as usize).max(1);
    let cut_cap = opts.max_level_cut.max(start);
    let window = opts.homogeneity_window.max(1);
    'levels: for m in start..=cut_cap {
        for j in 0..=phase_cap {
            let here = policy.allocate(m, j, k);
            for d in 1..=window {
                if policy.allocate(m + d, j, k) != here {
                    continue 'levels;
                }
            }
        }
        return m;
    }
    cut_cap
}

/// Truncated-phase analysis of an arbitrary policy, with a warm-start
/// cache slot (pass `&mut None` for a cold solve).
///
/// Level = inelastic count `i`, phase = elastic count `j ≤ phase_cap`
/// (elastic arrivals at the cap are rejected). Levels at or beyond the
/// homogenization cut reuse the cut level's allocation.
pub(crate) fn analyze_general_cached(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
    opts: &AnalyzeOptions,
    r_cache: &mut Option<Matrix>,
) -> Result<PolicyAnalysis, AnalysisError> {
    let k = params.k;
    let jmax = if params.lambda_e > 0.0 {
        opts.phase_cap.max(1)
    } else {
        0
    };
    let m = if params.lambda_i > 0.0 {
        find_level_cut(policy, k, jmax, opts)
    } else {
        1
    };
    let (lambda_i, lambda_e) = (params.lambda_i, params.lambda_e);
    let (mu_i, mu_e) = (params.mu_i, params.mu_e);

    let qbd = Qbd::from_rate_fns(
        jmax + 1,
        m,
        |_, a, b| if a == b { lambda_i } else { 0.0 },
        |level, a, b| {
            if b == a + 1 {
                // Elastic arrival; rejected at the phase cap (b > jmax
                // never reaches here because phases are 0..=jmax).
                lambda_e
            } else if a >= 1 && b == a - 1 {
                policy.allocate(level.min(m), a, k).elastic * mu_e
            } else {
                0.0
            }
        },
        |level, a, b| {
            if a == b {
                policy.allocate(level.min(m), a, k).inelastic * mu_i
            } else {
                0.0
            }
        },
    )?;
    let sol = solve_maybe_warm(&qbd, r_cache)?;
    debug_assert!((sol.total_probability() - 1.0).abs() < 1e-8);
    let n_i = sol.mean_level();
    let n_e: f64 = sol
        .marginal_phases()
        .iter()
        .enumerate()
        .map(|(j, p)| j as f64 * p)
        .sum();
    Ok(PolicyAnalysis::from_class_means(params, n_i, n_e))
}

/// Truncated-phase analysis of an arbitrary policy under **MAP arrivals**
/// (exponential service): the workload-scenario generalization of
/// [`analyze_general`].
///
/// The arriving stream is a Markovian arrival process `map` whose
/// stationary rate must equal `λ_I + λ_E`; each arrival is inelastic with
/// probability `λ_I / (λ_I + λ_E)` (independent marking). The QBD level is
/// the inelastic count `i`; the phase is the pair (elastic count
/// `j ≤ phase_cap`, MAP phase `m`), indexed `m·(phase_cap+1) + j`:
///
/// * **up** — a marked-inelastic arrival transition `f·D1[m][m']`;
/// * **local** — a marked-elastic arrival `(1−f)·D1[m][m']` (`j → j+1`;
///   at the cap the job is rejected but the phase still moves), a silent
///   phase change `D0[m][m']`, or an elastic service completion at the
///   policy's allocation rate;
/// * **down** — an inelastic completion at the policy's allocation rate.
///
/// With a one-phase MAP this chain is *identical* to the one
/// [`analyze_general`] builds (the scenario property tests assert the
/// results agree bit for bit).
pub(crate) fn analyze_general_map(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
    map: &eirs_queueing::MapProcess,
    opts: &AnalyzeOptions,
) -> Result<PolicyAnalysis, AnalysisError> {
    analyze_general_map_cached(policy, params, map, opts, &mut None)
}

/// [`analyze_general_map`] with a warm-start cache slot.
pub(crate) fn analyze_general_map_cached(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
    map: &eirs_queueing::MapProcess,
    opts: &AnalyzeOptions,
    r_cache: &mut Option<Matrix>,
) -> Result<PolicyAnalysis, AnalysisError> {
    let total = params.total_lambda();
    let map_rate = map.arrival_rate();
    if (map_rate - total).abs() > 1e-6 * total.max(1.0) {
        return Err(AnalysisError::BadInput(format!(
            "MAP stationary rate {map_rate} != lambda_I + lambda_E = {total}; \
             normalize with MapProcess::scaled_to_rate first"
        )));
    }
    let f = params.lambda_i / total;
    let k = params.k;
    let jmax = if params.lambda_e > 0.0 {
        opts.phase_cap.max(1)
    } else {
        0
    };
    let cut = if params.lambda_i > 0.0 {
        find_level_cut(policy, k, jmax, opts)
    } else {
        1
    };
    let p_m = map.phases();
    let width = jmax + 1;
    let (d0, d1) = (map.d0(), map.d1());
    let (mu_i, mu_e) = (params.mu_i, params.mu_e);
    let split = |idx: usize| (idx / width, idx % width);

    let qbd = Qbd::from_rate_fns(
        p_m * width,
        cut,
        |_, a, b| {
            let ((m, j), (m2, j2)) = (split(a), split(b));
            if j == j2 {
                f * d1[(m, m2)]
            } else {
                0.0
            }
        },
        |level, a, b| {
            if a == b {
                return 0.0;
            }
            let ((m, j), (m2, j2)) = (split(a), split(b));
            let mut rate = 0.0;
            if j2 == j + 1 {
                // Accepted elastic arrival (any accompanying phase move).
                rate += (1.0 - f) * d1[(m, m2)];
            }
            if j == j2 && m != m2 {
                // Silent phase change, plus elastic arrivals rejected
                // at the cap (the phase still moves).
                rate += d0[(m, m2)];
                if j == jmax {
                    rate += (1.0 - f) * d1[(m, m2)];
                }
            }
            if m == m2 && j >= 1 && j2 + 1 == j {
                rate += policy.allocate(level.min(cut), j, k).elastic * mu_e;
            }
            rate
        },
        |level, a, b| {
            let ((m, j), (m2, j2)) = (split(a), split(b));
            if m == m2 && j == j2 {
                policy.allocate(level.min(cut), j, k).inelastic * mu_i
            } else {
                0.0
            }
        },
    )?;
    let sol = solve_maybe_warm(&qbd, r_cache)?;
    debug_assert!((sol.total_probability() - 1.0).abs() < 1e-8);
    let n_i = sol.mean_level();
    let n_e: f64 = sol
        .marginal_phases()
        .iter()
        .enumerate()
        .map(|(idx, p)| (idx % width) as f64 * p)
        .sum();
    Ok(PolicyAnalysis::from_class_means(params, n_i, n_e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_sim::policy::{
        ElasticFirst, ElasticThresholdPolicy, FairShare, InelasticFirst, ReservePolicy,
        SwitchingCurvePolicy, WeightedWaterFilling,
    };

    fn opts() -> AnalyzeOptions {
        AnalyzeOptions::default()
    }

    #[test]
    fn detection_classifies_the_builtin_families() {
        let o = opts();
        assert_eq!(
            detect_structure(&ElasticFirst, 4, &o),
            PolicyStructure::ElasticPriority
        );
        assert_eq!(
            detect_structure(&InelasticFirst, 4, &o),
            PolicyStructure::InelasticPriority
        );
        // Priority policies in disguise route to the exact chains.
        assert_eq!(
            detect_structure(&ReservePolicy { reserve: 4 }, 4, &o),
            PolicyStructure::ElasticPriority
        );
        assert_eq!(
            detect_structure(&ReservePolicy { reserve: 0 }, 4, &o),
            PolicyStructure::InelasticPriority
        );
        assert_eq!(
            detect_structure(&ElasticThresholdPolicy { threshold: 1 }, 4, &o),
            PolicyStructure::ElasticPriority
        );
        // Genuinely mixed policies go general.
        assert_eq!(
            detect_structure(&ElasticThresholdPolicy { threshold: 3 }, 4, &o),
            PolicyStructure::General
        );
        assert_eq!(
            detect_structure(&FairShare, 4, &o),
            PolicyStructure::General
        );
        assert_eq!(
            detect_structure(
                &SwitchingCurvePolicy {
                    intercept: 2,
                    slope: 1.0
                },
                4,
                &o
            ),
            PolicyStructure::General
        );
    }

    #[test]
    fn level_cut_finds_threshold_homogenization_at_k() {
        let p = ElasticThresholdPolicy { threshold: 5 };
        assert_eq!(find_level_cut(&p, 4, 16, &opts()), 4);
    }

    #[test]
    fn level_cut_saturates_for_water_filling() {
        let p = WeightedWaterFilling {
            elastic_weight: 1.0,
        };
        let o = opts();
        assert_eq!(find_level_cut(&p, 4, 16, &o), o.max_level_cut);
    }

    #[test]
    fn general_path_reproduces_mmk_without_elastic_traffic() {
        let params = SystemParams::new(4, 3.0, 0.0, 1.0, 1.0).unwrap();
        let a = analyze_general_cached(&InelasticFirst, &params, &opts(), &mut None).unwrap();
        let want = MMk::new(3.0, 1.0, 4).mean_number_in_system();
        assert!(
            (a.mean_num_inelastic - want).abs() < 1e-9,
            "{} vs {want}",
            a.mean_num_inelastic
        );
    }

    #[test]
    fn map_chain_with_one_phase_is_bit_identical_to_the_general_chain() {
        use eirs_queueing::MapProcess;
        let params = SystemParams::with_equal_lambdas(3, 0.5, 1.0, 0.6).unwrap();
        let map = MapProcess::poisson(params.total_lambda());
        let o = AnalyzeOptions {
            phase_cap: 24,
            ..opts()
        };
        for policy in [&FairShare as &dyn AllocationPolicy, &InelasticFirst] {
            let general = analyze_general_cached(policy, &params, &o, &mut None).unwrap();
            let via_map = analyze_general_map(policy, &params, &map, &o).unwrap();
            assert_eq!(
                general.mean_response.to_bits(),
                via_map.mean_response.to_bits(),
                "{}: {} vs {}",
                policy.name(),
                general.mean_response,
                via_map.mean_response
            );
            assert_eq!(
                general.mean_num_elastic.to_bits(),
                via_map.mean_num_elastic.to_bits()
            );
        }
    }

    #[test]
    fn map_chain_burstiness_increases_mean_response() {
        use eirs_queueing::MapProcess;
        let params = SystemParams::with_equal_lambdas(3, 0.5, 1.0, 0.6).unwrap();
        let o = AnalyzeOptions {
            phase_cap: 32,
            ..opts()
        };
        let poisson = analyze_general_cached(&FairShare, &params, &o, &mut None).unwrap();
        let bursty = MapProcess::mmpp2(1.0, 1.0, 9.0, 1.0).scaled_to_rate(params.total_lambda());
        let modulated = analyze_general_map(&FairShare, &params, &bursty, &o).unwrap();
        assert!(
            modulated.mean_response > poisson.mean_response * 1.05,
            "MMPP {} vs Poisson {}",
            modulated.mean_response,
            poisson.mean_response
        );
    }

    #[test]
    fn general_path_agrees_with_exact_if_chain() {
        // IF through the truncated general chain vs the exact busy-period
        // chain: truncation error at this load is far below 0.1%.
        let params = SystemParams::with_equal_lambdas(4, 2.0, 1.0, 0.6).unwrap();
        let exact = analyze_inelastic_priority(&InelasticFirst, &params).unwrap();
        let general = analyze_general_cached(&InelasticFirst, &params, &opts(), &mut None).unwrap();
        let rel = (general.mean_response - exact.mean_response).abs() / exact.mean_response;
        assert!(
            rel < 1e-3,
            "general {} vs exact {}",
            general.mean_response,
            exact.mean_response
        );
    }
}
