//! Policy-generic response-time analysis (paper Section 5 and Appendix D,
//! generalized to arbitrary allocation policies).
//!
//! The entry point is [`analyze_policy`]: hand it **any**
//! [`AllocationPolicy`] — EF, IF, a
//! threshold or switching-curve policy, a fractional water-filling policy,
//! or the MDP-optimal `TabularPolicy` — and it returns the stationary mean
//! response times. One policy-generic pipeline replaces what used to be
//! two hardcoded EF/IF constructions:
//!
//! 1. The policy's allocation map is **probed** and classified
//!    ([`PolicyStructure`]). Strict-priority policies get the paper's
//!    exact chains; everything else gets a truncated-phase QBD built
//!    directly from the allocation map (see [`generator`] for the three
//!    chain shapes and their accuracy contracts).
//! 2. The chain is assembled through [`eirs_markov::qbd::Qbd::from_rate_fns`],
//!    which turns per-`(level, phase)` rate closures — here, allocation
//!    shares times service rates — into QBD blocks.
//! 3. The QBD is solved with matrix-analytic methods and mean response
//!    times follow from the mean level / phase marginals via Little's law.
//!
//! For the two priority policies the pipeline reproduces the paper
//! exactly: the high-priority class is a classical queue in isolation
//! (**EF**: elastic M/M/1 at rate `kµ_E`, Observation 1; **IF**: inelastic
//! M/M/k, Appendix D), and the low-priority class's 2D-infinite chain is
//! collapsed to a 1D-infinite QBD by the **busy-period transformation**:
//! the region where the low-priority class receives no service is replaced
//! by phase states whose sojourn is a two-phase Coxian matched to the
//! first three moments of the relevant M/M/1 busy period (Observations
//! 2–3; the Coxian fit lives in [`eirs_queueing::coxian`]). The
//! transformation is an approximation only in the busy-period shape; the
//! paper reports <1% error against simulation, which the workspace
//! integration tests reproduce. [`analyze_elastic_first`] and
//! [`analyze_inelastic_first`] are thin wrappers over [`analyze_policy`]
//! and are **bit-identical** to the pre-refactor hardcoded
//! implementations (asserted by the workspace differential tests against
//! `analysis::reference`).
//!
//! For general policies the truncated-phase chain trades the busy-period
//! trick for an explicit elastic-phase cap (the same kind of truncation
//! the MDP grid uses); [`AnalyzeOptions`] controls the cap and the
//! level-homogenization probe, and the `policy_families` bench records
//! cross-substrate agreement (analysis vs DES vs MDP grid) for every
//! shipped family.

mod ef;
pub mod generator;
mod if_policy;
pub mod reference;

pub use ef::{analyze_elastic_first, analyze_elastic_first_warm};
pub use generator::{detect_structure, PolicyStructure};
pub use if_policy::{analyze_inelastic_first, analyze_inelastic_first_warm};

use crate::params::SystemParams;
use eirs_markov::qbd::QbdError;
use eirs_queueing::coxian::CoxianFitError;
use eirs_sim::policy::AllocationPolicy;

/// Tuning knobs for [`analyze_policy`]'s general (non-priority) path.
///
/// The defaults are sized for loads up to ~0.8 on small clusters; raise
/// [`AnalyzeOptions::phase_cap`] (and, for slowly-varying fractional
/// policies, [`AnalyzeOptions::max_level_cut`]) for heavier traffic, at
/// cubically growing solve cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// Elastic-phase truncation `j ≤ phase_cap` for the general chain
    /// (elastic arrivals at the cap are rejected).
    pub phase_cap: usize,
    /// Saturation level for allocation maps that never become
    /// `i`-homogeneous (e.g. water-filling): levels beyond the cut reuse
    /// the cut level's allocation.
    pub max_level_cut: usize,
    /// How many consecutive levels must agree before the map counts as
    /// homogeneous from a level.
    pub homogeneity_window: usize,
    /// Skip structure detection and always use the general truncated
    /// chain — for policies that only look like strict priority inside
    /// the probed window.
    pub force_general: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        Self {
            phase_cap: 64,
            max_level_cut: 32,
            homogeneity_window: 8,
            force_general: false,
        }
    }
}

/// Analytic mean response times of an arbitrary allocation policy, with
/// default [`AnalyzeOptions`].
pub fn analyze_policy(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
) -> Result<PolicyAnalysis, AnalysisError> {
    analyze_policy_with(policy, params, &AnalyzeOptions::default())
}

/// [`analyze_policy`] with explicit options.
pub fn analyze_policy_with(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
    opts: &AnalyzeOptions,
) -> Result<PolicyAnalysis, AnalysisError> {
    analyze_policy_warm(policy, params, opts, &mut AnalysisCache::default())
}

/// Warm-start state for a *chain* of related analyses — e.g. one row of a
/// sweep grid where consecutive cells differ by one parameter step.
///
/// Holds the last solved R matrix per chain shape; the next analysis of
/// the same shape seeds its R iteration from it (`Qbd::solve_warm`), which
/// converges in a handful of refinement steps when the cells are close.
/// Correctness never depends on the cache: a stale, wrong-dimension, or
/// far-away seed is either refined to the same solution (validated by the
/// residual and sp(R) guards) or discarded for a cold solve.
///
/// Chains are a *scheduling unit*: to keep parallel sweeps bit-identical
/// to serial, give each worker item (e.g. each grid row) its own fresh
/// cache so the cell→cell seeding order is a pure function of the item,
/// never of which worker solved what before.
#[derive(Debug, Clone, Default)]
pub struct AnalysisCache {
    ef_r: Option<eirs_numerics::Matrix>,
    if_r: Option<eirs_numerics::Matrix>,
    general_r: Option<eirs_numerics::Matrix>,
    map_r: Option<eirs_numerics::Matrix>,
}

/// [`analyze_policy_with`] seeding the QBD solve from `cache` and
/// refreshing it for the next call — the per-cell entry point of warm
/// sweep chains.
pub fn analyze_policy_warm(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
    opts: &AnalyzeOptions,
    cache: &mut AnalysisCache,
) -> Result<PolicyAnalysis, AnalysisError> {
    let structure = if opts.force_general {
        PolicyStructure::General
    } else {
        detect_structure(policy, params.k, opts)
    };
    match structure {
        PolicyStructure::ElasticPriority => {
            generator::analyze_elastic_priority_cached(policy, params, &mut cache.ef_r)
        }
        PolicyStructure::InelasticPriority => {
            generator::analyze_inelastic_priority_cached(policy, params, &mut cache.if_r)
        }
        PolicyStructure::General => {
            generator::analyze_general_cached(policy, params, opts, &mut cache.general_r)
        }
    }
}

/// Analytic evaluation of an arbitrary policy under **MAP arrivals** with
/// exponential service — the workload-scenario counterpart of
/// [`analyze_policy`].
///
/// `map` must be normalized to the stationary rate `λ_I + λ_E` of
/// `params` (see `eirs_queueing::MapProcess::scaled_to_rate`); arrivals
/// are marked inelastic with probability `λ_I / (λ_I + λ_E)`. The chain
/// is the truncated-phase QBD of the general path with the phase extended
/// by the MAP phase; a one-phase MAP reproduces [`analyze_policy_with`]'s
/// general chain bit for bit.
pub fn analyze_policy_map(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
    map: &eirs_queueing::MapProcess,
    opts: &AnalyzeOptions,
) -> Result<PolicyAnalysis, AnalysisError> {
    generator::analyze_general_map(policy, params, map, opts)
}

/// [`analyze_policy_map`] seeding from / refreshing a warm-start cache,
/// mirroring [`analyze_policy_warm`] for the MAP-arrival chain.
pub fn analyze_policy_map_warm(
    policy: &dyn AllocationPolicy,
    params: &SystemParams,
    map: &eirs_queueing::MapProcess,
    opts: &AnalyzeOptions,
    cache: &mut AnalysisCache,
) -> Result<PolicyAnalysis, AnalysisError> {
    generator::analyze_general_map_cached(policy, params, map, opts, &mut cache.map_r)
}

/// Mean-value results of an analytic policy evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyAnalysis {
    /// Overall mean response time
    /// `E[T] = (λ_I E[T_I] + λ_E E[T_E]) / (λ_I + λ_E)`.
    pub mean_response: f64,
    /// Mean inelastic response time `E[T_I]` (`NaN` when `λ_I = 0`).
    pub mean_response_inelastic: f64,
    /// Mean elastic response time `E[T_E]` (`NaN` when `λ_E = 0`).
    pub mean_response_elastic: f64,
    /// Mean number of inelastic jobs in system `E[N_I]`.
    pub mean_num_inelastic: f64,
    /// Mean number of elastic jobs in system `E[N_E]`.
    pub mean_num_elastic: f64,
}

impl PolicyAnalysis {
    /// Mean total number in system `E[N] = E[N_I] + E[N_E]`.
    pub fn mean_num_in_system(&self) -> f64 {
        self.mean_num_inelastic + self.mean_num_elastic
    }

    pub(crate) fn from_class_means(params: &SystemParams, n_i: f64, n_e: f64) -> Self {
        let t_i = if params.lambda_i > 0.0 {
            n_i / params.lambda_i
        } else {
            f64::NAN
        };
        let t_e = if params.lambda_e > 0.0 {
            n_e / params.lambda_e
        } else {
            f64::NAN
        };
        let mean_response = (n_i + n_e) / params.total_lambda();
        PolicyAnalysis {
            mean_response,
            mean_response_inelastic: t_i,
            mean_response_elastic: t_e,
            mean_num_inelastic: n_i,
            mean_num_elastic: n_e,
        }
    }
}

/// Failures of the analytic pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The Coxian busy-period fit failed (should not happen for stable
    /// parameters; surfaced for diagnosis).
    Coxian(CoxianFitError),
    /// The QBD solve failed (instability or numerical breakdown).
    Qbd(QbdError),
    /// A caller-supplied input violated a documented precondition (e.g. a
    /// MAP not normalized to the model's arrival rate).
    BadInput(String),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Coxian(e) => write!(f, "busy-period fit failed: {e}"),
            AnalysisError::Qbd(e) => write!(f, "QBD solve failed: {e}"),
            AnalysisError::BadInput(msg) => write!(f, "bad analysis input: {msg}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<CoxianFitError> for AnalysisError {
    fn from(e: CoxianFitError) -> Self {
        AnalysisError::Coxian(e)
    }
}

impl From<QbdError> for AnalysisError {
    fn from(e: QbdError) -> Self {
        AnalysisError::Qbd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SystemParams;

    #[test]
    fn class_mean_aggregation_weights_by_arrival_rate() {
        let p = SystemParams::new(4, 1.0, 3.0, 1.0, 2.0).unwrap();
        let a = PolicyAnalysis::from_class_means(&p, 2.0, 6.0);
        // E[T_I] = 2/1, E[T_E] = 6/3 = 2; overall (2+6)/4 = 2.
        assert!((a.mean_response_inelastic - 2.0).abs() < 1e-12);
        assert!((a.mean_response_elastic - 2.0).abs() < 1e-12);
        assert!((a.mean_response - 2.0).abs() < 1e-12);
        assert!((a.mean_num_in_system() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_class_reports_nan_response() {
        let p = SystemParams::new(4, 0.0, 1.0, 1.0, 1.0).unwrap();
        let a = PolicyAnalysis::from_class_means(&p, 0.0, 1.5);
        assert!(a.mean_response_inelastic.is_nan());
        assert!((a.mean_response_elastic - 1.5).abs() < 1e-12);
    }
}
