//! Response-time analysis of Elastic-First and Inelastic-First
//! (paper Section 5 and Appendix D).
//!
//! Both policies give one class strict preemptive priority, so that class is
//! a classical queue in isolation:
//!
//! * **EF**: elastic jobs form an M/M/1 with service rate `kµ_E`
//!   (Observation 1); inelastic jobs see a 2D-infinite chain.
//! * **IF**: inelastic jobs form an M/M/k (Appendix D); elastic jobs see a
//!   2D-infinite chain.
//!
//! The low-priority class's chain is collapsed to a 1D-infinite QBD by the
//! **busy-period transformation**: the region where the low-priority class
//! receives no service is replaced by phase states whose sojourn is a
//! two-phase Coxian matched to the first three moments of the relevant
//! M/M/1 busy period (Observations 2–3; the Coxian fit lives in
//! [`eirs_queueing::coxian`]). The QBD is then solved with matrix-analytic
//! methods ([`eirs_markov::qbd`]), and mean response times follow from the
//! mean level via Little's law.
//!
//! The transformation is an approximation only in the busy-period shape
//! (three moments instead of the full law); the paper reports <1% error
//! against simulation, which the workspace integration tests reproduce.

mod ef;
mod if_policy;

pub use ef::analyze_elastic_first;
pub use if_policy::analyze_inelastic_first;

use crate::params::SystemParams;
use eirs_markov::qbd::QbdError;
use eirs_queueing::coxian::CoxianFitError;

/// Mean-value results of an analytic policy evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyAnalysis {
    /// Overall mean response time
    /// `E[T] = (λ_I E[T_I] + λ_E E[T_E]) / (λ_I + λ_E)`.
    pub mean_response: f64,
    /// Mean inelastic response time `E[T_I]` (`NaN` when `λ_I = 0`).
    pub mean_response_inelastic: f64,
    /// Mean elastic response time `E[T_E]` (`NaN` when `λ_E = 0`).
    pub mean_response_elastic: f64,
    /// Mean number of inelastic jobs in system `E[N_I]`.
    pub mean_num_inelastic: f64,
    /// Mean number of elastic jobs in system `E[N_E]`.
    pub mean_num_elastic: f64,
}

impl PolicyAnalysis {
    /// Mean total number in system `E[N] = E[N_I] + E[N_E]`.
    pub fn mean_num_in_system(&self) -> f64 {
        self.mean_num_inelastic + self.mean_num_elastic
    }

    pub(crate) fn from_class_means(params: &SystemParams, n_i: f64, n_e: f64) -> Self {
        let t_i = if params.lambda_i > 0.0 {
            n_i / params.lambda_i
        } else {
            f64::NAN
        };
        let t_e = if params.lambda_e > 0.0 {
            n_e / params.lambda_e
        } else {
            f64::NAN
        };
        let mean_response = (n_i + n_e) / params.total_lambda();
        PolicyAnalysis {
            mean_response,
            mean_response_inelastic: t_i,
            mean_response_elastic: t_e,
            mean_num_inelastic: n_i,
            mean_num_elastic: n_e,
        }
    }
}

/// Failures of the analytic pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The Coxian busy-period fit failed (should not happen for stable
    /// parameters; surfaced for diagnosis).
    Coxian(CoxianFitError),
    /// The QBD solve failed (instability or numerical breakdown).
    Qbd(QbdError),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Coxian(e) => write!(f, "busy-period fit failed: {e}"),
            AnalysisError::Qbd(e) => write!(f, "QBD solve failed: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<CoxianFitError> for AnalysisError {
    fn from(e: CoxianFitError) -> Self {
        AnalysisError::Coxian(e)
    }
}

impl From<QbdError> for AnalysisError {
    fn from(e: QbdError) -> Self {
        AnalysisError::Qbd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SystemParams;

    #[test]
    fn class_mean_aggregation_weights_by_arrival_rate() {
        let p = SystemParams::new(4, 1.0, 3.0, 1.0, 2.0).unwrap();
        let a = PolicyAnalysis::from_class_means(&p, 2.0, 6.0);
        // E[T_I] = 2/1, E[T_E] = 6/3 = 2; overall (2+6)/4 = 2.
        assert!((a.mean_response_inelastic - 2.0).abs() < 1e-12);
        assert!((a.mean_response_elastic - 2.0).abs() < 1e-12);
        assert!((a.mean_response - 2.0).abs() < 1e-12);
        assert!((a.mean_num_in_system() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_class_reports_nan_response() {
        let p = SystemParams::new(4, 0.0, 1.0, 1.0, 1.0).unwrap();
        let a = PolicyAnalysis::from_class_means(&p, 0.0, 1.5);
        assert!(a.mean_response_inelastic.is_nan());
        assert!((a.mean_response_elastic - 1.5).abs() < 1e-12);
    }
}
