//! Elastic-First analysis (paper Section 5.1–5.3, Figure 3).
//!
//! Under EF, elastic jobs preempt everything, so:
//!
//! * elastic class = M/M/1(λ_E, kµ_E) — exact;
//! * inelastic class = QBD over levels `i` (number of inelastic jobs) with
//!   three phases: `0` = no elastic jobs in system (inelastic jobs being
//!   served, `min(i,k)` of them), `b1`/`b2` = the two Coxian stages of an
//!   elastic busy period (inelastic service suspended).
//!
//! The Coxian `(γ1, γ2, γ3)` matches the first three moments of the
//! M/M/1(λ_E, kµ_E) busy period, exactly as in Figure 3(c).
//!
//! Since the policy-layer refactor this is a thin wrapper: the chain is
//! assembled by the policy-generic generator from [`ElasticFirst`]'s
//! allocation map, bit-identically to the old hand-built construction
//! (kept in [`super::reference`] for the differential tests).

use super::{AnalysisCache, AnalysisError, PolicyAnalysis};
use crate::params::SystemParams;
use eirs_sim::policy::ElasticFirst;

/// Mean response time (and class means) under **Elastic-First**.
pub fn analyze_elastic_first(params: &SystemParams) -> Result<PolicyAnalysis, AnalysisError> {
    super::generator::analyze_elastic_priority(&ElasticFirst, params)
}

/// [`analyze_elastic_first`] warm-started from (and refreshing) the EF
/// slot of `cache` — for chains of nearby parameter points.
pub fn analyze_elastic_first_warm(
    params: &SystemParams,
    cache: &mut AnalysisCache,
) -> Result<PolicyAnalysis, AnalysisError> {
    super::generator::analyze_elastic_priority_cached(&ElasticFirst, params, &mut cache.ef_r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_queueing::{MMk, MM1};

    #[test]
    fn elastic_class_is_exact_mm1() {
        let p = SystemParams::new(4, 0.5, 1.0, 1.0, 1.0).unwrap();
        let a = analyze_elastic_first(&p).unwrap();
        let want = MM1::new(1.0, 4.0).mean_response_time();
        assert!((a.mean_response_elastic - want).abs() < 1e-12);
    }

    #[test]
    fn no_elastic_traffic_reduces_to_mmk() {
        let p = SystemParams::new(4, 3.0, 0.0, 1.0, 1.0).unwrap();
        let a = analyze_elastic_first(&p).unwrap();
        let want = MMk::new(3.0, 1.0, 4).mean_response_time();
        assert!((a.mean_response_inelastic - want).abs() < 1e-10);
    }

    #[test]
    fn no_inelastic_traffic_is_pure_elastic_mm1() {
        let p = SystemParams::new(4, 0.0, 2.0, 1.0, 1.0).unwrap();
        let a = analyze_elastic_first(&p).unwrap();
        assert!(a.mean_response_inelastic.is_nan());
        let want = MM1::new(2.0, 4.0).mean_response_time();
        assert!((a.mean_response - want).abs() < 1e-12);
    }

    #[test]
    fn k1_with_identical_classes_is_priority_mm1() {
        // k=1, µ_I = µ_E = 1: EF is a two-class preemptive-priority M/M/1.
        // Classical result: E[N_high] = ρ_E/(1-ρ_E),
        // E[N_low] = ρ_I(1-ρ_E ρ_I -…); use the standard formula
        // E[T_low] = (1/µ)/((1-ρ_E)(1-ρ_E-ρ_I)).
        let (li, le, mu) = (0.3, 0.4, 1.0);
        let p = SystemParams::new(1, li, le, mu, mu).unwrap();
        let a = analyze_elastic_first(&p).unwrap();
        let t_low = (1.0 / mu) / ((1.0 - le / mu) * (1.0 - le / mu - li / mu));
        // The busy-period transformation matches three moments of the busy
        // period, not its full law; the paper reports <1% error and this
        // exact classical case is where we can measure it directly.
        assert!(
            (a.mean_response_inelastic - t_low).abs() / t_low < 0.01,
            "QBD {} vs priority formula {t_low}",
            a.mean_response_inelastic
        );
        let t_high = 1.0 / (mu - le);
        assert!((a.mean_response_elastic - t_high).abs() < 1e-12);
    }

    #[test]
    fn mean_numbers_satisfy_littles_law() {
        let p = SystemParams::with_equal_lambdas(4, 1.0, 1.0, 0.7).unwrap();
        let a = analyze_elastic_first(&p).unwrap();
        assert!((a.mean_num_inelastic - p.lambda_i * a.mean_response_inelastic).abs() < 1e-9);
        assert!((a.mean_num_elastic - p.lambda_e * a.mean_response_elastic).abs() < 1e-9);
    }

    #[test]
    fn wrapper_is_bit_identical_to_the_reference_implementation() {
        for (k, mu_i, mu_e, rho) in [
            (4, 2.0, 1.0, 0.5),
            (4, 0.25, 1.0, 0.9),
            (1, 1.0, 1.0, 0.7),
            (16, 0.25, 1.0, 0.9),
        ] {
            let p = SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho).unwrap();
            let new = analyze_elastic_first(&p).unwrap();
            let old = super::super::reference::analyze_elastic_first_reference(&p).unwrap();
            assert_eq!(new, old, "k={k} µI={mu_i} µE={mu_e} ρ={rho}");
        }
    }
}
