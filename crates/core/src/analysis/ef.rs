//! Elastic-First analysis (paper Section 5.1–5.3, Figure 3).
//!
//! Under EF, elastic jobs preempt everything, so:
//!
//! * elastic class = M/M/1(λ_E, kµ_E) — exact;
//! * inelastic class = QBD over levels `i` (number of inelastic jobs) with
//!   three phases: `0` = no elastic jobs in system (inelastic jobs being
//!   served, `min(i,k)` of them), `b1`/`b2` = the two Coxian stages of an
//!   elastic busy period (inelastic service suspended).
//!
//! The Coxian `(γ1, γ2, γ3)` matches the first three moments of the
//! M/M/1(λ_E, kµ_E) busy period, exactly as in Figure 3(c).

use super::{AnalysisError, PolicyAnalysis};
use crate::params::SystemParams;
use eirs_markov::qbd::Qbd;
use eirs_numerics::Matrix;
use eirs_queueing::coxian::fit_busy_period;
use eirs_queueing::{MMk, MM1};

/// Number of Coxian phases tracked alongside the "no elastic" phase.
const PHASES: usize = 3;

/// Mean response time (and class means) under **Elastic-First**.
pub fn analyze_elastic_first(params: &SystemParams) -> Result<PolicyAnalysis, AnalysisError> {
    let k = params.k as f64;

    // Elastic class: exact M/M/1 at service rate kµ_E.
    let elastic_queue = MM1::new(params.lambda_e, k * params.mu_e);
    let n_e = if params.lambda_e > 0.0 {
        elastic_queue.mean_number_in_system()
    } else {
        0.0
    };

    // Degenerate cases avoid the QBD entirely.
    if params.lambda_i == 0.0 {
        return Ok(PolicyAnalysis::from_class_means(params, 0.0, n_e));
    }
    if params.lambda_e == 0.0 {
        // No elastic jobs ever: inelastic class is an exact M/M/k.
        let mmk = MMk::new(params.lambda_i, params.mu_i, params.k);
        return Ok(PolicyAnalysis::from_class_means(
            params,
            mmk.mean_number_in_system(),
            0.0,
        ));
    }

    let n_i = inelastic_mean_number(params)?;
    Ok(PolicyAnalysis::from_class_means(params, n_i, n_e))
}

/// Builds and solves the busy-period-transformed EF chain, returning
/// `E[N_I]`.
fn inelastic_mean_number(params: &SystemParams) -> Result<f64, AnalysisError> {
    let k = params.k as usize;
    let kf = params.k as f64;
    let cox = fit_busy_period(&MM1::new(params.lambda_e, kf * params.mu_e))?;
    let (g1, g2, g3) = cox.gamma_rates();

    // Phase transitions shared by all levels (Figure 3c):
    //   0 --λ_E--> b1,   b1 --γ1--> 0,   b1 --γ2--> b2,   b2 --γ3--> 0.
    let mut local = Matrix::zeros(PHASES, PHASES);
    local[(0, 1)] = params.lambda_e;
    local[(1, 0)] = g1;
    local[(1, 2)] = g2;
    local[(2, 0)] = g3;

    // Inelastic arrivals at rate λ_I in every phase.
    let up = Matrix::diag(&[params.lambda_i; PHASES]);

    // Boundary levels 0..k-1: inelastic service i·µ_I only in phase 0.
    let boundary_up = vec![up.clone(); k];
    let boundary_local = vec![local.clone(); k];
    let boundary_down = (1..k)
        .map(|i| {
            let mut d = Matrix::zeros(PHASES, PHASES);
            d[(0, 0)] = i as f64 * params.mu_i;
            d
        })
        .collect();

    // Repeating blocks (levels ≥ k): service saturates at k·µ_I.
    let mut a2 = Matrix::zeros(PHASES, PHASES);
    a2[(0, 0)] = kf * params.mu_i;

    let qbd = Qbd::new(boundary_up, boundary_local, boundary_down, up, local, a2)?;
    let sol = qbd.solve()?;
    debug_assert!((sol.total_probability() - 1.0).abs() < 1e-8);
    Ok(sol.mean_level())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_class_is_exact_mm1() {
        let p = SystemParams::new(4, 0.5, 1.0, 1.0, 1.0).unwrap();
        let a = analyze_elastic_first(&p).unwrap();
        let want = MM1::new(1.0, 4.0).mean_response_time();
        assert!((a.mean_response_elastic - want).abs() < 1e-12);
    }

    #[test]
    fn no_elastic_traffic_reduces_to_mmk() {
        let p = SystemParams::new(4, 3.0, 0.0, 1.0, 1.0).unwrap();
        let a = analyze_elastic_first(&p).unwrap();
        let want = MMk::new(3.0, 1.0, 4).mean_response_time();
        assert!((a.mean_response_inelastic - want).abs() < 1e-10);
    }

    #[test]
    fn no_inelastic_traffic_is_pure_elastic_mm1() {
        let p = SystemParams::new(4, 0.0, 2.0, 1.0, 1.0).unwrap();
        let a = analyze_elastic_first(&p).unwrap();
        assert!(a.mean_response_inelastic.is_nan());
        let want = MM1::new(2.0, 4.0).mean_response_time();
        assert!((a.mean_response - want).abs() < 1e-12);
    }

    #[test]
    fn k1_with_identical_classes_is_priority_mm1() {
        // k=1, µ_I = µ_E = 1: EF is a two-class preemptive-priority M/M/1.
        // Classical result: E[N_high] = ρ_E/(1-ρ_E),
        // E[N_low] = ρ_I(1-ρ_E ρ_I -…); use the standard formula
        // E[T_low] = (1/µ)/((1-ρ_E)(1-ρ_E-ρ_I)).
        let (li, le, mu) = (0.3, 0.4, 1.0);
        let p = SystemParams::new(1, li, le, mu, mu).unwrap();
        let a = analyze_elastic_first(&p).unwrap();
        let t_low = (1.0 / mu) / ((1.0 - le / mu) * (1.0 - le / mu - li / mu));
        // The busy-period transformation matches three moments of the busy
        // period, not its full law; the paper reports <1% error and this
        // exact classical case is where we can measure it directly.
        assert!(
            (a.mean_response_inelastic - t_low).abs() / t_low < 0.01,
            "QBD {} vs priority formula {t_low}",
            a.mean_response_inelastic
        );
        let t_high = 1.0 / (mu - le);
        assert!((a.mean_response_elastic - t_high).abs() < 1e-12);
    }

    #[test]
    fn mean_numbers_satisfy_littles_law() {
        let p = SystemParams::with_equal_lambdas(4, 1.0, 1.0, 0.7).unwrap();
        let a = analyze_elastic_first(&p).unwrap();
        assert!((a.mean_num_inelastic - p.lambda_i * a.mean_response_inelastic).abs() < 1e-9);
        assert!((a.mean_num_elastic - p.lambda_e * a.mean_response_elastic).abs() < 1e-9);
    }
}
