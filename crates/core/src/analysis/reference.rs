//! The pre-refactor, hardcoded EF/IF analyses — kept verbatim as
//! independent references.
//!
//! [`super::analyze_policy`] assembles these same chains through the
//! policy-generic generator; the workspace differential tests require the
//! generic path to reproduce these implementations **bit for bit** (same
//! matrices in, same solver, same floating-point operations). Following
//! the same pattern as `Qbd::solve_r_reference`, these are not for
//! production use.

use super::{AnalysisError, PolicyAnalysis};
use crate::params::SystemParams;
use eirs_markov::qbd::Qbd;
use eirs_numerics::Matrix;
use eirs_queueing::coxian::fit_busy_period;
use eirs_queueing::{MMk, MM1};

/// Number of Coxian phases tracked alongside the "no elastic" phase (EF).
const PHASES: usize = 3;

/// Pre-refactor **Elastic-First** analysis (hand-built Figure 3c blocks).
pub fn analyze_elastic_first_reference(
    params: &SystemParams,
) -> Result<PolicyAnalysis, AnalysisError> {
    let k = params.k as f64;

    // Elastic class: exact M/M/1 at service rate kµ_E.
    let elastic_queue = MM1::new(params.lambda_e, k * params.mu_e);
    let n_e = if params.lambda_e > 0.0 {
        elastic_queue.mean_number_in_system()
    } else {
        0.0
    };

    // Degenerate cases avoid the QBD entirely.
    if params.lambda_i == 0.0 {
        return Ok(PolicyAnalysis::from_class_means(params, 0.0, n_e));
    }
    if params.lambda_e == 0.0 {
        // No elastic jobs ever: inelastic class is an exact M/M/k.
        let mmk = MMk::new(params.lambda_i, params.mu_i, params.k);
        return Ok(PolicyAnalysis::from_class_means(
            params,
            mmk.mean_number_in_system(),
            0.0,
        ));
    }

    let n_i = ef_inelastic_mean_number(params)?;
    Ok(PolicyAnalysis::from_class_means(params, n_i, n_e))
}

/// Builds and solves the busy-period-transformed EF chain, returning
/// `E[N_I]`.
fn ef_inelastic_mean_number(params: &SystemParams) -> Result<f64, AnalysisError> {
    let k = params.k as usize;
    let kf = params.k as f64;
    let cox = fit_busy_period(&MM1::new(params.lambda_e, kf * params.mu_e))?;
    let (g1, g2, g3) = cox.gamma_rates();

    // Phase transitions shared by all levels (Figure 3c):
    //   0 --λ_E--> b1,   b1 --γ1--> 0,   b1 --γ2--> b2,   b2 --γ3--> 0.
    let mut local = Matrix::zeros(PHASES, PHASES);
    local[(0, 1)] = params.lambda_e;
    local[(1, 0)] = g1;
    local[(1, 2)] = g2;
    local[(2, 0)] = g3;

    // Inelastic arrivals at rate λ_I in every phase.
    let up = Matrix::diag(&[params.lambda_i; PHASES]);

    // Boundary levels 0..k-1: inelastic service i·µ_I only in phase 0.
    let boundary_up = vec![up.clone(); k];
    let boundary_local = vec![local.clone(); k];
    let boundary_down = (1..k)
        .map(|i| {
            let mut d = Matrix::zeros(PHASES, PHASES);
            d[(0, 0)] = i as f64 * params.mu_i;
            d
        })
        .collect();

    // Repeating blocks (levels ≥ k): service saturates at k·µ_I.
    let mut a2 = Matrix::zeros(PHASES, PHASES);
    a2[(0, 0)] = kf * params.mu_i;

    let qbd = Qbd::new(boundary_up, boundary_local, boundary_down, up, local, a2)?;
    let sol = qbd.solve()?;
    debug_assert!((sol.total_probability() - 1.0).abs() < 1e-8);
    Ok(sol.mean_level())
}

/// Pre-refactor **Inelastic-First** analysis (hand-built Figure 7c blocks).
pub fn analyze_inelastic_first_reference(
    params: &SystemParams,
) -> Result<PolicyAnalysis, AnalysisError> {
    let kf = params.k as f64;

    // Inelastic class: exact M/M/k.
    let n_i = if params.lambda_i > 0.0 {
        MMk::new(params.lambda_i, params.mu_i, params.k).mean_number_in_system()
    } else {
        0.0
    };

    if params.lambda_e == 0.0 {
        return Ok(PolicyAnalysis::from_class_means(params, n_i, 0.0));
    }
    if params.lambda_i == 0.0 {
        // Elastic jobs alone: M/M/1 at rate kµ_E.
        let n_e = MM1::new(params.lambda_e, kf * params.mu_e).mean_number_in_system();
        return Ok(PolicyAnalysis::from_class_means(params, 0.0, n_e));
    }

    let n_e = if_elastic_mean_number(params)?;
    Ok(PolicyAnalysis::from_class_means(params, n_i, n_e))
}

/// Builds and solves the busy-period-transformed IF chain, returning
/// `E[N_E]`.
fn if_elastic_mean_number(params: &SystemParams) -> Result<f64, AnalysisError> {
    let k = params.k as usize;
    let kf = params.k as f64;
    let phases = k + 2; // 0..k-1 inelastic counts, then b1, b2.
    let b1 = k;
    let b2 = k + 1;

    let cox = fit_busy_period(&MM1::new(params.lambda_i, kf * params.mu_i))?;
    let (g1, g2, g3) = cox.gamma_rates();

    // Phase process shared by every level (Figure 7c): births of inelastic
    // jobs up to the busy-period states and deaths back down.
    let mut local = Matrix::zeros(phases, phases);
    for i in 0..k {
        if i + 1 < k {
            local[(i, i + 1)] = params.lambda_i;
        } else {
            local[(i, b1)] = params.lambda_i; // k-1 --λ_I--> busy period
        }
        if i >= 1 {
            local[(i, i - 1)] = i as f64 * params.mu_i;
        }
    }
    local[(b1, k - 1)] = g1;
    local[(b1, b2)] = g2;
    local[(b2, k - 1)] = g3;

    // Elastic arrivals in every phase.
    let up = Matrix::diag(&vec![params.lambda_e; phases]);

    // Elastic service: the head-of-line elastic job gets the k − i servers
    // left over by inelastic jobs; nothing during a busy period.
    let mut a2 = Matrix::zeros(phases, phases);
    for i in 0..k {
        a2[(i, i)] = (kf - i as f64) * params.mu_e;
    }

    let qbd = Qbd::new(vec![up.clone()], vec![local.clone()], vec![], up, local, a2)?;
    let sol = qbd.solve()?;
    debug_assert!((sol.total_probability() - 1.0).abs() < 1e-8);
    Ok(sol.mean_level())
}
