//! The shared policy layer: one place where every substrate meets every
//! policy.
//!
//! The [`AllocationPolicy`] trait (defined in [`eirs_sim::policy`],
//! absorbed and re-exported here so analytical and simulation code share
//! one vocabulary) is the repo-wide currency for the paper's central
//! object — a stationary map `(i, j) → (π_I, π_E)`. This module adds what
//! the trait itself does not carry:
//!
//! * a **registry** ([`registry`]) of every shipped policy family at
//!   representative parameters, used by the feasibility property tests,
//!   the `policy_families` bench, and anything that wants to sweep "all
//!   policies";
//! * a **parser** ([`parse_policy`]) for the `eirs` CLI's policy specs
//!   (`if`, `ef`, `fairshare`, `reserve:2`, `threshold:3`, `curve:2+1i`,
//!   `waterfill:1.5`, `random:7`);
//! * the re-exported [`TabularPolicy`], which
//!   `eirs_mdp::MdpSolution::tabular_policy` produces — the bridge that
//!   lets the MDP-optimal policy run on every substrate.
//!
//! # Defining your own policy
//!
//! Implement [`AllocationPolicy`] (a pure map plus a display name), and
//! every substrate accepts it unchanged:
//!
//! ```
//! use eirs_core::policy::{AllocationPolicy, ClassAllocation};
//! use eirs_core::{analysis, SystemParams};
//!
//! /// Give inelastic jobs one server each, but never more than half the
//! /// cluster while elastic work is waiting.
//! struct HalfAndHalf;
//!
//! impl AllocationPolicy for HalfAndHalf {
//!     fn allocate(&self, i: usize, j: usize, k: u32) -> ClassAllocation {
//!         let kf = k as f64;
//!         let cap = if j > 0 { kf / 2.0 } else { kf };
//!         let inelastic = (i as f64).min(cap);
//!         let elastic = if j > 0 { kf - inelastic } else { 0.0 };
//!         ClassAllocation { inelastic, elastic }
//!     }
//!     fn name(&self) -> String {
//!         "Half-and-Half".into()
//!     }
//! }
//!
//! let params = SystemParams::with_equal_lambdas(4, 0.5, 1.0, 0.6).unwrap();
//! // Analytical evaluation — no EF/IF special-casing required.
//! let a = analysis::analyze_policy(&HalfAndHalf, &params).unwrap();
//! assert!(a.mean_response.is_finite() && a.mean_response > 0.0);
//! ```
//!
//! The same value plugs into [`eirs_sim::des::run_markovian`],
//! [`eirs_sim::ctmc::simulate_state_level`], and
//! `eirs_mdp::evaluate_allocation_policy`. Keep allocations inside the
//! feasible polytope `π_I ≤ min(i,k)`, `π_E = 0` when `j = 0`,
//! `π_I + π_E ≤ k` — the simulators assert it on every decision, and the
//! registry property tests enforce it for everything shipped here.

pub use eirs_sim::policy::{
    assert_feasible, AllocationPolicy, ClassAllocation, ElasticFirst, ElasticThresholdPolicy,
    FairShare, InelasticFirst, ReservePolicy, SwitchingCurvePolicy, TablePolicy, TabularPolicy,
    WeightedWaterFilling,
};

/// Every shipped policy family at representative parameters for `k`
/// servers. The list intentionally spans all three analysis structures:
/// strict priority (EF/IF and their disguises), thresholds and switching
/// curves (general, exactly level-homogeneous), and fractional
/// water-filling (general, saturated).
pub fn registry(k: u32) -> Vec<Box<dyn AllocationPolicy>> {
    vec![
        Box::new(InelasticFirst),
        Box::new(ElasticFirst),
        Box::new(FairShare),
        Box::new(ReservePolicy { reserve: 1 }),
        Box::new(ReservePolicy {
            reserve: k.div_ceil(2),
        }),
        Box::new(ElasticThresholdPolicy { threshold: 1 }),
        Box::new(ElasticThresholdPolicy { threshold: 3 }),
        Box::new(SwitchingCurvePolicy {
            intercept: 2,
            slope: 1.0,
        }),
        Box::new(SwitchingCurvePolicy {
            intercept: 4,
            slope: 0.5,
        }),
        Box::new(WeightedWaterFilling {
            elastic_weight: 0.5,
        }),
        Box::new(WeightedWaterFilling {
            elastic_weight: 1.0,
        }),
        Box::new(WeightedWaterFilling {
            elastic_weight: 2.0,
        }),
        Box::new(TablePolicy::random_class_p(1)),
        Box::new(TablePolicy::random_class_p(2)),
    ]
}

/// Parses a CLI policy spec into a boxed policy.
///
/// Accepted forms: `if`, `ef`, `fairshare`, `reserve:<servers>`,
/// `threshold:<jobs>`, `curve:<intercept>+<slope>i` (e.g. `curve:2+0.5i`),
/// `waterfill:<weight>`, `random:<seed>`.
pub fn parse_policy(spec: &str) -> Result<Box<dyn AllocationPolicy>, String> {
    match spec {
        "if" => return Ok(Box::new(InelasticFirst)),
        "ef" => return Ok(Box::new(ElasticFirst)),
        "fairshare" => return Ok(Box::new(FairShare)),
        _ => {}
    }
    if let Some(raw) = spec.strip_prefix("reserve:") {
        let reserve: u32 = raw.parse().map_err(|_| bad(spec, "reserve:<servers>"))?;
        return Ok(Box::new(ReservePolicy { reserve }));
    }
    if let Some(raw) = spec.strip_prefix("threshold:") {
        let threshold: usize = raw.parse().map_err(|_| bad(spec, "threshold:<jobs>"))?;
        return Ok(Box::new(ElasticThresholdPolicy { threshold }));
    }
    if let Some(raw) = spec.strip_prefix("curve:") {
        let form = "curve:<intercept>+<slope>i";
        let body = raw.strip_suffix('i').ok_or_else(|| bad(spec, form))?;
        let (a, b) = body.split_once('+').ok_or_else(|| bad(spec, form))?;
        let intercept: usize = a.parse().map_err(|_| bad(spec, form))?;
        let slope: f64 = b.parse().map_err(|_| bad(spec, form))?;
        if !(slope >= 0.0 && slope.is_finite()) {
            return Err(bad(spec, form));
        }
        return Ok(Box::new(SwitchingCurvePolicy { intercept, slope }));
    }
    if let Some(raw) = spec.strip_prefix("waterfill:") {
        let weight: f64 = raw.parse().map_err(|_| bad(spec, "waterfill:<weight>"))?;
        if !(weight > 0.0 && weight.is_finite()) {
            return Err(bad(spec, "waterfill:<weight> (weight > 0)"));
        }
        return Ok(Box::new(WeightedWaterFilling {
            elastic_weight: weight,
        }));
    }
    if let Some(raw) = spec.strip_prefix("random:") {
        let seed: u64 = raw.parse().map_err(|_| bad(spec, "random:<seed>"))?;
        return Ok(Box::new(TablePolicy::random_class_p(seed)));
    }
    Err(format!(
        "unknown policy '{spec}' (expected if, ef, fairshare, reserve:<r>, threshold:<t>, \
         curve:<a>+<b>i, waterfill:<w>, or random:<seed>)"
    ))
}

fn bad(spec: &str, form: &str) -> String {
    format!("cannot parse policy '{spec}' (expected {form})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_spans_every_family_with_unique_names() {
        let policies = registry(4);
        assert!(policies.len() >= 10);
        let mut names: Vec<String> = policies.iter().map(|p| p.name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate policy names in registry");
    }

    #[test]
    fn registry_members_are_feasible_on_a_grid() {
        for policy in registry(4) {
            for i in 0..=12usize {
                for j in 0..=12usize {
                    assert_feasible(policy.allocate(i, j, 4), i, j, 4, &policy.name());
                }
            }
        }
    }

    #[test]
    fn parser_round_trips_every_spec_form() {
        for (spec, name) in [
            ("if", "Inelastic-First"),
            ("ef", "Elastic-First"),
            ("fairshare", "Fair-Share"),
            ("reserve:2", "Reserve(2)"),
            ("threshold:3", "ElasticThreshold(3)"),
            ("curve:2+0.5i", "SwitchingCurve(2+0.5i)"),
            ("waterfill:1.5", "WaterFilling(w=1.5)"),
            ("random:7", "RandomP(seed=7)"),
        ] {
            let p = parse_policy(spec).unwrap();
            assert_eq!(p.name(), name, "spec '{spec}'");
        }
    }

    #[test]
    fn parser_rejects_malformed_specs() {
        for spec in [
            "nope",
            "reserve:x",
            "threshold:",
            "curve:2",
            "curve:2+xi",
            "waterfill:-1",
            "waterfill:0",
            "random:abc",
        ] {
            assert!(parse_policy(spec).is_err(), "spec '{spec}' should fail");
        }
    }
}
