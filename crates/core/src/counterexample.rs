//! Exact transient analysis for the Theorem 6 counterexample.
//!
//! Theorem 6 shows IF is not optimal when `µ_I < µ_E`: with `k = 2`,
//! `µ_E = 2µ_I`, no arrivals, and an initial population of two inelastic
//! jobs plus one elastic job, direct computation gives expected *total*
//! response time
//!
//! ```text
//! E[ΣT^IF] = 35/12 · (1/µ_I)  >  E[ΣT^EF] = 33/12 · (1/µ_I).
//! ```
//!
//! This module generalizes that computation: for any starting population
//! `(i₀, j₀)`, any `k`, and any allocation policy, the expected total
//! response time equals the expected accumulated cost `∫ N(t) dt` of the
//! absorbing CTMC on states `(i, j) ⊆ [0,i₀] × [0,j₀]` with cost rate
//! `i + j` — solved exactly by first-step analysis
//! ([`eirs_markov::absorbing`]).

use eirs_markov::absorbing::AbsorbingCtmc;
use eirs_numerics::lu::LinAlgError;
use eirs_sim::policy::AllocationPolicy;

/// Expected total response time (sum over jobs) for a closed system:
/// `i0` inelastic and `j0` elastic jobs at time zero, no arrivals, `k`
/// servers, exponential sizes with rates `mu_i`/`mu_e`, scheduled by
/// `policy`.
pub fn expected_total_response_closed(
    policy: &dyn AllocationPolicy,
    k: u32,
    i0: usize,
    j0: usize,
    mu_i: f64,
    mu_e: f64,
) -> Result<f64, LinAlgError> {
    assert!(mu_i > 0.0 && mu_e > 0.0);
    if i0 == 0 && j0 == 0 {
        return Ok(0.0);
    }
    // Transient states: all (i, j) with i ≤ i0, j ≤ j0 except (0,0).
    let cols = j0 + 1;
    let index = |i: usize, j: usize| -> usize {
        // (0,0) removed; shift everything after it down by one.
        let raw = i * cols + j;
        raw - 1
    };
    let n = (i0 + 1) * (j0 + 1) - 1;
    let mut chain = AbsorbingCtmc::new(n);
    let mut costs = vec![0.0; n];
    for i in 0..=i0 {
        for j in 0..=j0 {
            if i == 0 && j == 0 {
                continue;
            }
            let s = index(i, j);
            costs[s] = (i + j) as f64;
            let alloc = policy.allocate(i, j, k);
            eirs_sim::policy::assert_feasible(alloc, i, j, k, &policy.name());
            let rate_i = alloc.inelastic * mu_i;
            let rate_e = alloc.elastic * mu_e;
            assert!(
                rate_i + rate_e > 0.0,
                "policy {} stalls in state ({i},{j})",
                policy.name()
            );
            if rate_i > 0.0 {
                if i == 1 && j == 0 {
                    chain.add_absorbing_rate(s, rate_i);
                } else {
                    chain.add_rate(s, index(i - 1, j), rate_i);
                }
            }
            if rate_e > 0.0 {
                if i == 0 && j == 1 {
                    chain.add_absorbing_rate(s, rate_e);
                } else {
                    chain.add_rate(s, index(i, j - 1), rate_e);
                }
            }
        }
    }
    let x = chain.expected_cost_to_absorption(&costs)?;
    Ok(x[index(i0, j0)])
}

/// The two closed-form values of Theorem 6 for the paper's instance
/// (`k = 2`, `µ_E = 2µ_I`, start `(2, 1)`): returns
/// `(E[ΣT^IF], E[ΣT^EF]) = (35/12, 33/12) / µ_I`.
pub fn theorem6_values(mu_i: f64) -> (f64, f64) {
    (35.0 / 12.0 / mu_i, 33.0 / 12.0 / mu_i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_sim::policy::{ElasticFirst, FairShare, InelasticFirst};

    #[test]
    fn theorem6_if_value_is_35_twelfths() {
        for mu_i in [1.0, 0.5, 3.0] {
            let got =
                expected_total_response_closed(&InelasticFirst, 2, 2, 1, mu_i, 2.0 * mu_i).unwrap();
            let want = 35.0 / 12.0 / mu_i;
            assert!((got - want).abs() < 1e-10, "mu_i={mu_i}: {got} vs {want}");
        }
    }

    #[test]
    fn theorem6_ef_value_is_33_twelfths() {
        for mu_i in [1.0, 0.5, 3.0] {
            let got =
                expected_total_response_closed(&ElasticFirst, 2, 2, 1, mu_i, 2.0 * mu_i).unwrap();
            let want = 33.0 / 12.0 / mu_i;
            assert!((got - want).abs() < 1e-10, "mu_i={mu_i}: {got} vs {want}");
        }
    }

    #[test]
    fn ef_beats_if_exactly_as_in_the_paper() {
        let (v_if, v_ef) = theorem6_values(1.0);
        let g_if = expected_total_response_closed(&InelasticFirst, 2, 2, 1, 1.0, 2.0).unwrap();
        let g_ef = expected_total_response_closed(&ElasticFirst, 2, 2, 1, 1.0, 2.0).unwrap();
        assert!((g_if - v_if).abs() < 1e-10);
        assert!((g_ef - v_ef).abs() < 1e-10);
        assert!(g_ef < g_if);
    }

    #[test]
    fn if_beats_ef_in_the_reverse_regime() {
        // µ_I > µ_E: the Theorem 5 regime, here in transient form.
        let g_if = expected_total_response_closed(&InelasticFirst, 2, 2, 1, 2.0, 1.0).unwrap();
        let g_ef = expected_total_response_closed(&ElasticFirst, 2, 2, 1, 2.0, 1.0).unwrap();
        assert!(g_if < g_ef, "IF {g_if} vs EF {g_ef}");
    }

    #[test]
    fn equal_rates_make_if_no_worse_than_alternatives() {
        // µ_I = µ_E: Theorem 1 regime.
        for policy in [
            &InelasticFirst as &dyn AllocationPolicy,
            &ElasticFirst,
            &FairShare,
        ] {
            let g = expected_total_response_closed(policy, 2, 2, 2, 1.0, 1.0).unwrap();
            let g_if = expected_total_response_closed(&InelasticFirst, 2, 2, 2, 1.0, 1.0).unwrap();
            assert!(g_if <= g + 1e-10, "{}: IF {g_if} vs {g}", policy.name());
        }
    }

    #[test]
    fn single_job_total_is_its_mean_size() {
        let g = expected_total_response_closed(&InelasticFirst, 4, 1, 0, 2.0, 1.0).unwrap();
        assert!((g - 0.5).abs() < 1e-12);
        // One elastic job on k=4 servers at rate µ_E=1: mean 1/(4µ_E).
        let g = expected_total_response_closed(&InelasticFirst, 4, 0, 1, 1.0, 1.0).unwrap();
        assert!((g - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_start_costs_nothing() {
        let g = expected_total_response_closed(&InelasticFirst, 2, 0, 0, 1.0, 1.0).unwrap();
        assert_eq!(g, 0.0);
    }

    #[test]
    fn hand_computed_if_recursion_matches() {
        // Recompute the paper's E[ΣT^IF] with the explicit four-term sum
        // (Theorem 6 proof) for an asymmetric rate pair.
        let (mu_i, mu_e) = (1.0, 3.0);
        let expect = 3.0 / (2.0 * mu_i)
            + 2.0 / (mu_i + mu_e)
            + (mu_i / (mu_i + mu_e)) * (1.0 / (2.0 * mu_e))
            + (mu_e / (mu_i + mu_e)) * (1.0 / mu_i);
        let got = expected_total_response_closed(&InelasticFirst, 2, 2, 1, mu_i, mu_e).unwrap();
        assert!((got - expect).abs() < 1e-10, "{got} vs {expect}");
    }
}
