//! Deterministic parallel sweep engine for parameter-grid experiments.
//!
//! Every headline artifact of the paper is an embarrassingly parallel map
//! over a parameter grid: Figure 4 solves 196 QBD pairs per heat map,
//! Figure 5 one pair per `µ_I` value, Figure 6 one pair per server count,
//! and the robustness/open-regime studies multiply those by simulation
//! replications. This module gives all of them one fan-out primitive with
//! two guarantees:
//!
//! 1. **Ordered results** — `sweep(points, f)[i]` is `f(&points[i])`,
//!    regardless of worker scheduling.
//! 2. **Bit-determinism** — because each point is evaluated by a pure
//!    function of the point alone (the QBD solver is deterministic, and
//!    simulation replications carry their own seeded RNG streams), the
//!    parallel result vector is bit-identical to the serial one. The
//!    workspace's property tests assert this for the Figure 4 grid.
//!
//! Thread count comes from [`threads()`]: the [`set_threads`] override
//! when one was installed (the `eirs --threads N` flag uses this), else
//! the `EIRS_THREADS` environment variable when set, otherwise all
//! available cores. A count of 1 forces the inline serial path (no worker
//! threads at all), which is also available directly as [`sweep_serial`]
//! for differential testing.

use eirs_numerics::parallel;

/// Default worker-thread count for sweeps ([`set_threads`] override,
/// `EIRS_THREADS`, or all cores — in that order).
pub fn threads() -> usize {
    parallel::num_threads()
}

/// Installs a process-wide worker-thread count for all subsequent sweeps,
/// overriding `EIRS_THREADS` and core detection; `None` clears it.
pub fn set_threads(threads: Option<usize>) {
    parallel::set_num_threads(threads);
}

/// Maps `f` over `points` in parallel on [`threads()`] workers, returning
/// results in input order.
pub fn sweep<T, R, F>(points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    sweep_with_threads(points, threads(), f)
}

/// Like [`sweep`] with an explicit worker count. `threads <= 1` runs
/// inline on the caller's thread.
///
/// When the `eirs_obs` layer is enabled, the sweep emits one enclosing
/// span plus a per-point `sweep.point` span (telemetry only: the mapped
/// function's results are untouched, so parallel output stays
/// bit-identical to serial with instrumentation on or off).
pub fn sweep_with_threads<T, R, F>(points: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut sweep_span = eirs_obs::span("sweep", "sweep");
    sweep_span.arg("points", points.len());
    sweep_span.arg("threads", threads.max(1));
    parallel::par_map_ordered(points, threads, |p| {
        let _point = eirs_obs::span("sweep.point", "sweep");
        f(p)
    })
}

/// The serial reference path: same contract as [`sweep`], no threads.
pub fn sweep_serial<T, R, F>(points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    sweep_with_threads(points, 1, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_results_are_ordered() {
        let points: Vec<u32> = (0..100).collect();
        let out = sweep_with_threads(&points, 4, |&x| x * 3);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3 * i as u32);
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        // A numerically nontrivial pure function: parallel evaluation must
        // not perturb a single bit.
        let points: Vec<f64> = (1..200).map(|i| i as f64 * 0.013).collect();
        let f = |x: &f64| (x.ln() * x.exp() / (1.0 + x * x)).to_bits();
        let serial = sweep_serial(&points, f);
        let parallel = sweep_with_threads(&points, 8, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_propagates_result_types() {
        let points = [1.0f64, -1.0, 4.0];
        let out: Vec<Result<f64, String>> = sweep_with_threads(&points, 2, |&x| {
            if x >= 0.0 {
                Ok(x.sqrt())
            } else {
                Err(format!("negative point {x}"))
            }
        });
        assert!(out[0].is_ok() && out[2].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn threads_respects_minimum() {
        assert!(threads() >= 1);
    }
}
