//! Seeded scenario fuzzer: an unbounded, self-checking workload space.
//!
//! The scenario registry ships six hand-picked workload families; the
//! fuzzer replaces "hand-picked" with **adversarially sampled**. Each
//! fuzz *cell* is a complete experiment — arrival shape × per-class
//! service shape × load × cluster size × optional churn × policy — derived
//! as a pure function of a single 64-bit seed, rendered as the same spec
//! strings the CLI parsers accept, and pushed through every differential
//! oracle the stack has earned:
//!
//! * **Analysis vs DES** — on tractably-dispatched cells the exact chain
//!   (QBD / MAP-phase / MAP-PH-1) must agree with CRN-paired replications
//!   within the 95% CI (plus a small relative slack so a 95% interval's
//!   expected 5% miss rate doesn't flag healthy cells — a miss only
//!   counts when the relative error is material).
//! * **Accounting** — a finite recorded prefix of the cell's arrival
//!   process, drained through the DES, must complete *every* arrival:
//!   `completions = arrivals` exactly (the serve layer extends this to
//!   `completions + rejections = arrivals` under shedding).
//! * **Digest stability** — the replication set evaluated on 1 worker
//!   thread and on 2 must produce bit-identical reports (the workspace's
//!   parallel ≡ serial contract, fuzzed instead of hand-cased).
//! * **Spec re-parse** — every generated spec string must round-trip
//!   through [`crate::policy::parse_policy`] /
//!   [`crate::scenario::parse_workload`]; the generator is pinned to the
//!   parsers, not a parallel grammar.
//! * **Injected oracles** ([`CellOracle`]) — layers above `eirs-core`
//!   (the optimizer crate, the serve engine) plug in their own checks;
//!   the `eirs fuzz` CLI injects an `eirs_opt` oracle that flags any
//!   tractable cell where a trivial baseline (EF/IF) beats the
//!   optimizer's winner.
//!
//! Every failure is replayable from its printed token alone:
//! `eirs fuzz --replay <token>` re-derives the cell from the embedded
//! seed and re-runs the oracles, bit-identically across runs and thread
//! counts. Flagged cells additionally *shrink*: the minimizer re-checks
//! progressively simpler variants (drop churn, Poisson arrivals,
//! exponential service, smaller k, …) and reports the simplest spec that
//! still fails, with the evaluation cost of the search.

use crate::analysis::AnalyzeOptions;
use crate::params::SystemParams;
use crate::policy::parse_policy;
use crate::scenario::{parse_workload, Tractability, Workload};
use crate::sweep::sweep_with_threads;
use eirs_sim::policy::AllocationPolicy;
use eirs_sim::replicate::run_replications_with_threads;
use eirs_sim::stats::ReplicationStats;
use eirs_sim::{ArrivalTrace, DesConfig, SimReport, Simulation};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng, SplitMix64};

/// One fully-specified fuzz cell: spec strings plus numeric parameters,
/// all derived from one seed by [`CellSpec::from_seed`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// The seed this cell was derived from (0 for shrunken variants).
    pub seed: u64,
    /// Arrival spec string (`poisson`, `map:…`, `bursty:…`, `trace`).
    pub arrivals: String,
    /// Inelastic service spec (`exp`, `erlang:…`, `hyper:…`, `det`).
    pub service_i: String,
    /// Elastic service spec.
    pub service_e: String,
    /// Optional churn spec (`crash:…`, `drain:…`).
    pub churn: Option<String>,
    /// Policy spec string (`if`, `reserve:…`, `curve:…`, …).
    pub policy: String,
    /// Cluster size.
    pub k: u32,
    /// Offered load `ρ < 1`.
    pub rho: f64,
    /// Fraction of the load carried by the inelastic class.
    pub frac_i: f64,
    /// Inelastic service rate.
    pub mu_i: f64,
    /// Elastic service rate.
    pub mu_e: f64,
}

fn pick(rng: &mut StdRng, n: u64) -> u64 {
    rng.next_u64() % n
}

fn pick_f64(rng: &mut StdRng, table: &[f64]) -> f64 {
    table[pick(rng, table.len() as u64) as usize]
}

impl CellSpec {
    /// Derives the cell for `seed` — a pure function: the same seed
    /// yields the same cell on every host, thread count, and run.
    ///
    /// All continuous parameters are quantized to short decimals so the
    /// rendered spec strings re-parse to bit-identical values.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = 2 + pick(&mut rng, 3) as u32;
        let mu_i = pick_f64(&mut rng, &[0.5, 0.75, 1.0, 1.5, 2.0]);
        let mu_e = pick_f64(&mut rng, &[0.5, 0.75, 1.0, 1.5, 2.0]);
        let mut rho_pct = 30 + pick(&mut rng, 51); // 0.30 ..= 0.80
        let frac_i = pick_f64(&mut rng, &[0.3, 0.4, 0.5, 0.6, 0.7]);

        let arrivals = match pick(&mut rng, 8) {
            0..=2 => "poisson".to_string(),
            3 => "trace".to_string(), // replayed recorded-Poisson sample path
            4 | 5 => {
                let r01 = pick_f64(&mut rng, &[0.5, 1.0, 2.0]);
                let r10 = pick_f64(&mut rng, &[0.5, 1.0, 2.0]);
                let a0 = pick_f64(&mut rng, &[1.0, 2.0, 4.0, 9.0]);
                let a1 = pick_f64(&mut rng, &[0.5, 1.0]);
                format!("map:{r01}x{r10}x{a0}x{a1}")
            }
            _ => {
                let mean = pick_f64(&mut rng, &[2.0, 3.0, 4.0, 6.0]);
                format!("bursty:{mean}")
            }
        };

        // Exponential service is weighted up: it is the only service
        // shape with exact analysis routes, and every tractable cell is
        // a full analysis-vs-DES differential.
        let service = |rng: &mut StdRng| match pick(rng, 8) {
            0..=4 => "exp".to_string(),
            5 => format!("erlang:{}", 2 + pick(rng, 3)),
            6 => format!("hyper:{}", pick_f64(rng, &[2.0, 3.0, 4.0])),
            _ => "det".to_string(),
        };
        let service_i = service(&mut rng);
        let service_e = service(&mut rng);

        let churn = if pick(&mut rng, 4) == 0 {
            // Churn eats capacity: cap the nominal load so churned cells
            // stay stable at surviving capacity.
            rho_pct = rho_pct.min(55);
            Some(if pick(&mut rng, 2) == 0 {
                let mtbf = pick_f64(&mut rng, &[100.0, 150.0, 200.0]);
                let mttr = pick_f64(&mut rng, &[2.0, 5.0]);
                format!("crash:mtbf={mtbf},mttr={mttr}")
            } else {
                let period = pick_f64(&mut rng, &[80.0, 120.0]);
                let down = pick_f64(&mut rng, &[4.0, 8.0]);
                format!("drain:period={period},down={down}")
            })
        } else {
            None
        };

        let policy = match pick(&mut rng, 8) {
            0 => "if".to_string(),
            1 => "ef".to_string(),
            2 => "fairshare".to_string(),
            3 => format!("reserve:{}", 1 + pick(&mut rng, (k - 1) as u64)),
            4 => format!("threshold:{}", 1 + pick(&mut rng, 10)),
            5 => format!(
                "curve:{}+{}i",
                pick(&mut rng, 3),
                pick_f64(&mut rng, &[0.5, 1.0, 2.0])
            ),
            6 => format!("waterfill:{}", pick_f64(&mut rng, &[0.5, 1.0, 2.0, 4.0])),
            _ => format!("random:{}", pick(&mut rng, 1000)),
        };

        Self {
            seed,
            arrivals,
            service_i,
            service_e,
            churn,
            policy,
            k,
            rho: rho_pct as f64 / 100.0,
            frac_i,
            mu_i,
            mu_e,
        }
    }

    /// Canonical one-line rendering (the string the differential tests
    /// pin byte-for-byte across thread counts).
    pub fn render(&self) -> String {
        format!(
            "arrivals={} service_i={} service_e={} churn={} policy={} k={} rho={} frac_i={} \
             mu_i={} mu_e={}",
            self.arrivals,
            self.service_i,
            self.service_e,
            self.churn.as_deref().unwrap_or("none"),
            self.policy,
            self.k,
            self.rho,
            self.frac_i,
            self.mu_i,
            self.mu_e,
        )
    }

    /// Re-parses the cell through the shipped spec parsers (the same
    /// code paths the CLI flags use). This *is* an oracle: a generated
    /// spec the parsers reject is a fuzzer/grammar divergence.
    pub fn build(&self) -> Result<(Workload, Box<dyn AllocationPolicy>, SystemParams), String> {
        let workload = parse_workload(
            &self.arrivals,
            Some(&self.service_i),
            Some(&self.service_e),
            self.churn.as_deref(),
        )?;
        let policy = parse_policy(&self.policy)?;
        let lambda_i = self.frac_i * self.rho * self.k as f64 * self.mu_i;
        let lambda_e = (1.0 - self.frac_i) * self.rho * self.k as f64 * self.mu_e;
        let params = SystemParams::new(self.k, lambda_i, lambda_e, self.mu_i, self.mu_e)
            .map_err(|e| e.to_string())?;
        Ok((workload, policy, params))
    }
}

impl std::fmt::Display for CellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Derives the seed of cell `index` within a run seeded by `run_seed`
/// (decorrelated SplitMix64 stream, one value per cell).
pub fn cell_seed(run_seed: u64, index: u64) -> u64 {
    SplitMix64 {
        state: run_seed.wrapping_add((index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    }
    .next_u64()
}

fn token_checksum(seed: u64) -> u16 {
    (SplitMix64 {
        state: seed ^ 0xE1A5_F022_BA5E_D00D,
    }
    .next_u64()
        >> 48) as u16
}

/// Renders a cell seed as a replay token: 16 hex digits of seed plus a
/// 4-hex-digit checksum, so a mistyped or truncated token is rejected as
/// *unknown* instead of silently fuzzing a different cell.
pub fn replay_token(seed: u64) -> String {
    format!("{seed:016x}-{:04x}", token_checksum(seed))
}

/// Parses a [`replay_token`] back to its seed, validating the checksum.
pub fn parse_replay_token(token: &str) -> Result<u64, String> {
    let err = || {
        format!(
            "unknown replay token '{token}' (expected <16-hex-seed>-<4-hex-checksum> \
             as printed by a fuzz run)"
        )
    };
    let (seed_hex, check_hex) = token.split_once('-').ok_or_else(err)?;
    if seed_hex.len() != 16 || check_hex.len() != 4 {
        return Err(err());
    }
    let seed = u64::from_str_radix(seed_hex, 16).map_err(|_| err())?;
    let check = u16::from_str_radix(check_hex, 16).map_err(|_| err())?;
    if check != token_checksum(seed) {
        return Err(format!(
            "replay token '{token}' fails its checksum — not a token printed by this fuzzer"
        ));
    }
    Ok(seed)
}

/// An externally-injected per-cell check (e.g. the `eirs_opt` baseline
/// oracle, which lives above `eirs-core` in the crate graph). Returning
/// `Err(detail)` flags the cell.
pub trait CellOracle: Sync {
    /// Short oracle name used in reports (`"optimizer"`, …).
    fn name(&self) -> &str;
    /// Checks one cell; `Err` flags it with the given detail.
    fn check(&self, cell: &CellSpec) -> Result<(), String>;
}

/// Tuning knobs of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of cells to generate and check.
    pub budget: usize,
    /// Run seed; cell `i` uses [`cell_seed`]`(seed, i)`.
    pub seed: u64,
    /// Minimize flagged cells after the sweep.
    pub shrink: bool,
    /// Worker threads for the cell sweep (cells are independent; output
    /// is ordered, so any thread count produces identical reports).
    pub threads: usize,
    /// DES replications per cell (≥ 2 — the CI needs them).
    pub replications: usize,
    /// Measured departures per replication.
    pub departures: u64,
    /// Warm-up departures per replication.
    pub warmup: u64,
    /// Arrivals recorded for the exact accounting drain.
    pub accounting_arrivals: usize,
    /// Relative-error slack on top of the 95% CI: a CI miss only flags
    /// when `|analysis − DES| / analysis` also exceeds this.
    pub rel_slack: f64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            budget: 100,
            seed: 1,
            shrink: true,
            threads: 1,
            replications: 4,
            departures: 8000,
            warmup: 800,
            accounting_arrivals: 300,
            rel_slack: 0.03,
        }
    }
}

/// One oracle violation on one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Flag {
    /// Which oracle fired.
    pub oracle: String,
    /// Human-readable evidence.
    pub detail: String,
}

/// The checked outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Cell index within the run (0 for replays).
    pub index: usize,
    /// The cell itself.
    pub cell: CellSpec,
    /// Replay token reproducing this cell from scratch.
    pub token: String,
    /// `true` when an exact analysis route covered the cell.
    pub tractable: bool,
    /// Analytic mean response time, when tractable.
    pub analysis_mean: Option<f64>,
    /// DES mean response time across replications.
    pub des_mean: f64,
    /// 95% CI half-width of the DES mean.
    pub ci_half_width: f64,
    /// Every oracle violation (empty = healthy cell).
    pub flags: Vec<Flag>,
    /// Shrunken variant, when the cell was flagged and shrinking ran:
    /// the simplest spec that still fails, plus evaluations spent.
    pub minimized: Option<(CellSpec, usize)>,
}

/// Aggregate result of [`fuzz_run`].
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The run seed.
    pub seed: u64,
    /// Per-cell outcomes, in cell order.
    pub cells: Vec<CellReport>,
    /// Cells with an exact analysis route.
    pub tractable: usize,
    /// Cells with at least one flag.
    pub flagged: usize,
    /// Total cell evaluations spent minimizing flagged cells.
    pub shrink_evals: usize,
}

/// Folds the full bit pattern of a replication set into one digest
/// (order-sensitive SplitMix64 chain — any single-bit difference in any
/// field of any report changes it).
pub fn reports_digest(reports: &[SimReport]) -> u64 {
    let mut acc: u64 = 0x0DD5_EED5_0F0F_A11E;
    let mut fold = |v: u64| {
        acc = SplitMix64 { state: acc ^ v }.next_u64();
    };
    for r in reports {
        fold(r.completed[0]);
        fold(r.completed[1]);
        fold(r.mean_response.to_bits());
        fold(r.total_response.to_bits());
        fold(r.mean_num_in_system.to_bits());
        fold(r.mean_work.to_bits());
        fold(r.utilization.to_bits());
        fold(r.measured_time.to_bits());
        fold(r.end_time.to_bits());
        fold(r.preemptions);
    }
    acc
}

/// Runs every oracle against one cell. `extra` oracles (optimizer,
/// serve-layer accounting, …) run after the built-in set, and only on
/// cells the built-ins left unflagged — a cell that already fails
/// analysis-vs-DES should shrink on that evidence, not on downstream
/// noise.
pub fn check_cell(
    index: usize,
    cell: &CellSpec,
    cfg: &FuzzConfig,
    extra: &[&dyn CellOracle],
) -> CellReport {
    // Per-oracle wall-clock spans (`fuzz.*`) when the obs layer is
    // enabled; verdicts and replay tokens are pure functions of the seed
    // and never read the telemetry.
    let mut cell_span = eirs_obs::span("fuzz.cell", "fuzz");
    cell_span.arg("index", index);
    cell_span.arg("seed", cell.seed);
    let token = replay_token(cell.seed);
    let mut report = CellReport {
        index,
        cell: cell.clone(),
        token,
        tractable: false,
        analysis_mean: None,
        des_mean: f64::NAN,
        ci_half_width: f64::NAN,
        flags: Vec::new(),
        minimized: None,
    };

    // Oracle: the generated specs must re-parse through the CLI parsers.
    let spec_span = eirs_obs::span("fuzz.spec-parse", "fuzz");
    let (workload, policy, params) = match cell.build() {
        Ok(built) => built,
        Err(e) => {
            report.flags.push(Flag {
                oracle: "spec-parse".into(),
                detail: e,
            });
            return report;
        }
    };

    drop(spec_span);
    let tractable = !matches!(
        workload.tractability(policy.as_ref(), &params),
        Tractability::Intractable
    );
    report.tractable = tractable;

    // Oracle: exact analysis must succeed on tractable cells.
    if tractable {
        let _span = eirs_obs::span("fuzz.analysis", "fuzz");
        match workload.analyze(policy.as_ref(), &params, &AnalyzeOptions::default()) {
            Ok(Some(a)) => report.analysis_mean = Some(a.mean_response),
            Ok(None) => {}
            Err(e) => report.flags.push(Flag {
                oracle: "analysis-error".into(),
                detail: e.to_string(),
            }),
        }
    }

    // CRN replication sets on 1 and 2 worker threads. Each replication
    // is a pure function of its seed, so the two runs must be
    // bit-identical — the workspace's parallel ≡ serial contract.
    let n = if workload.is_deterministic() {
        1
    } else {
        cfg.replications.max(2)
    };
    let run_set = |threads: usize| {
        run_replications_with_threads(cell.seed, n, threads, |seed| {
            workload.simulate(policy.as_ref(), &params, seed, cfg.warmup, cfg.departures)
        })
    };
    let des_span = eirs_obs::span("fuzz.digest-stability", "fuzz");
    let serial = run_set(1);
    let parallel = run_set(2);
    drop(des_span);
    let mut reports = Vec::with_capacity(n);
    for r in &serial {
        match r {
            Ok(rep) => reports.push(rep.clone()),
            Err(e) => {
                report.flags.push(Flag {
                    oracle: "run-error".into(),
                    detail: e.clone(),
                });
                return report;
            }
        }
    }
    let par_reports: Vec<SimReport> = parallel.into_iter().filter_map(Result::ok).collect();
    if par_reports.len() != reports.len()
        || reports_digest(&reports) != reports_digest(&par_reports)
    {
        report.flags.push(Flag {
            oracle: "digest-stability".into(),
            detail: format!(
                "replication digest differs across thread counts: \
                 0x{:016x} (1 thread) vs 0x{:016x} (2 threads)",
                reports_digest(&reports),
                reports_digest(&par_reports)
            ),
        });
    }

    // Analysis vs DES: CI containment with relative slack.
    if reports.len() >= 2 {
        let stats: ReplicationStats = reports.iter().map(|r| r.mean_response).collect();
        let ci = stats.confidence_interval();
        report.des_mean = ci.mean;
        report.ci_half_width = ci.half_width;
        if let Some(analysis) = report.analysis_mean {
            let rel = (analysis - ci.mean).abs() / analysis.abs().max(1e-12);
            if !ci.contains(analysis) && rel > cfg.rel_slack {
                report.flags.push(Flag {
                    oracle: "analysis-vs-des".into(),
                    detail: format!(
                        "analysis E[T]={analysis:.6} vs DES {:.6} ± {:.6} \
                         (relative error {:.2}%)",
                        ci.mean,
                        ci.half_width,
                        rel * 100.0
                    ),
                });
            }
        }
    } else if let Some(first) = reports.first() {
        report.des_mean = first.mean_response;
        report.ci_half_width = 0.0;
    }

    // Oracle: exact accounting on a finite drained prefix — every
    // recorded arrival must complete (`completions = arrivals`; the DES
    // never sheds). Churn is stripped for this check: a truncated fault
    // schedule can strand a drain mid-outage, which is a termination
    // artifact, not an accounting bug.
    let acct_span = eirs_obs::span("fuzz.accounting", "fuzz");
    if let Err(flag) = accounting_drain(cell, cfg) {
        report.flags.push(flag);
    }
    drop(acct_span);

    if report.flags.is_empty() {
        for oracle in extra {
            let _span = eirs_obs::span(format!("fuzz.oracle.{}", oracle.name()), "fuzz");
            if let Err(detail) = oracle.check(cell) {
                report.flags.push(Flag {
                    oracle: oracle.name().to_string(),
                    detail,
                });
            }
        }
    }
    report
}

fn accounting_drain(cell: &CellSpec, cfg: &FuzzConfig) -> Result<(), Flag> {
    let mut churnless = cell.clone();
    churnless.churn = None;
    let flag = |detail: String| Flag {
        oracle: "accounting".into(),
        detail,
    };
    let (workload, policy, params) = churnless.build().map_err(&flag)?;
    let horizon = workload.horizon_hint(&params, 0, cfg.accounting_arrivals as u64);
    let mut source = workload
        .build_source(&params, cell.seed ^ 0xACC0_0000, horizon)
        .map_err(&flag)?;
    let mut arrivals = Vec::with_capacity(cfg.accounting_arrivals);
    while arrivals.len() < cfg.accounting_arrivals {
        match source.next_arrival() {
            Some(a) => arrivals.push(a),
            None => break,
        }
    }
    let pulled = arrivals.len() as u64;
    let mut stream = ArrivalTrace::new(arrivals).into_stream();
    let drained = Simulation::new(DesConfig::drain(params.k)).run(policy.as_ref(), &mut stream);
    let completed = drained.completed[0] + drained.completed[1];
    if completed != pulled {
        return Err(flag(format!(
            "conservation broken: {pulled} arrivals drained to {completed} completions"
        )));
    }
    Ok(())
}

/// Ordered simplification candidates for one shrink step (first
/// applicable simplification wins; [`shrink_cell`] iterates to a fixed
/// point).
fn simpler_variants(cell: &CellSpec) -> Vec<CellSpec> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut CellSpec)| {
        let mut c = cell.clone();
        f(&mut c);
        if c != *cell {
            out.push(c);
        }
    };
    push(&|c| c.churn = None);
    push(&|c| c.arrivals = "poisson".into());
    push(&|c| c.service_i = "exp".into());
    push(&|c| c.service_e = "exp".into());
    push(&|c| c.k = 2);
    push(&|c| c.rho = 0.5);
    push(&|c| c.frac_i = 0.5);
    push(&|c| {
        c.mu_i = 1.0;
        c.mu_e = 1.0;
    });
    out
}

/// Greedily minimizes a flagged cell: repeatedly applies the first
/// simplification that still fails *some* oracle, until no
/// simplification fails. Returns the minimized cell and the number of
/// cell evaluations spent (each evaluation is a full oracle pass).
pub fn shrink_cell(
    cell: &CellSpec,
    cfg: &FuzzConfig,
    extra: &[&dyn CellOracle],
) -> (CellSpec, usize) {
    let mut current = cell.clone();
    let mut evals = 0usize;
    'outer: loop {
        for candidate in simpler_variants(&current) {
            evals += 1;
            if !check_cell(0, &candidate, cfg, extra).flags.is_empty() {
                current = candidate;
                continue 'outer;
            }
            if evals >= 64 {
                break 'outer;
            }
        }
        break;
    }
    (current, evals)
}

/// Runs the full fuzz sweep: `cfg.budget` cells derived from `cfg.seed`,
/// checked in parallel on `cfg.threads` workers (output is ordered and
/// thread-count-invariant), flagged cells minimized when `cfg.shrink`.
pub fn fuzz_run(cfg: &FuzzConfig, extra: &[&dyn CellOracle]) -> FuzzReport {
    let cells: Vec<(usize, CellSpec)> = (0..cfg.budget)
        .map(|i| (i, CellSpec::from_seed(cell_seed(cfg.seed, i as u64))))
        .collect();
    let mut reports: Vec<CellReport> = sweep_with_threads(&cells, cfg.threads.max(1), |(i, c)| {
        check_cell(*i, c, cfg, extra)
    });
    let mut shrink_evals = 0usize;
    if cfg.shrink {
        for report in reports.iter_mut().filter(|r| !r.flags.is_empty()) {
            let (minimized, evals) = shrink_cell(&report.cell, cfg, extra);
            shrink_evals += evals;
            report.minimized = Some((minimized, evals));
        }
    }
    let tractable = reports.iter().filter(|r| r.tractable).count();
    let flagged = reports.iter().filter(|r| !r.flags.is_empty()).count();
    FuzzReport {
        seed: cfg.seed,
        cells: reports,
        tractable,
        flagged,
        shrink_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FuzzConfig {
        FuzzConfig {
            budget: 6,
            seed: 11,
            shrink: false,
            replications: 3,
            departures: 600,
            warmup: 60,
            accounting_arrivals: 120,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn cell_derivation_is_a_pure_function_of_the_seed() {
        for i in 0..40u64 {
            let seed = cell_seed(7, i);
            let a = CellSpec::from_seed(seed);
            let b = CellSpec::from_seed(seed);
            assert_eq!(a, b);
            assert_eq!(a.render(), b.render());
        }
    }

    #[test]
    fn generated_specs_reparse_through_the_cli_parsers() {
        for i in 0..200u64 {
            let cell = CellSpec::from_seed(cell_seed(3, i));
            cell.build()
                .unwrap_or_else(|e| panic!("cell {i} '{cell}' failed to build: {e}"));
        }
    }

    #[test]
    fn replay_tokens_round_trip_and_reject_corruption() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let token = replay_token(seed);
            assert_eq!(parse_replay_token(&token).unwrap(), seed);
        }
        assert!(parse_replay_token("nonsense").is_err());
        assert!(parse_replay_token("0000000000000042-ffff").is_err());
        let mut token = replay_token(99);
        token.replace_range(0..1, "f");
        assert!(parse_replay_token(&token).is_err());
    }

    #[test]
    fn small_fuzz_run_is_clean_and_thread_invariant() {
        let cfg = small_cfg();
        let a = fuzz_run(&cfg, &[]);
        let cfg4 = FuzzConfig {
            threads: 4,
            ..small_cfg()
        };
        let b = fuzz_run(&cfg4, &[]);
        assert_eq!(a.cells.len(), cfg.budget);
        assert_eq!(a.flagged, 0, "flags: {:?}", flags_of(&a));
        assert_eq!(b.flagged, 0);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.cell, y.cell);
            assert_eq!(x.token, y.token);
            assert_eq!(x.des_mean.to_bits(), y.des_mean.to_bits());
            assert_eq!(
                x.analysis_mean.map(f64::to_bits),
                y.analysis_mean.map(f64::to_bits)
            );
        }
    }

    fn flags_of(r: &FuzzReport) -> Vec<(String, String, String)> {
        r.cells
            .iter()
            .flat_map(|c| {
                c.flags
                    .iter()
                    .map(|f| (c.token.clone(), f.oracle.clone(), f.detail.clone()))
            })
            .collect()
    }

    struct AlwaysFails;
    impl CellOracle for AlwaysFails {
        fn name(&self) -> &str {
            "always-fails"
        }
        fn check(&self, _cell: &CellSpec) -> Result<(), String> {
            Err("injected failure".into())
        }
    }

    #[test]
    fn injected_oracles_flag_and_shrink_to_the_trivial_cell() {
        let cfg = FuzzConfig {
            budget: 1,
            shrink: true,
            ..small_cfg()
        };
        let report = fuzz_run(&cfg, &[&AlwaysFails]);
        assert_eq!(report.flagged, 1);
        let cell = &report.cells[0];
        assert_eq!(cell.flags[0].oracle, "always-fails");
        let (minimized, evals) = cell.minimized.clone().expect("shrink ran");
        assert!(evals >= 1);
        assert!(report.shrink_evals >= evals);
        // An always-failing oracle shrinks all the way down.
        assert_eq!(minimized.arrivals, "poisson");
        assert_eq!(minimized.service_i, "exp");
        assert_eq!(minimized.service_e, "exp");
        assert_eq!(minimized.churn, None);
        assert_eq!(minimized.k, 2);
    }

    #[test]
    fn replayed_cell_reproduces_the_sweep_report_bitwise() {
        let cfg = small_cfg();
        let run = fuzz_run(&cfg, &[]);
        let probe = &run.cells[2];
        let seed = parse_replay_token(&probe.token).unwrap();
        let replayed = check_cell(0, &CellSpec::from_seed(seed), &cfg, &[]);
        assert_eq!(replayed.cell, probe.cell);
        assert_eq!(replayed.des_mean.to_bits(), probe.des_mean.to_bits());
        assert_eq!(
            replayed.analysis_mean.map(f64::to_bits),
            probe.analysis_mean.map(f64::to_bits)
        );
        assert!(replayed.flags.is_empty());
    }
}
