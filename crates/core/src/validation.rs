//! Analytic-vs-simulation validation (the paper's "our analytical results
//! match simulation … within 1%" claim, Section 5).
//!
//! Each validation point runs the state-level CTMC simulator (exact for the
//! Markovian model up to Monte-Carlo noise) against the busy-period-
//! transformation analysis and reports relative errors.

use crate::analysis::{analyze_elastic_first, analyze_inelastic_first, AnalysisError};
use crate::params::SystemParams;
use eirs_sim::ctmc::{simulate_state_level, CtmcSimConfig};
use eirs_sim::policy::{ElasticFirst, InelasticFirst};

/// Analytic and simulated mean response times for one parameter point.
#[derive(Debug, Clone, Copy)]
pub struct ValidationRow {
    /// Parameters of the point.
    pub params: SystemParams,
    /// Analytic `E[T]` under IF.
    pub analytic_if: f64,
    /// Simulated `E[T]` under IF.
    pub simulated_if: f64,
    /// Analytic `E[T]` under EF.
    pub analytic_ef: f64,
    /// Simulated `E[T]` under EF.
    pub simulated_ef: f64,
}

impl ValidationRow {
    /// `|analytic − simulated| / simulated` for IF.
    pub fn rel_err_if(&self) -> f64 {
        (self.analytic_if - self.simulated_if).abs() / self.simulated_if
    }

    /// `|analytic − simulated| / simulated` for EF.
    pub fn rel_err_ef(&self) -> f64 {
        (self.analytic_ef - self.simulated_ef).abs() / self.simulated_ef
    }
}

/// Runs one validation point with `jumps` post-warm-up CTMC transitions.
pub fn validate_point(
    params: &SystemParams,
    jumps: u64,
    seed: u64,
) -> Result<ValidationRow, AnalysisError> {
    let analytic_if = analyze_inelastic_first(params)?.mean_response;
    let analytic_ef = analyze_elastic_first(params)?.mean_response;
    let cfg = |s| CtmcSimConfig {
        k: params.k,
        lambda_i: params.lambda_i,
        lambda_e: params.lambda_e,
        mu_i: params.mu_i,
        mu_e: params.mu_e,
        jumps,
        warmup_jumps: jumps / 10,
        seed: s,
    };
    let simulated_if = simulate_state_level(&InelasticFirst, cfg(seed)).mean_response;
    let simulated_ef = simulate_state_level(&ElasticFirst, cfg(seed ^ 0x5EED)).mean_response;
    Ok(ValidationRow {
        params: *params,
        analytic_if,
        simulated_if,
        analytic_ef,
        simulated_ef,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_matches_simulation_at_moderate_load() {
        let p = SystemParams::with_equal_lambdas(4, 2.0, 1.0, 0.5).unwrap();
        let row = validate_point(&p, 3_000_000, 42).unwrap();
        assert!(row.rel_err_if() < 0.02, "IF rel err {}", row.rel_err_if());
        assert!(row.rel_err_ef() < 0.02, "EF rel err {}", row.rel_err_ef());
    }

    #[test]
    fn analysis_matches_simulation_in_ef_favored_regime() {
        let p = SystemParams::with_equal_lambdas(4, 0.5, 1.5, 0.7).unwrap();
        let row = validate_point(&p, 3_000_000, 7).unwrap();
        assert!(row.rel_err_if() < 0.03, "IF rel err {}", row.rel_err_if());
        assert!(row.rel_err_ef() < 0.03, "EF rel err {}", row.rel_err_ef());
    }
}
