//! # eirs-core — Optimal Resource Allocation for Elastic and Inelastic Jobs
//!
//! A faithful, from-scratch implementation of the system studied by
//! Berg, Harchol-Balter, Moseley, Wang & Whitehouse,
//! *"Optimal Resource Allocation for Elastic and Inelastic Jobs"*
//! (SPAA 2020, arXiv:2005.09745).
//!
//! The model: `k` identical unit-speed servers shared by two Poisson job
//! classes with exponentially distributed, unknown sizes. *Elastic* jobs
//! (rate `λ_E`, sizes `Exp(µ_E)`) parallelize linearly across any fractional
//! number of servers; *inelastic* jobs (rate `λ_I`, sizes `Exp(µ_I)`) use at
//! most one server. An allocation policy maps each state `(i, j)` to server
//! shares; the goal is minimal mean response time `E[T]`.
//!
//! What this crate provides:
//!
//! * [`params::SystemParams`] — the five model parameters with load and
//!   stability accounting (`ρ = λ_I/(kµ_I) + λ_E/(kµ_E) < 1`, Appendix C).
//! * [`policy`] — the shared policy layer: the [`AllocationPolicy`]
//!   trait (absorbed from `eirs_sim::policy`), every shipped family, the
//!   registry, and the CLI policy parser. Every substrate — analysis,
//!   simulation, MDP grid — is generic over this one abstraction.
//! * [`analysis`] — the paper's Section 5 / Appendix D response-time
//!   analysis, generalized: [`analysis::analyze_policy`] evaluates *any*
//!   allocation policy (strict-priority policies get the exact
//!   busy-period transformation — Coxian matched to three M/M/1
//!   busy-period moments, solved by matrix-analytic methods; everything
//!   else a truncated-phase QBD built from the allocation map). Accuracy
//!   vs simulation is ~1% or better (validated in the workspace
//!   integration tests and the `validation_table` / `policy_families`
//!   benches).
//! * [`counterexample`] — exact transient analysis behind Theorem 6:
//!   with `µ_I < µ_E`, EF can beat IF (35/12 vs 33/12 when `µ_E = 2µ_I`,
//!   `k = 2`, starting from two inelastic and one elastic job).
//! * [`experiments`] — parameterizations used by every figure of the paper
//!   (`λ_I = λ_E` chosen to pin the load ρ).
//! * [`sweep`] — the deterministic parallel sweep engine the experiment
//!   drivers fan out through (ordered, bit-identical to serial).
//! * [`validation`] — analytic-vs-simulation comparison harness.
//!
//! ## Quick start
//!
//! ```
//! use eirs_core::prelude::*;
//!
//! // k = 4 servers at load 0.5, inelastic jobs 4x smaller than elastic.
//! let params = SystemParams::with_equal_lambdas(4, 2.0, 0.5, 0.5).unwrap();
//! let mrt_if = analysis::analyze_inelastic_first(&params).unwrap();
//! let mrt_ef = analysis::analyze_elastic_first(&params).unwrap();
//! // µ_I ≥ µ_E: Theorem 5 says IF is optimal, so it beats EF.
//! assert!(mrt_if.mean_response < mrt_ef.mean_response);
//! ```

pub mod analysis;
pub mod counterexample;
pub mod experiments;
pub mod fuzz;
pub mod params;
pub mod policy;
pub mod scenario;
pub mod sweep;
pub mod validation;

pub use analysis::{
    analyze_elastic_first, analyze_inelastic_first, analyze_policy, analyze_policy_map,
    analyze_policy_map_warm, analyze_policy_warm, analyze_policy_with, AnalysisCache,
    AnalysisError, AnalyzeOptions, PolicyAnalysis,
};
pub use counterexample::{expected_total_response_closed, theorem6_values};
pub use fuzz::{CellOracle, CellReport, CellSpec, FuzzConfig, FuzzReport};
pub use params::SystemParams;
pub use policy::AllocationPolicy;
pub use scenario::{ArrivalSpec, ServiceSpec, Tractability, Workload};

/// Convenient glob import for downstream users.
pub mod prelude {
    pub use crate::analysis::{
        self, analyze_elastic_first, analyze_inelastic_first, analyze_policy, analyze_policy_with,
        AnalyzeOptions, PolicyAnalysis,
    };
    pub use crate::counterexample;
    pub use crate::experiments;
    pub use crate::params::SystemParams;
    pub use crate::policy::{
        AllocationPolicy, ClassAllocation, ElasticFirst, ElasticThresholdPolicy, FairShare,
        InelasticFirst, ReservePolicy, SwitchingCurvePolicy, TablePolicy, TabularPolicy,
        WeightedWaterFilling,
    };
    pub use crate::scenario::{self, ArrivalSpec, ServiceSpec, Tractability, Workload};
    pub use crate::validation;
}
