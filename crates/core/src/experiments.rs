//! Experiment parameterizations for every figure in the paper.
//!
//! All three figures fix the load `ρ` and set `λ_I = λ_E` (see the captions
//! of Figures 4–6), which [`SystemParams::with_equal_lambdas`] implements.
//! The sweep functions here return plain data that the bench harnesses in
//! `eirs-bench` format into the paper's rows/series.
//!
//! Every grid driver fans its points out through [`crate::sweep`], so the
//! hundreds of independent QBD solves behind a figure run on all cores;
//! each driver also keeps a `*_serial` twin (same code, one thread) whose
//! output the workspace tests require to be **bit-identical** to the
//! parallel path.

use crate::analysis::{
    analyze_elastic_first, analyze_elastic_first_warm, analyze_inelastic_first,
    analyze_inelastic_first_warm, AnalysisCache, AnalysisError,
};
use crate::params::SystemParams;
use crate::sweep;

/// Which policy wins a head-to-head mean-response-time comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Winner {
    /// Inelastic-First has strictly smaller `E[T]`.
    InelasticFirst,
    /// Elastic-First has strictly smaller `E[T]`.
    ElasticFirst,
    /// Within tie tolerance.
    Tie,
}

impl Winner {
    /// Single-character cell used in the heat-map rendering
    /// (`o` = IF, `+` = EF, `=` = tie), matching the paper's red-circle /
    /// blue-plus convention in Figure 4.
    pub fn cell(&self) -> char {
        match self {
            Winner::InelasticFirst => 'o',
            Winner::ElasticFirst => '+',
            Winner::Tie => '=',
        }
    }
}

/// One comparison point: both analyses plus the winner.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Parameters of the comparison.
    pub params: SystemParams,
    /// Mean response time under Inelastic-First.
    pub mrt_if: f64,
    /// Mean response time under Elastic-First.
    pub mrt_ef: f64,
    /// The winner at `tol = 1e-9` relative.
    pub winner: Winner,
}

/// Compares IF and EF analytically at `params`.
pub fn compare(params: &SystemParams) -> Result<Comparison, AnalysisError> {
    let a_if = analyze_inelastic_first(params)?;
    let a_ef = analyze_elastic_first(params)?;
    let (mrt_if, mrt_ef) = (a_if.mean_response, a_ef.mean_response);
    let winner = if (mrt_if - mrt_ef).abs() <= 1e-9 * mrt_if.max(mrt_ef) {
        Winner::Tie
    } else if mrt_if < mrt_ef {
        Winner::InelasticFirst
    } else {
        Winner::ElasticFirst
    };
    Ok(Comparison {
        params: *params,
        mrt_if,
        mrt_ef,
        winner,
    })
}

/// [`compare`] warm-started from `cache`: both the IF and EF chains seed
/// their R iterations from the previous call's solutions (each chain
/// shape has its own cache slot). For chains of nearby parameter points —
/// one row of a Figure 4 grid — this replaces most of the QBD iteration
/// work with a few refinement steps; results agree with [`compare`] to
/// the solver tolerance (asserted by the workspace property tests).
pub fn compare_warm(
    params: &SystemParams,
    cache: &mut AnalysisCache,
) -> Result<Comparison, AnalysisError> {
    let a_if = analyze_inelastic_first_warm(params, cache)?;
    let a_ef = analyze_elastic_first_warm(params, cache)?;
    let (mrt_if, mrt_ef) = (a_if.mean_response, a_ef.mean_response);
    let winner = if (mrt_if - mrt_ef).abs() <= 1e-9 * mrt_if.max(mrt_ef) {
        Winner::Tie
    } else if mrt_if < mrt_ef {
        Winner::InelasticFirst
    } else {
        Winner::ElasticFirst
    };
    Ok(Comparison {
        params: *params,
        mrt_if,
        mrt_ef,
        winner,
    })
}

/// The µ grid of Figure 4: `0.25, 0.50, …, 3.50`.
pub fn figure4_mu_grid() -> Vec<f64> {
    (1..=14).map(|i| i as f64 * 0.25).collect()
}

/// One cell of a Figure 4 heat map.
#[derive(Debug, Clone, Copy)]
pub struct HeatMapCell {
    /// Inelastic size rate.
    pub mu_i: f64,
    /// Elastic size rate.
    pub mu_e: f64,
    /// Comparison outcome.
    pub comparison: Comparison,
}

/// Computes one Figure 4 heat map: winner over the `(µ_I, µ_E)` grid at
/// fixed `k` and load `ρ` with `λ_I = λ_E`. The `grid.len()²` independent
/// QBD solves fan out over all cores.
pub fn figure4_heatmap(k: u32, rho: f64) -> Result<Vec<HeatMapCell>, AnalysisError> {
    figure4_heatmap_with_threads(k, rho, sweep::threads())
}

/// The serial reference path of [`figure4_heatmap`] (one thread, same
/// cell order). Used by the bit-identity property tests and the
/// `sweep_speedup` benchmark baseline.
pub fn figure4_heatmap_serial(k: u32, rho: f64) -> Result<Vec<HeatMapCell>, AnalysisError> {
    figure4_heatmap_with_threads(k, rho, 1)
}

/// [`figure4_heatmap`] with an explicit worker-thread count.
pub fn figure4_heatmap_with_threads(
    k: u32,
    rho: f64,
    threads: usize,
) -> Result<Vec<HeatMapCell>, AnalysisError> {
    let grid = figure4_mu_grid();
    let points: Vec<(f64, f64)> = grid
        .iter()
        .flat_map(|&mu_e| grid.iter().map(move |&mu_i| (mu_i, mu_e)))
        .collect();
    sweep::sweep_with_threads(&points, threads, |&(mu_i, mu_e)| {
        let params = SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho)
            .expect("grid parameters are stable by construction");
        Ok(HeatMapCell {
            mu_i,
            mu_e,
            comparison: compare(&params)?,
        })
    })
    .into_iter()
    .collect()
}

/// Warm-started Figure 4 heat map: same grid and cell order as
/// [`figure4_heatmap`], but each **row** (fixed `µ_E`, `µ_I` ascending) is
/// one scheduling unit carrying its own [`AnalysisCache`], so consecutive
/// cells seed their QBD solves from their left neighbor's R matrices.
/// Because the warm chain is confined to a row and each row's cache is
/// fresh, the cell→cell seeding order is a pure function of the row —
/// parallel output is bit-identical to serial no matter how rows are
/// scheduled onto workers.
pub fn figure4_heatmap_warm(k: u32, rho: f64) -> Result<Vec<HeatMapCell>, AnalysisError> {
    figure4_heatmap_warm_with_threads(k, rho, sweep::threads())
}

/// The serial reference path of [`figure4_heatmap_warm`].
pub fn figure4_heatmap_warm_serial(k: u32, rho: f64) -> Result<Vec<HeatMapCell>, AnalysisError> {
    figure4_heatmap_warm_with_threads(k, rho, 1)
}

/// [`figure4_heatmap_warm`] with an explicit worker-thread count.
pub fn figure4_heatmap_warm_with_threads(
    k: u32,
    rho: f64,
    threads: usize,
) -> Result<Vec<HeatMapCell>, AnalysisError> {
    let grid = figure4_mu_grid();
    let rows = sweep::sweep_with_threads(&grid, threads, |&mu_e| {
        let mut row_span = eirs_obs::span("figure4.row", "sweep");
        row_span.arg("mu_e", mu_e);
        let mut cache = AnalysisCache::default();
        grid.iter()
            .map(|&mu_i| {
                let mut cell_span = eirs_obs::span("figure4.cell", "sweep");
                cell_span.arg("mu_i", mu_i);
                cell_span.arg("mu_e", mu_e);
                let params = SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho)
                    .expect("grid parameters are stable by construction");
                Ok(HeatMapCell {
                    mu_i,
                    mu_e,
                    comparison: compare_warm(&params, &mut cache)?,
                })
            })
            .collect::<Result<Vec<_>, AnalysisError>>()
    });
    let mut cells = Vec::with_capacity(grid.len() * grid.len());
    for row in rows {
        cells.extend(row?);
    }
    Ok(cells)
}

/// One point of a Figure 5 curve.
#[derive(Debug, Clone, Copy)]
pub struct ResponseCurvePoint {
    /// Swept inelastic size rate.
    pub mu_i: f64,
    /// `E[T]` under IF.
    pub mrt_if: f64,
    /// `E[T]` under EF.
    pub mrt_ef: f64,
}

/// Computes one Figure 5 panel: `E[T]` under IF and EF as `µ_I` sweeps with
/// `µ_E = 1`, fixed `k` and `ρ`, `λ_I = λ_E`. Points fan out over all
/// cores.
pub fn figure5_response_curve(
    k: u32,
    rho: f64,
    mu_i_values: &[f64],
) -> Result<Vec<ResponseCurvePoint>, AnalysisError> {
    sweep::sweep(mu_i_values, |&mu_i| {
        let params =
            SystemParams::with_equal_lambdas(k, mu_i, 1.0, rho).expect("stable by construction");
        let c = compare(&params)?;
        Ok(ResponseCurvePoint {
            mu_i,
            mrt_if: c.mrt_if,
            mrt_ef: c.mrt_ef,
        })
    })
    .into_iter()
    .collect()
}

/// Original name of [`figure5_response_curve`], kept for callers.
pub fn figure5_curve(
    k: u32,
    rho: f64,
    mu_i_values: &[f64],
) -> Result<Vec<ResponseCurvePoint>, AnalysisError> {
    figure5_response_curve(k, rho, mu_i_values)
}

/// The default µ_I sweep of Figure 5: `0.1` to `3.5`.
pub fn figure5_mu_i_values() -> Vec<f64> {
    let mut v = vec![0.1, 0.15, 0.2];
    v.extend((1..=14).map(|i| i as f64 * 0.25));
    v
}

/// One point of a Figure 6 curve.
#[derive(Debug, Clone, Copy)]
pub struct ServerScalingPoint {
    /// Number of servers.
    pub k: u32,
    /// `E[T]` under IF.
    pub mrt_if: f64,
    /// `E[T]` under EF.
    pub mrt_ef: f64,
}

/// Computes one Figure 6 panel: `E[T]` under IF and EF as `k` grows at
/// constant load `ρ` and fixed `(µ_I, µ_E)`, `λ_I = λ_E`. Points fan out
/// over all cores.
pub fn figure6_server_scaling(
    ks: &[u32],
    rho: f64,
    mu_i: f64,
    mu_e: f64,
) -> Result<Vec<ServerScalingPoint>, AnalysisError> {
    sweep::sweep(ks, |&k| {
        let params =
            SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho).expect("stable by construction");
        let c = compare(&params)?;
        Ok(ServerScalingPoint {
            k,
            mrt_if: c.mrt_if,
            mrt_ef: c.mrt_ef,
        })
    })
    .into_iter()
    .collect()
}

/// Original name of [`figure6_server_scaling`], kept for callers.
pub fn figure6_curve(
    ks: &[u32],
    rho: f64,
    mu_i: f64,
    mu_e: f64,
) -> Result<Vec<ServerScalingPoint>, AnalysisError> {
    figure6_server_scaling(ks, rho, mu_i, mu_e)
}

/// One point of a policy-family sweep: a policy evaluated analytically at
/// one parameter point.
#[derive(Debug, Clone, Copy)]
pub struct PolicySweepPoint {
    /// Parameters of the point.
    pub params: SystemParams,
    /// The policy's analytic evaluation at those parameters.
    pub analysis: crate::analysis::PolicyAnalysis,
}

/// Evaluates `policy` analytically over a parameter grid, fanning the
/// independent QBD solves out through the parallel sweep engine exactly
/// like the figure drivers. This is the substrate the `eirs policy`
/// subcommand and the `policy_families` bench share.
pub fn policy_sweep(
    policy: &dyn eirs_sim::policy::AllocationPolicy,
    points: &[SystemParams],
    opts: &crate::analysis::AnalyzeOptions,
) -> Result<Vec<PolicySweepPoint>, AnalysisError> {
    policy_sweep_with_threads(policy, points, opts, sweep::threads())
}

/// [`policy_sweep`] with an explicit worker-thread count (`threads = 1`
/// is the serial reference path, bit-identical to the parallel one).
pub fn policy_sweep_with_threads(
    policy: &dyn eirs_sim::policy::AllocationPolicy,
    points: &[SystemParams],
    opts: &crate::analysis::AnalyzeOptions,
    threads: usize,
) -> Result<Vec<PolicySweepPoint>, AnalysisError> {
    sweep::sweep_with_threads(points, threads, |params| {
        Ok(PolicySweepPoint {
            params: *params,
            analysis: crate::analysis::analyze_policy_with(policy, params, opts)?,
        })
    })
    .into_iter()
    .collect()
}

/// One point of a scenario sweep: a `(workload, policy)` pair evaluated
/// by DES replications and — when tractable — by the matching analytic
/// chain.
#[derive(Debug, Clone)]
pub struct ScenarioSweepPoint {
    /// Workload name.
    pub workload: String,
    /// Policy display name.
    pub policy: String,
    /// Parameters of the point.
    pub params: SystemParams,
    /// Which analytic route applied.
    pub tractability: crate::scenario::Tractability,
    /// Analytic mean response time, when tractable.
    pub analysis_mean_response: Option<f64>,
    /// Replication mean of the DES mean response time.
    pub des_mean_response: f64,
    /// 95% CI half-width across replications (`0.0` for deterministic
    /// trace-replay workloads, which run a single exact replication).
    pub des_ci_half_width: f64,
    /// How many DES replications actually ran (`1` for deterministic
    /// trace replay, `cfg.replications` otherwise).
    pub des_replications: usize,
    /// Whether the analysis landed inside the DES replication CI
    /// (`None` when intractable).
    pub analysis_inside_ci: Option<bool>,
}

/// Configuration of a [`scenario_sweep`].
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSweepConfig {
    /// DES replications per `(workload, policy)` pair (`≥ 2` for a CI).
    pub replications: usize,
    /// Measured departures per replication.
    pub departures: u64,
    /// Warm-up departures per replication.
    pub warmup: u64,
    /// Base seed; each pair derives decorrelated replication streams.
    pub base_seed: u64,
}

impl Default for ScenarioSweepConfig {
    fn default() -> Self {
        Self {
            replications: 8,
            departures: 100_000,
            warmup: 10_000,
            base_seed: 42,
        }
    }
}

/// Evaluates every `(workload, policy)` pair on the DES (replications with
/// a 95% CI) and, where tractable, on the matching analytic chain —
/// fanning the pairs out through the parallel sweep engine. This is the
/// substrate the `eirs scenario` subcommand and the `workload_scenarios`
/// bench share.
pub fn scenario_sweep(
    workloads: &[crate::scenario::Workload],
    policies: &[Box<dyn eirs_sim::policy::AllocationPolicy>],
    params: &SystemParams,
    opts: &crate::analysis::AnalyzeOptions,
    cfg: &ScenarioSweepConfig,
) -> Result<Vec<ScenarioSweepPoint>, String> {
    scenario_sweep_with_threads(workloads, policies, params, opts, cfg, sweep::threads())
}

/// [`scenario_sweep`] with an explicit worker-thread count (`threads = 1`
/// is the serial reference path, bit-identical to the parallel one).
pub fn scenario_sweep_with_threads(
    workloads: &[crate::scenario::Workload],
    policies: &[Box<dyn eirs_sim::policy::AllocationPolicy>],
    params: &SystemParams,
    opts: &crate::analysis::AnalyzeOptions,
    cfg: &ScenarioSweepConfig,
    threads: usize,
) -> Result<Vec<ScenarioSweepPoint>, String> {
    assert!(cfg.replications >= 2, "confidence intervals need >= 2 reps");
    let pairs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..policies.len()).map(move |p| (w, p)))
        .collect();
    sweep::sweep_with_threads(&pairs, threads, |&(wi, pi)| {
        let workload = &workloads[wi];
        let policy = policies[pi].as_ref();
        // Decorrelate pairs without coupling their replication streams.
        let pair_seed = cfg.base_seed.wrapping_add(
            0x9e37_79b9_7f4a_7c15u64.wrapping_mul((wi * policies.len() + pi) as u64 + 1),
        );
        let reports = workload.replications(
            policy,
            params,
            pair_seed,
            cfg.replications,
            cfg.warmup,
            cfg.departures,
        )?;
        // Deterministic workloads (external trace replay) return a single
        // report: its value is exact for that trace, so the "interval" is
        // the point itself rather than a fabricated spread.
        let ci = if reports.len() >= 2 {
            let stats: eirs_sim::stats::ReplicationStats =
                reports.iter().map(|r| r.mean_response).collect();
            stats.confidence_interval()
        } else {
            eirs_sim::stats::ConfidenceInterval {
                mean: reports[0].mean_response,
                half_width: 0.0,
            }
        };
        let tractability = workload.tractability(policy, params);
        let analysis = workload
            .analyze(policy, params, opts)
            .map_err(|e| format!("{}/{}: {e}", workload.name, policy.name()))?;
        let analysis_mean_response = analysis.map(|a| a.mean_response);
        let analysis_inside_ci =
            analysis_mean_response.map(|m| (m - ci.mean).abs() <= ci.half_width);
        Ok(ScenarioSweepPoint {
            workload: workload.name.clone(),
            policy: policy.name(),
            params: *params,
            tractability,
            analysis_mean_response,
            des_mean_response: ci.mean,
            des_ci_half_width: ci.half_width,
            des_replications: reports.len(),
            analysis_inside_ci,
        })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_figure4_axes() {
        let g = figure4_mu_grid();
        assert_eq!(g.len(), 14);
        assert!((g[0] - 0.25).abs() < 1e-12);
        assert!((g[13] - 3.5).abs() < 1e-12);
    }

    #[test]
    fn comparison_agrees_with_theorem5_on_the_diagonal_and_right() {
        // µ_I ≥ µ_E ⇒ IF wins (or ties) — Theorem 5.
        for (mu_i, mu_e) in [(1.0, 1.0), (2.0, 1.0), (3.0, 0.5)] {
            let p = SystemParams::with_equal_lambdas(4, mu_i, mu_e, 0.7).unwrap();
            let c = compare(&p).unwrap();
            assert_ne!(c.winner, Winner::ElasticFirst, "({mu_i},{mu_e}): {c:?}");
        }
    }

    #[test]
    fn ef_region_exists_at_high_load() {
        // Figure 4c: for µ_I ≪ µ_E and ρ = 0.9, EF wins.
        let p = SystemParams::with_equal_lambdas(4, 0.25, 2.0, 0.9).unwrap();
        let c = compare(&p).unwrap();
        assert_eq!(c.winner, Winner::ElasticFirst);
    }

    #[test]
    fn figure5_points_are_monotone_decreasing_in_mu_i_for_if() {
        // Larger µ_I (smaller inelastic jobs) reduces E[T] under IF.
        let pts = figure5_curve(4, 0.5, &[0.5, 1.0, 2.0, 3.0]).unwrap();
        for w in pts.windows(2) {
            assert!(w[1].mrt_if < w[0].mrt_if + 1e-9);
        }
    }

    #[test]
    fn figure6_curves_cover_all_k() {
        let ks: Vec<u32> = (2..=16).step_by(2).collect();
        let pts = figure6_curve(&ks, 0.9, 3.25, 1.0).unwrap();
        assert_eq!(pts.len(), ks.len());
        for p in &pts {
            assert!(
                p.mrt_if <= p.mrt_ef,
                "IF should win at µ_I=3.25 (k={})",
                p.k
            );
        }
    }

    #[test]
    fn policy_sweep_matches_pointwise_analysis_and_is_deterministic() {
        use crate::analysis::{analyze_policy_with, AnalyzeOptions};
        use eirs_sim::policy::ElasticThresholdPolicy;

        let policy = ElasticThresholdPolicy { threshold: 3 };
        let opts = AnalyzeOptions {
            phase_cap: 24,
            ..AnalyzeOptions::default()
        };
        let points: Vec<SystemParams> = [0.3, 0.5, 0.6]
            .iter()
            .map(|&rho| SystemParams::with_equal_lambdas(3, 0.5, 1.0, rho).unwrap())
            .collect();
        let parallel = policy_sweep_with_threads(&policy, &points, &opts, 4).unwrap();
        let serial = policy_sweep_with_threads(&policy, &points, &opts, 1).unwrap();
        assert_eq!(parallel.len(), points.len());
        for ((par, ser), params) in parallel.iter().zip(&serial).zip(&points) {
            let direct = analyze_policy_with(&policy, params, &opts).unwrap();
            assert_eq!(
                par.analysis.mean_response.to_bits(),
                direct.mean_response.to_bits()
            );
            assert_eq!(
                par.analysis.mean_response.to_bits(),
                ser.analysis.mean_response.to_bits()
            );
        }
    }

    #[test]
    fn scenario_sweep_is_deterministic_and_covers_the_grid() {
        use crate::policy::parse_policy;
        use crate::scenario::{registry, Tractability};

        let params = SystemParams::with_equal_lambdas(3, 0.5, 1.0, 0.5).unwrap();
        let workloads: Vec<_> = registry()
            .into_iter()
            .filter(|w| ["poisson", "bursty"].contains(&w.name.as_str()))
            .collect();
        let policies: Vec<_> = ["if", "fairshare"]
            .iter()
            .map(|s| parse_policy(s).unwrap())
            .collect();
        let opts = crate::analysis::AnalyzeOptions {
            phase_cap: 24,
            ..Default::default()
        };
        let cfg = ScenarioSweepConfig {
            replications: 3,
            departures: 3_000,
            warmup: 300,
            base_seed: 7,
        };
        let run = |threads| {
            scenario_sweep_with_threads(&workloads, &policies, &params, &opts, &cfg, threads)
                .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.workload, p.workload);
            assert_eq!(s.policy, p.policy);
            assert_eq!(
                s.des_mean_response.to_bits(),
                p.des_mean_response.to_bits(),
                "{}/{} diverged across thread counts",
                s.workload,
                s.policy
            );
        }
        for pt in &serial {
            match pt.workload.as_str() {
                "poisson" => {
                    assert_eq!(pt.tractability, Tractability::PoissonExp);
                    assert!(pt.analysis_mean_response.is_some());
                }
                "bursty" => {
                    assert_eq!(pt.tractability, Tractability::Intractable);
                    assert!(pt.analysis_mean_response.is_none());
                    assert!(pt.analysis_inside_ci.is_none());
                }
                other => panic!("unexpected workload {other}"),
            }
            assert!(pt.des_mean_response.is_finite() && pt.des_ci_half_width >= 0.0);
        }
    }

    #[test]
    fn winner_cells_render() {
        assert_eq!(Winner::InelasticFirst.cell(), 'o');
        assert_eq!(Winner::ElasticFirst.cell(), '+');
        assert_eq!(Winner::Tie.cell(), '=');
    }
}
