//! The workload scenario engine: arrival processes × service
//! distributions, beyond the paper's Poisson/exponential model.
//!
//! The paper's stochastic model (Section 2) fixes Poisson arrivals and
//! exponential sizes. Its optimality proofs for IF are sample-path
//! arguments that never use those assumptions, and real clusters see
//! bursty, correlated, trace-driven traffic — so this module turns
//! "arrivals" and "service" into first-class, swappable axes:
//!
//! * [`ArrivalSpec`] — Poisson, Markov-modulated (MAP/MMPP-2), batch
//!   ("bursty"), self-recorded trace replay, or a trace file on disk;
//! * [`ServiceSpec`] — exponential, Erlang, balanced hyperexponential
//!   (phase-type shapes), or deterministic, normalized to the mean sizes
//!   `1/µ_I`, `1/µ_E` of a [`SystemParams`];
//! * [`Workload`] — one arrival process plus per-class service shapes,
//!   with everything scaled so the offered load matches `params` exactly —
//!   optionally composed with a **capacity-churn axis**
//!   ([`Workload::churned`], the CLI's `--churn`): a seeded
//!   [`FaultSpec`] availability process (crash/repair, maintenance
//!   drains, MMPP-modulated reclamations) the DES replays as
//!   capacity-change events, orthogonal to every arrival × service
//!   combination. Churned workloads are simulation-only (no analytic
//!   chain models the time-varying capacity).
//!
//! A workload runs on **every substrate** the policy layer reaches:
//! [`Workload::build_source`] feeds the discrete-event simulator, and
//! [`Workload::analyze`] routes analytically tractable combinations to the
//! matching chain — the policy-generic QBD for Poisson×exponential
//! ([`crate::analysis::analyze_policy_with`]), the MAP-phase-extended QBD
//! for MAP×exponential ([`crate::analysis::analyze_policy_map`]), and the
//! classical MAP/PH/1 chain (`eirs_markov::Qbd::map_ph1`) for elastic-only
//! traffic with phase-type service. [`Workload::tractability`] reports
//! which route applies; everything else is simulation-only.
//!
//! The module mirrors the policy layer's ergonomics: a [`registry`] of
//! shipped scenario families, spec parsers ([`parse_arrivals`],
//! [`parse_service`], [`parse_workload`]) for the `eirs scenario` CLI
//! subcommand, and the `experiments::scenario_sweep` parallel driver plus
//! the `workload_scenarios` bench that records analysis-vs-DES agreement
//! into `BENCH_workload_scenarios.json`.

use crate::analysis::{
    analyze_policy_map, analyze_policy_with, AnalysisError, AnalyzeOptions, PolicyAnalysis,
};
use crate::params::SystemParams;
use eirs_markov::Qbd;
use eirs_queueing::{
    Deterministic, Erlang, Exponential, HyperExponential, MapProcess, PhaseType, SizeDistribution,
};
use eirs_sim::arrivals::{ArrivalSource, ArrivalTrace, BurstyStream, MapStream, PoissonStream};
use eirs_sim::availability::FaultSpec;
use eirs_sim::des::{DesConfig, SimReport, Simulation};
use eirs_sim::policy::AllocationPolicy;
use eirs_sim::replicate::run_replications_with_threads;

/// The arrival-process axis of a workload, as a *shape*: every variant is
/// rescaled at build time so its stationary job rate is `λ_I + λ_E`.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Two independent Poisson streams — the paper's model.
    Poisson,
    /// Markov-modulated Poisson (a 2-phase MAP): the phase flips
    /// `0 ↔ 1` at rates `r01`/`r10` and arrivals are Poisson at the
    /// *relative* intensities `a0`/`a1` (rescaled to the target rate).
    Mmpp {
        /// Phase `0 → 1` modulation rate.
        r01: f64,
        /// Phase `1 → 0` modulation rate.
        r10: f64,
        /// Relative arrival intensity in phase 0.
        a0: f64,
        /// Relative arrival intensity in phase 1.
        a1: f64,
    },
    /// Batch-Poisson bursts: geometric burst sizes with this mean.
    Bursty {
        /// Mean jobs per burst (`> 1`).
        mean_burst: f64,
    },
    /// Record a Poisson stream to the trace **file format**, parse it
    /// back, and replay it — exercises the whole trace path while staying
    /// statistically Poisson (and therefore analytically tractable).
    ReplayedPoisson,
    /// Replay a trace file from disk verbatim (rates and sizes come from
    /// the file; `params` rates are ignored).
    TraceFile {
        /// Path to a `time class size` trace file.
        path: std::path::PathBuf,
    },
}

impl ArrivalSpec {
    /// Short spec string (inverse of [`parse_arrivals`]).
    pub fn label(&self) -> String {
        match self {
            ArrivalSpec::Poisson => "poisson".into(),
            ArrivalSpec::Mmpp { r01, r10, a0, a1 } => format!("map:{r01}x{r10}x{a0}x{a1}"),
            ArrivalSpec::Bursty { mean_burst } => format!("bursty:{mean_burst}"),
            ArrivalSpec::ReplayedPoisson => "trace".into(),
            ArrivalSpec::TraceFile { path } => format!("trace:{}", path.display()),
        }
    }
}

/// The service-distribution axis of a workload: a *shape* whose mean is
/// pinned to `1/µ` when built against a [`SystemParams`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceSpec {
    /// Exponential — the paper's model (CV² = 1).
    Exponential,
    /// Erlang with this many stages (CV² = 1/stages < 1).
    Erlang {
        /// Number of stages (`≥ 1`).
        stages: u32,
    },
    /// Balanced two-branch hyperexponential with this CV² (`≥ 1`).
    HyperExp {
        /// Squared coefficient of variation.
        cv2: f64,
    },
    /// Deterministic (point mass; CV² = 0, not phase-type).
    Deterministic,
}

impl ServiceSpec {
    /// Builds the size distribution with mean `1/mu`.
    pub fn build(&self, mu: f64) -> Box<dyn SizeDistribution> {
        assert!(mu > 0.0 && mu.is_finite());
        match self {
            ServiceSpec::Exponential => Box::new(Exponential::new(mu)),
            ServiceSpec::Erlang { stages } => Box::new(Erlang::new(*stages, *stages as f64 * mu)),
            ServiceSpec::HyperExp { cv2 } => Box::new(HyperExponential::balanced(1.0 / mu, *cv2)),
            ServiceSpec::Deterministic => Box::new(Deterministic::new(1.0 / mu)),
        }
    }

    /// The same shape as a phase-type distribution (mean `1/mu`), when it
    /// is one. `None` for deterministic service.
    pub fn phase_type(&self, mu: f64) -> Option<PhaseType> {
        match self {
            ServiceSpec::Exponential => Some(PhaseType::exponential(mu)),
            ServiceSpec::Erlang { stages } => {
                Some(PhaseType::erlang(*stages as usize, *stages as f64 * mu))
            }
            ServiceSpec::HyperExp { cv2 } => {
                let h = HyperExponential::balanced(1.0 / mu, *cv2);
                Some(ph_from_hyper(&h))
            }
            ServiceSpec::Deterministic => None,
        }
    }

    /// Short spec string (inverse of [`parse_service`]).
    pub fn label(&self) -> String {
        match self {
            ServiceSpec::Exponential => "exp".into(),
            ServiceSpec::Erlang { stages } => format!("erlang:{stages}"),
            ServiceSpec::HyperExp { cv2 } => format!("hyper:{cv2}"),
            ServiceSpec::Deterministic => "det".into(),
        }
    }
}

fn ph_from_hyper(h: &HyperExponential) -> PhaseType {
    // A balanced hyperexponential is a parallel PH; rebuild it from the
    // mixture parameters rather than adding accessors to the distribution.
    let m = h.moments();
    // Invert the balanced-means parameterization from (mean, cv2).
    let cv2 = m.cv2();
    let mean = m.m1;
    if (cv2 - 1.0).abs() < 1e-12 {
        return PhaseType::exponential(1.0 / mean);
    }
    let p1 = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
    let p2 = 1.0 - p1;
    PhaseType::hyperexponential(&[p1, p2], &[2.0 * p1 / mean, 2.0 * p2 / mean])
}

/// One workload: an arrival process shape plus per-class service shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Display name (registry name or derived from the specs).
    pub name: String,
    /// Arrival-process shape.
    pub arrivals: ArrivalSpec,
    /// Inelastic service shape (mean pinned to `1/µ_I`).
    pub service_i: ServiceSpec,
    /// Elastic service shape (mean pinned to `1/µ_E`).
    pub service_e: ServiceSpec,
    /// Capacity-churn shape, if any. Seeded per run in
    /// [`Workload::simulate`] (decorrelated replications get different
    /// fault sample paths, like arrivals).
    pub churn: Option<FaultSpec>,
}

/// Which analytic route evaluates a `(workload, policy)` pair exactly
/// (up to the documented truncations); see [`Workload::tractability`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tractability {
    /// Poisson × exponential: the policy-generic QBD analysis
    /// ([`crate::analysis::analyze_policy_with`]).
    PoissonExp,
    /// MAP × exponential: the MAP-phase-extended QBD
    /// ([`crate::analysis::analyze_policy_map`]).
    MapExp,
    /// Elastic-only traffic with phase-type service under a policy that
    /// devotes the whole cluster to the elastic head-of-line job: the
    /// classical MAP/PH/1 chain at service speed `k`.
    MapPh1,
    /// No analytic route — simulation only.
    Intractable,
}

impl Workload {
    /// A workload from explicit parts, named after its specs.
    pub fn new(arrivals: ArrivalSpec, service_i: ServiceSpec, service_e: ServiceSpec) -> Self {
        let name = format!(
            "{}/{}+{}",
            arrivals.label(),
            service_i.label(),
            service_e.label()
        );
        Self {
            name,
            arrivals,
            service_i,
            service_e,
            churn: None,
        }
    }

    /// The same workload under a registry name.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.into();
        self
    }

    /// Composes a capacity-churn axis onto this workload: the DES will
    /// replay a seeded availability process for `spec` alongside the
    /// arrivals. The name gains a `+<churn label>` suffix.
    pub fn churned(mut self, spec: FaultSpec) -> Self {
        self.name = format!("{}+{}", self.name, spec.label());
        self.churn = Some(spec);
        self
    }

    /// Builds the arrival source feeding the DES. `horizon_hint` bounds
    /// how much simulated time the caller will consume (recorded-trace
    /// variants must pre-generate at least that much; live streams ignore
    /// it).
    pub fn build_source(
        &self,
        params: &SystemParams,
        seed: u64,
        horizon_hint: f64,
    ) -> Result<Box<dyn ArrivalSource>, String> {
        let total = params.total_lambda();
        let frac_i = params.lambda_i / total;
        let size_i = || self.service_i.build(params.mu_i);
        let size_e = || self.service_e.build(params.mu_e);
        match &self.arrivals {
            ArrivalSpec::Poisson => Ok(Box::new(PoissonStream::new(
                params.lambda_i,
                params.lambda_e,
                size_i(),
                size_e(),
                seed,
            ))),
            ArrivalSpec::Mmpp { r01, r10, a0, a1 } => {
                let map = MapProcess::mmpp2(*r01, *r10, *a0, *a1).scaled_to_rate(total);
                Ok(Box::new(MapStream::new(
                    map,
                    frac_i,
                    size_i(),
                    size_e(),
                    seed,
                )))
            }
            ArrivalSpec::Bursty { mean_burst } => Ok(Box::new(BurstyStream::new(
                total / mean_burst,
                1.0 - 1.0 / mean_burst,
                frac_i,
                size_i(),
                size_e(),
                seed,
            ))),
            ArrivalSpec::ReplayedPoisson => {
                // Record → serialize → parse → replay, so the production
                // trace file format sits in the loop.
                let trace = ArrivalTrace::record_poisson(
                    params.lambda_i,
                    params.lambda_e,
                    size_i(),
                    size_e(),
                    seed,
                    horizon_hint,
                );
                let mut buf = Vec::new();
                trace.to_writer(&mut buf).map_err(|e| e.to_string())?;
                let parsed = ArrivalTrace::from_reader(&mut std::io::Cursor::new(buf))
                    .map_err(|e| e.to_string())?;
                debug_assert_eq!(parsed, trace, "trace file round trip must be lossless");
                Ok(Box::new(parsed.into_stream()))
            }
            ArrivalSpec::TraceFile { path } => {
                // Format-sniffing loader: binary traces stream through a
                // bounded-memory chunked reader, text traces load whole.
                if eirs_sim::trace::sniff_binary(path).map_err(|e| e.to_string())? {
                    let reader = eirs_sim::trace::BinaryTraceReader::open(path)
                        .map_err(|e| e.to_string())?;
                    if reader.is_empty() {
                        return Err(format!("trace {} has no arrivals", path.display()));
                    }
                    return Ok(Box::new(reader));
                }
                let trace = ArrivalTrace::load(path).map_err(|e| e.to_string())?;
                if trace.is_empty() {
                    return Err(format!("trace {} has no arrivals", path.display()));
                }
                Ok(Box::new(trace.into_stream()))
            }
        }
    }

    /// The effective MAP driving this workload's arrivals, when there is
    /// one (Poisson is the one-phase case; bursty and trace replay are not
    /// MAPs).
    fn effective_map(&self, params: &SystemParams) -> Option<MapProcess> {
        let total = params.total_lambda();
        match &self.arrivals {
            ArrivalSpec::Poisson | ArrivalSpec::ReplayedPoisson => Some(MapProcess::poisson(total)),
            ArrivalSpec::Mmpp { r01, r10, a0, a1 } => {
                Some(MapProcess::mmpp2(*r01, *r10, *a0, *a1).scaled_to_rate(total))
            }
            ArrivalSpec::Bursty { .. } | ArrivalSpec::TraceFile { .. } => None,
        }
    }

    /// `true` when the workload replays a fixed external trace: every
    /// simulation of it is the same sample path regardless of the seed,
    /// so replication confidence intervals are meaningless for it. A
    /// churn axis makes even a fixed trace seed-dependent again (the
    /// fault schedule is seeded).
    pub fn is_deterministic(&self) -> bool {
        matches!(self.arrivals, ArrivalSpec::TraceFile { .. }) && self.churn.is_none()
    }

    /// Classifies which analytic route evaluates this workload under
    /// `policy` (see [`Tractability`]). Anything not recognized as
    /// tractable reports [`Tractability::Intractable`]. Like the policy
    /// structure detection in `analysis`, the elastic-only check *probes*
    /// the allocation map on a finite window — a policy that hands the
    /// whole cluster to the elastic class inside the window but throttles
    /// it beyond is misclassified; such policies should be evaluated by
    /// simulation (ignore the analysis column).
    pub fn tractability(
        &self,
        policy: &dyn AllocationPolicy,
        params: &SystemParams,
    ) -> Tractability {
        if self.churn.is_some() {
            // Time-varying capacity: none of the fixed-k chains apply.
            return Tractability::Intractable;
        }
        let exp_service = |spec: &ServiceSpec| matches!(spec, ServiceSpec::Exponential);
        let both_exp = (params.lambda_i == 0.0 || exp_service(&self.service_i))
            && (params.lambda_e == 0.0 || exp_service(&self.service_e));
        match &self.arrivals {
            ArrivalSpec::Poisson | ArrivalSpec::ReplayedPoisson => {
                if both_exp {
                    return Tractability::PoissonExp;
                }
            }
            ArrivalSpec::Mmpp { .. } => {
                if both_exp {
                    return Tractability::MapExp;
                }
            }
            ArrivalSpec::Bursty { .. } | ArrivalSpec::TraceFile { .. } => {
                return Tractability::Intractable;
            }
        }
        // Elastic-only phase-type service: MAP/PH/1 at speed k, provided
        // the policy gives the whole cluster to the elastic class.
        if params.lambda_i == 0.0
            && self.service_e.phase_type(params.mu_e).is_some()
            && self.effective_map(params).is_some()
            && elastic_gets_everything(policy, params.k)
        {
            return Tractability::MapPh1;
        }
        Tractability::Intractable
    }

    /// Analytic mean response times for this workload under `policy`, or
    /// `None` when no exact chain applies (see [`Workload::tractability`]).
    pub fn analyze(
        &self,
        policy: &dyn AllocationPolicy,
        params: &SystemParams,
        opts: &AnalyzeOptions,
    ) -> Result<Option<PolicyAnalysis>, AnalysisError> {
        match self.tractability(policy, params) {
            Tractability::PoissonExp => analyze_policy_with(policy, params, opts).map(Some),
            Tractability::MapExp => {
                let map = self
                    .effective_map(params)
                    .expect("MapExp implies an effective MAP");
                analyze_policy_map(policy, params, &map, opts).map(Some)
            }
            Tractability::MapPh1 => {
                let map = self
                    .effective_map(params)
                    .expect("MapPh1 implies an effective MAP");
                let ph = self
                    .service_e
                    .phase_type(params.mu_e)
                    .expect("MapPh1 implies phase-type service")
                    .time_scaled(params.k as f64);
                let qbd = Qbd::map_ph1(
                    map.d0(),
                    map.d1(),
                    ph.initial_distribution(),
                    ph.sub_generator(),
                )
                .map_err(AnalysisError::Qbd)?;
                let sol = qbd.solve().map_err(AnalysisError::Qbd)?;
                Ok(Some(PolicyAnalysis::from_class_means(
                    params,
                    0.0,
                    sol.mean_level(),
                )))
            }
            Tractability::Intractable => Ok(None),
        }
    }

    /// Simulated-time horizon an arrival source must cover for a
    /// steady-state run of `warmup + departures` departures: 1.4× the
    /// expected duration plus slack, so exhaustion of a recorded trace is
    /// a rare tail event. [`Workload::simulate`] sizes its sources with
    /// this; external paired-comparison drivers (the `eirs_opt`
    /// certification) must use the same formula or their sources run dry
    /// where plain simulation would not.
    pub fn horizon_hint(&self, params: &SystemParams, warmup: u64, departures: u64) -> f64 {
        1.4 * (warmup + departures) as f64 / params.total_lambda() + 100.0
    }

    /// One steady-state DES run of this workload under `policy`. Errors
    /// when the arrival source is exhausted before delivering the
    /// requested measurement window (a trace file that is too short), so
    /// a truncated run is never silently reported as a full one.
    pub fn simulate(
        &self,
        policy: &dyn AllocationPolicy,
        params: &SystemParams,
        seed: u64,
        warmup: u64,
        departures: u64,
    ) -> Result<SimReport, String> {
        let horizon = self.horizon_hint(params, warmup, departures);
        let mut source = self.build_source(params, seed, horizon)?;
        let mut sim = Simulation::new(DesConfig::steady_state(params.k, warmup, departures));
        if let Some(spec) = &self.churn {
            // The fault schedule shares the run seed, so replications
            // decorrelate faults exactly like arrivals; it covers the
            // same horizon the source is sized for.
            sim = sim.with_faults(&spec.schedule(params.k, seed, horizon));
        }
        let report = sim.run(policy, source.as_mut());
        let measured = report.completed[0] + report.completed[1];
        if measured < departures {
            return Err(format!(
                "arrival source exhausted after {measured} of {departures} measured departures \
                 (trace too short for warmup {warmup} + departures {departures}?)"
            ));
        }
        Ok(report)
    }

    /// `n` independent replications on decorrelated seed streams
    /// (serially — the scenario sweep parallelizes across `(workload,
    /// policy)` pairs instead). Deterministic workloads (external trace
    /// replay, where every seed produces the same sample path) run a
    /// **single** simulation and return one report: averaging identical
    /// replays would waste work and dress the result up with a
    /// zero-width "confidence interval".
    pub fn replications(
        &self,
        policy: &dyn AllocationPolicy,
        params: &SystemParams,
        base_seed: u64,
        n: usize,
        warmup: u64,
        departures: u64,
    ) -> Result<Vec<SimReport>, String> {
        let n = if self.is_deterministic() { 1 } else { n };
        let reports = run_replications_with_threads(base_seed, n, 1, |seed| {
            self.simulate(policy, params, seed, warmup, departures)
        });
        reports.into_iter().collect()
    }
}

/// How deep the elastic-only probe looks (`j = 1..=PROBE_J`) when
/// checking that a policy hands the whole cluster to the elastic class;
/// matches the deepest phase cap the analysis chains use in practice.
const PROBE_J: usize = 256;

/// Probes whether `policy` hands the entire cluster to the elastic class
/// whenever only elastic jobs are present (`i = 0`, `j ≥ 1`) — the
/// precondition for the MAP/PH/1 elastic-only reduction. Finite-window
/// probe (see [`Workload::tractability`] for the caveat).
fn elastic_gets_everything(policy: &dyn AllocationPolicy, k: u32) -> bool {
    (1..=PROBE_J).all(|j| policy.allocate(0, j, k).elastic == k as f64)
}

/// Every shipped workload scenario family, mirroring
/// [`crate::policy::registry`]: the paper's Poisson baseline, a bursty
/// MMPP, batch arrivals, trace-file replay, and two non-exponential
/// service shapes.
pub fn registry() -> Vec<Workload> {
    vec![
        Workload::new(
            ArrivalSpec::Poisson,
            ServiceSpec::Exponential,
            ServiceSpec::Exponential,
        )
        .named("poisson"),
        Workload::new(
            ArrivalSpec::Mmpp {
                r01: 1.0,
                r10: 1.0,
                a0: 9.0,
                a1: 1.0,
            },
            ServiceSpec::Exponential,
            ServiceSpec::Exponential,
        )
        .named("map"),
        Workload::new(
            ArrivalSpec::Bursty { mean_burst: 4.0 },
            ServiceSpec::Exponential,
            ServiceSpec::Exponential,
        )
        .named("bursty"),
        Workload::new(
            ArrivalSpec::ReplayedPoisson,
            ServiceSpec::Exponential,
            ServiceSpec::Exponential,
        )
        .named("trace"),
        Workload::new(
            ArrivalSpec::Poisson,
            ServiceSpec::Erlang { stages: 3 },
            ServiceSpec::Erlang { stages: 3 },
        )
        .named("smooth-service"),
        Workload::new(
            ArrivalSpec::Poisson,
            ServiceSpec::HyperExp { cv2: 4.0 },
            ServiceSpec::HyperExp { cv2: 4.0 },
        )
        .named("heavytail-service"),
    ]
}

/// Parses an arrival spec: `poisson`, `map` (default MMPP-2 shape),
/// `map:<r01>x<r10>x<a0>x<a1>`, `bursty`, `bursty:<mean_jobs_per_burst>`,
/// `trace` (self-recorded Poisson replay), or `trace:<path>`.
pub fn parse_arrivals(spec: &str) -> Result<ArrivalSpec, String> {
    match spec {
        "poisson" => return Ok(ArrivalSpec::Poisson),
        "map" => {
            return Ok(ArrivalSpec::Mmpp {
                r01: 1.0,
                r10: 1.0,
                a0: 9.0,
                a1: 1.0,
            })
        }
        "bursty" => return Ok(ArrivalSpec::Bursty { mean_burst: 4.0 }),
        "trace" => return Ok(ArrivalSpec::ReplayedPoisson),
        _ => {}
    }
    if let Some(raw) = spec.strip_prefix("map:") {
        let form = "map:<r01>x<r10>x<a0>x<a1>";
        let parts: Vec<&str> = raw.split('x').collect();
        if parts.len() != 4 {
            return Err(bad(spec, form));
        }
        let mut vals = [0.0f64; 4];
        for (slot, part) in vals.iter_mut().zip(&parts) {
            *slot = part.parse().map_err(|_| bad(spec, form))?;
        }
        let [r01, r10, a0, a1] = vals;
        if !(r01 > 0.0 && r10 > 0.0 && a0 >= 0.0 && a1 >= 0.0 && a0 + a1 > 0.0) {
            return Err(bad(spec, form));
        }
        return Ok(ArrivalSpec::Mmpp { r01, r10, a0, a1 });
    }
    if let Some(raw) = spec.strip_prefix("bursty:") {
        let mean_burst: f64 = raw
            .parse()
            .map_err(|_| bad(spec, "bursty:<mean_jobs_per_burst>"))?;
        if !(mean_burst > 1.0 && mean_burst.is_finite()) {
            return Err(bad(spec, "bursty:<mean_jobs_per_burst> (> 1)"));
        }
        return Ok(ArrivalSpec::Bursty { mean_burst });
    }
    if let Some(raw) = spec.strip_prefix("trace:") {
        if raw.is_empty() {
            return Err(bad(spec, "trace:<path>"));
        }
        return Ok(ArrivalSpec::TraceFile { path: raw.into() });
    }
    Err(format!(
        "unknown arrival spec '{spec}' (expected poisson, map[:r01xr10xa0xa1], \
         bursty[:<mean>], trace[:<path>])"
    ))
}

/// Parses a service spec: `exp`, `erlang:<stages>`, `hyper:<cv2>`, `det`.
pub fn parse_service(spec: &str) -> Result<ServiceSpec, String> {
    match spec {
        "exp" => return Ok(ServiceSpec::Exponential),
        "det" => return Ok(ServiceSpec::Deterministic),
        _ => {}
    }
    if let Some(raw) = spec.strip_prefix("erlang:") {
        let stages: u32 = raw.parse().map_err(|_| bad(spec, "erlang:<stages>"))?;
        if stages == 0 {
            return Err(bad(spec, "erlang:<stages> (>= 1)"));
        }
        return Ok(ServiceSpec::Erlang { stages });
    }
    if let Some(raw) = spec.strip_prefix("hyper:") {
        let cv2: f64 = raw.parse().map_err(|_| bad(spec, "hyper:<cv2>"))?;
        if !(cv2 >= 1.0 && cv2.is_finite()) {
            return Err(bad(spec, "hyper:<cv2> (cv2 >= 1)"));
        }
        return Ok(ServiceSpec::HyperExp { cv2 });
    }
    Err(format!(
        "unknown service spec '{spec}' (expected exp, erlang:<stages>, hyper:<cv2>, det)"
    ))
}

/// Parses a full workload: a registry name (`poisson`, `map`, `bursty`,
/// `trace`, …) or an explicit arrival spec, with optional service
/// overrides and a capacity-churn axis ([`FaultSpec::parse`]) applied on
/// top.
pub fn parse_workload(
    spec: &str,
    service_i: Option<&str>,
    service_e: Option<&str>,
    churn: Option<&str>,
) -> Result<Workload, String> {
    let base = registry()
        .into_iter()
        .find(|w| w.name == spec)
        .map(Ok)
        .unwrap_or_else(|| {
            parse_arrivals(spec)
                .map(|a| Workload::new(a, ServiceSpec::Exponential, ServiceSpec::Exponential))
        })?;
    let mut w = base;
    if let Some(spec_i) = service_i {
        w.service_i = parse_service(spec_i)?;
    }
    if let Some(spec_e) = service_e {
        w.service_e = parse_service(spec_e)?;
    }
    if service_i.is_some() || service_e.is_some() {
        w = Workload::new(w.arrivals, w.service_i, w.service_e);
    }
    if let Some(c) = churn {
        w = w.churned(FaultSpec::parse(c)?);
    }
    Ok(w)
}

fn bad(spec: &str, form: &str) -> String {
    format!("cannot parse '{spec}' (expected {form})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eirs_sim::policy::{ElasticFirst, FairShare, InelasticFirst};

    fn params() -> SystemParams {
        SystemParams::with_equal_lambdas(3, 0.5, 1.0, 0.5).unwrap()
    }

    #[test]
    fn registry_names_are_unique_and_cover_the_four_families() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|w| w.name.as_str()).collect();
        for want in ["poisson", "map", "bursty", "trace"] {
            assert!(names.contains(&want), "registry missing '{want}'");
        }
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate workload names");
    }

    #[test]
    fn parser_round_trips_registry_and_explicit_specs() {
        for (spec, want) in [
            ("poisson", ArrivalSpec::Poisson),
            (
                "map:2x0.5x8x1",
                ArrivalSpec::Mmpp {
                    r01: 2.0,
                    r10: 0.5,
                    a0: 8.0,
                    a1: 1.0,
                },
            ),
            ("bursty:6", ArrivalSpec::Bursty { mean_burst: 6.0 }),
            ("trace", ArrivalSpec::ReplayedPoisson),
            (
                "trace:/tmp/foo.trace",
                ArrivalSpec::TraceFile {
                    path: "/tmp/foo.trace".into(),
                },
            ),
        ] {
            assert_eq!(parse_arrivals(spec).unwrap(), want, "spec '{spec}'");
        }
        for (spec, want) in [
            ("exp", ServiceSpec::Exponential),
            ("erlang:4", ServiceSpec::Erlang { stages: 4 }),
            ("hyper:2.5", ServiceSpec::HyperExp { cv2: 2.5 }),
            ("det", ServiceSpec::Deterministic),
        ] {
            assert_eq!(parse_service(spec).unwrap(), want, "spec '{spec}'");
        }
    }

    #[test]
    fn parser_rejects_malformed_specs() {
        for spec in [
            "nope",
            "map:1x2x3",
            "map:axbxcxd",
            "map:0x1x1x1",
            "bursty:1",
            "bursty:x",
            "trace:",
        ] {
            assert!(parse_arrivals(spec).is_err(), "'{spec}' should fail");
        }
        for spec in ["nope", "erlang:0", "erlang:x", "hyper:0.5", "hyper:x"] {
            assert!(parse_service(spec).is_err(), "'{spec}' should fail");
        }
    }

    #[test]
    fn workload_parser_layers_service_overrides() {
        let w = parse_workload("map", None, Some("erlang:2"), None).unwrap();
        assert!(matches!(w.arrivals, ArrivalSpec::Mmpp { .. }));
        assert_eq!(w.service_i, ServiceSpec::Exponential);
        assert_eq!(w.service_e, ServiceSpec::Erlang { stages: 2 });
        // Registry names resolve with their canned service shapes.
        let t = parse_workload("heavytail-service", None, None, None).unwrap();
        assert_eq!(t.service_i, ServiceSpec::HyperExp { cv2: 4.0 });
    }

    #[test]
    fn service_specs_hit_the_target_mean() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mu = 2.0;
        for spec in [
            ServiceSpec::Exponential,
            ServiceSpec::Erlang { stages: 3 },
            ServiceSpec::HyperExp { cv2: 4.0 },
            ServiceSpec::Deterministic,
        ] {
            let d = spec.build(mu);
            assert!(
                (d.mean() - 0.5).abs() < 1e-9,
                "{}: mean {}",
                spec.label(),
                d.mean()
            );
            let mut rng = StdRng::seed_from_u64(7);
            let n = 20_000;
            let emp: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!((emp - 0.5).abs() < 0.02, "{}: emp {emp}", spec.label());
            // Phase-type view (when it exists) has the same moments.
            if let Some(ph) = spec.phase_type(mu) {
                let (a, b) = (ph.moments(), d.moments());
                assert!((a.m1 - b.m1).abs() < 1e-9, "{}", spec.label());
                assert!((a.m2 - b.m2).abs() < 1e-9, "{}", spec.label());
            }
        }
    }

    #[test]
    fn every_registry_workload_feeds_the_des() {
        let p = params();
        for w in registry() {
            let r = w
                .simulate(&FairShare, &p, 11, 200, 2_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                r.completed[0] + r.completed[1] >= 1_000,
                "{}: too few departures",
                w.name
            );
            assert!(r.mean_response.is_finite() && r.mean_response > 0.0);
        }
    }

    #[test]
    fn tractability_classification_matches_the_design() {
        let p = params();
        let reg = registry();
        let by_name = |n: &str| reg.iter().find(|w| w.name == n).unwrap();
        assert_eq!(
            by_name("poisson").tractability(&InelasticFirst, &p),
            Tractability::PoissonExp
        );
        assert_eq!(
            by_name("trace").tractability(&InelasticFirst, &p),
            Tractability::PoissonExp
        );
        assert_eq!(
            by_name("map").tractability(&FairShare, &p),
            Tractability::MapExp
        );
        assert_eq!(
            by_name("bursty").tractability(&InelasticFirst, &p),
            Tractability::Intractable
        );
        assert_eq!(
            by_name("heavytail-service").tractability(&InelasticFirst, &p),
            Tractability::Intractable
        );
        // Elastic-only phase-type service: MAP/PH/1.
        let p_e = SystemParams::new(3, 0.0, 1.0, 1.0, 1.0).unwrap();
        assert_eq!(
            by_name("heavytail-service").tractability(&ElasticFirst, &p_e),
            Tractability::MapPh1
        );
    }

    #[test]
    fn churn_axis_composes_with_every_workload_family() {
        let p = params();
        let spec = FaultSpec::parse("crash:mtbf=60,mttr=10").unwrap();
        for base in registry() {
            let w = base.churned(spec);
            assert!(w.name.ends_with("+crash:mtbf=60,mttr=10"), "{}", w.name);
            // Churn kills every analytic route — simulation only.
            assert_eq!(w.tractability(&FairShare, &p), Tractability::Intractable);
            let r = w
                .simulate(&FairShare, &p, 17, 100, 1_000)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(r.completed[0] + r.completed[1] >= 1_000, "{}", w.name);
            assert!(r.mean_response.is_finite() && r.mean_response > 0.0);
        }
    }

    #[test]
    fn churned_trace_replay_is_seed_dependent_again() {
        let base = registry().into_iter().find(|w| w.name == "trace").unwrap();
        assert!(!base.is_deterministic(), "self-recorded replay reseeds");
        let spec = FaultSpec::parse("drain:period=40,down=5").unwrap();
        let w = base.churned(spec);
        assert!(!w.is_deterministic());
        assert!(w.churn.is_some());
    }

    #[test]
    fn workload_parser_layers_the_churn_axis() {
        let w = parse_workload("map", None, None, Some("crash:mtbf=50,mttr=5")).unwrap();
        assert_eq!(
            w.churn,
            Some(FaultSpec::parse("crash:mtbf=50,mttr=5").unwrap())
        );
        assert_eq!(w.name, "map+crash:mtbf=50,mttr=5");
        // Malformed churn specs surface the FaultSpec parser's message.
        let err = parse_workload("poisson", None, None, Some("crash:mtbf=-1")).unwrap_err();
        assert!(err.contains("cannot parse"), "{err}");
        assert!(parse_workload("poisson", None, None, Some("nuke")).is_err());
    }

    #[test]
    fn poisson_workload_analysis_matches_analyze_policy_bitwise() {
        let p = params();
        let opts = AnalyzeOptions::default();
        let w = Workload::new(
            ArrivalSpec::Poisson,
            ServiceSpec::Exponential,
            ServiceSpec::Exponential,
        );
        let via_workload = w.analyze(&InelasticFirst, &p, &opts).unwrap().unwrap();
        let direct = analyze_policy_with(&InelasticFirst, &p, &opts).unwrap();
        assert_eq!(
            via_workload.mean_response.to_bits(),
            direct.mean_response.to_bits()
        );
    }

    #[test]
    fn elastic_only_ph_service_analysis_matches_des() {
        // M/PH/1 at speed k: hyperexponential service, elastic-only.
        let p = SystemParams::new(2, 0.0, 1.2, 1.0, 1.0).unwrap();
        let w = Workload::new(
            ArrivalSpec::Poisson,
            ServiceSpec::Exponential,
            ServiceSpec::HyperExp { cv2: 3.0 },
        );
        let a = w
            .analyze(&ElasticFirst, &p, &AnalyzeOptions::default())
            .unwrap()
            .expect("tractable");
        let reports = w
            .replications(&ElasticFirst, &p, 5, 6, 3_000, 30_000)
            .unwrap();
        let mean: f64 = reports.iter().map(|r| r.mean_response).sum::<f64>() / reports.len() as f64;
        assert!(
            (a.mean_response - mean).abs() / mean < 0.05,
            "analysis {} vs DES {mean}",
            a.mean_response
        );
    }
}
