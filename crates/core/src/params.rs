//! Model parameters (paper Section 2).

/// The five parameters of the stochastic model: `k` servers, per-class
/// Poisson arrival rates, and per-class exponential size rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// Number of servers `k ≥ 1`.
    pub k: u32,
    /// Inelastic arrival rate `λ_I ≥ 0`.
    pub lambda_i: f64,
    /// Elastic arrival rate `λ_E ≥ 0`.
    pub lambda_e: f64,
    /// Inelastic size rate `µ_I > 0` (mean size `1/µ_I`).
    pub mu_i: f64,
    /// Elastic size rate `µ_E > 0` (mean size `1/µ_E`).
    pub mu_e: f64,
}

/// Parameter validation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// A rate was negative, zero where positivity is required, or not finite.
    InvalidRate(&'static str, f64),
    /// `k = 0`.
    NoServers,
    /// The offered load is at or above capacity: `ρ ≥ 1`.
    Overloaded {
        /// The offending load.
        rho: f64,
    },
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::InvalidRate(name, v) => write!(f, "invalid {name}: {v}"),
            ParamError::NoServers => write!(f, "k must be at least 1"),
            ParamError::Overloaded { rho } => {
                write!(f, "system overloaded: rho = {rho:.4} >= 1")
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl SystemParams {
    /// Validated constructor. Requires `k ≥ 1`, `µ > 0` for both classes,
    /// `λ ≥ 0` for both classes, and stability `ρ < 1`.
    pub fn new(
        k: u32,
        lambda_i: f64,
        lambda_e: f64,
        mu_i: f64,
        mu_e: f64,
    ) -> Result<Self, ParamError> {
        if k == 0 {
            return Err(ParamError::NoServers);
        }
        for (name, v, strictly_positive) in [
            ("lambda_i", lambda_i, false),
            ("lambda_e", lambda_e, false),
            ("mu_i", mu_i, true),
            ("mu_e", mu_e, true),
        ] {
            if !v.is_finite() || v < 0.0 || (strictly_positive && v == 0.0) {
                return Err(ParamError::InvalidRate(name, v));
            }
        }
        let p = Self {
            k,
            lambda_i,
            lambda_e,
            mu_i,
            mu_e,
        };
        if p.load() >= 1.0 {
            return Err(ParamError::Overloaded { rho: p.load() });
        }
        Ok(p)
    }

    /// The parameterization used throughout the paper's figures:
    /// `λ_I = λ_E = λ` with `λ` chosen so that the system load is exactly
    /// `rho`, i.e. `λ = kρ / (1/µ_I + 1/µ_E)`.
    pub fn with_equal_lambdas(k: u32, mu_i: f64, mu_e: f64, rho: f64) -> Result<Self, ParamError> {
        if !(rho > 0.0 && rho < 1.0) {
            return Err(ParamError::Overloaded { rho });
        }
        if mu_i <= 0.0 || !mu_i.is_finite() {
            return Err(ParamError::InvalidRate("mu_i", mu_i));
        }
        if mu_e <= 0.0 || !mu_e.is_finite() {
            return Err(ParamError::InvalidRate("mu_e", mu_e));
        }
        let lambda = k as f64 * rho / (1.0 / mu_i + 1.0 / mu_e);
        Self::new(k, lambda, lambda, mu_i, mu_e)
    }

    /// System load `ρ = λ_I/(kµ_I) + λ_E/(kµ_E)` (paper Eq. (1)).
    pub fn load(&self) -> f64 {
        let k = self.k as f64;
        self.lambda_i / (k * self.mu_i) + self.lambda_e / (k * self.mu_e)
    }

    /// Inelastic share of the load, `λ_I/(kµ_I)`.
    pub fn load_inelastic(&self) -> f64 {
        self.lambda_i / (self.k as f64 * self.mu_i)
    }

    /// Elastic share of the load, `λ_E/(kµ_E)`.
    pub fn load_elastic(&self) -> f64 {
        self.lambda_e / (self.k as f64 * self.mu_e)
    }

    /// Total arrival rate `λ_I + λ_E`.
    pub fn total_lambda(&self) -> f64 {
        self.lambda_i + self.lambda_e
    }

    /// `true` in the regime where Theorem 5 proves IF optimal (`µ_I ≥ µ_E`).
    pub fn inelastic_first_provably_optimal(&self) -> bool {
        self.mu_i >= self.mu_e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_formula_matches_paper() {
        let p = SystemParams::new(4, 1.0, 1.0, 2.0, 1.0).unwrap();
        assert!((p.load() - (1.0 / 8.0 + 1.0 / 4.0)).abs() < 1e-12);
        assert!((p.load_inelastic() - 0.125).abs() < 1e-12);
        assert!((p.load_elastic() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn equal_lambda_parameterization_hits_target_load() {
        for rho in [0.1, 0.5, 0.7, 0.9] {
            for (mu_i, mu_e) in [(0.25, 1.0), (1.0, 1.0), (3.25, 1.0), (2.0, 0.5)] {
                let p = SystemParams::with_equal_lambdas(4, mu_i, mu_e, rho).unwrap();
                assert!((p.load() - rho).abs() < 1e-12, "rho {} vs {rho}", p.load());
                assert_eq!(p.lambda_i, p.lambda_e);
            }
        }
    }

    #[test]
    fn rejects_overload() {
        assert!(matches!(
            SystemParams::new(2, 3.0, 0.0, 1.0, 1.0),
            Err(ParamError::Overloaded { .. })
        ));
    }

    #[test]
    fn rejects_bad_rates() {
        assert!(SystemParams::new(2, -1.0, 0.0, 1.0, 1.0).is_err());
        assert!(SystemParams::new(2, 0.5, 0.0, 0.0, 1.0).is_err());
        assert!(SystemParams::new(0, 0.5, 0.0, 1.0, 1.0).is_err());
        assert!(SystemParams::new(2, f64::NAN, 0.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn optimality_regime_flag() {
        assert!(SystemParams::new(2, 0.1, 0.1, 2.0, 1.0)
            .unwrap()
            .inelastic_first_provably_optimal());
        assert!(!SystemParams::new(2, 0.1, 0.1, 0.5, 1.0)
            .unwrap()
            .inelastic_first_provably_optimal());
    }
}
