//! Event-driven SRPT-k scheduling for capped-parallelizable batch jobs.
//!
//! The algorithm (Appendix A): at every moment, sort unfinished jobs by
//! remaining work and hand out servers in that order, each job receiving up
//! to its cap `k_j`. Between completions allocations are constant, so the
//! schedule advances event by event; the whole schedule has at most `n`
//! events.
//!
//! Speed augmentation: with speed `s`, every allocated server processes `s`
//! units of work per second. Since all jobs are present at time 0, the
//! speed-`s` schedule is the speed-1 schedule with time compressed by `s`
//! (`C_1 = s·C_s`), a fact the tests verify and the 4-approximation proof
//! uses.

use crate::instance::BatchInstance;

/// A completed SRPT-k schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Completion time of each job, indexed like the instance.
    pub completion_times: Vec<f64>,
    /// `Σ_j C_j` — total response time (all jobs arrive at 0).
    pub total_response_time: f64,
    /// The speed used.
    pub speed: f64,
}

impl Schedule {
    /// Makespan of the schedule.
    pub fn makespan(&self) -> f64 {
        self.completion_times.iter().fold(0.0, |a, &c| a.max(c))
    }

    /// Number of jobs in the system at time `t` (for β(t) in the dual).
    pub fn jobs_in_system_at(&self, t: f64) -> usize {
        self.completion_times.iter().filter(|&&c| c > t).count()
    }
}

/// Runs generalized SRPT-k on `instance` with servers of speed `speed`.
pub fn srpt_k_schedule(instance: &BatchInstance, speed: f64) -> Schedule {
    assert!(speed > 0.0 && speed.is_finite());
    let n = instance.len();
    let k = instance.k as f64;
    let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.size).collect();
    let mut completion = vec![0.0f64; n];
    let mut active: Vec<usize> = (0..n).collect();
    let mut time = 0.0f64;
    let mut rates = vec![0.0f64; n];

    while !active.is_empty() {
        // SRPT order: ascending remaining work (stable tiebreak by index).
        active.sort_by(|&a, &b| {
            remaining[a]
                .partial_cmp(&remaining[b])
                .expect("finite remaining work")
                .then(a.cmp(&b))
        });
        // Greedy allocation in priority order.
        let mut left = k;
        for &idx in &active {
            if left <= 0.0 {
                rates[idx] = 0.0;
                continue;
            }
            let grant = (instance.jobs[idx].cap as f64).min(left);
            rates[idx] = grant * speed;
            left -= grant;
        }
        // Advance to the earliest completion.
        let mut dt = f64::INFINITY;
        for &idx in &active {
            if rates[idx] > 0.0 {
                dt = dt.min(remaining[idx] / rates[idx]);
            }
        }
        debug_assert!(dt.is_finite() && dt > 0.0, "schedule must make progress");
        time += dt;
        for &idx in &active {
            if rates[idx] > 0.0 {
                remaining[idx] = (remaining[idx] - rates[idx] * dt).max(0.0);
            }
        }
        active.retain(|&idx| {
            if remaining[idx] <= 1e-12 * instance.jobs[idx].size.max(1.0) {
                completion[idx] = time;
                false
            } else {
                true
            }
        });
    }

    let total: f64 = completion.iter().sum();
    Schedule {
        completion_times: completion,
        total_response_time: total,
        speed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::BatchJob;

    fn inst(k: u32, jobs: &[(f64, u32)]) -> BatchInstance {
        BatchInstance::new(
            k,
            jobs.iter()
                .map(|&(size, cap)| BatchJob { size, cap })
                .collect(),
        )
    }

    #[test]
    fn single_fully_parallel_job_uses_all_servers() {
        let s = srpt_k_schedule(&inst(4, &[(8.0, 4)]), 1.0);
        assert!((s.completion_times[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cap_limits_the_rate() {
        let s = srpt_k_schedule(&inst(4, &[(8.0, 2)]), 1.0);
        assert!((s.completion_times[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn srpt_order_on_sequential_jobs_single_server() {
        // Sizes 3, 1, 2 on one server → completions 1, 3, 6 in SRPT order.
        let s = srpt_k_schedule(&inst(1, &[(3.0, 1), (1.0, 1), (2.0, 1)]), 1.0);
        assert!((s.completion_times[1] - 1.0).abs() < 1e-12);
        assert!((s.completion_times[2] - 3.0).abs() < 1e-12);
        assert!((s.completion_times[0] - 6.0).abs() < 1e-12);
        assert!((s.total_response_time - 10.0).abs() < 1e-12);
    }

    #[test]
    fn leftover_servers_flow_down_the_priority_list() {
        // k=4: short job cap 1 takes one server, long job cap 4 gets 3.
        let s = srpt_k_schedule(&inst(4, &[(1.0, 1), (9.0, 4)]), 1.0);
        assert!((s.completion_times[0] - 1.0).abs() < 1e-12);
        // Long job: 3 servers for 1s (3 units), then 4 servers for 1.5s.
        assert!(
            (s.completion_times[1] - 2.5).abs() < 1e-12,
            "{}",
            s.completion_times[1]
        );
    }

    #[test]
    fn priority_can_flip_when_a_capped_job_falls_behind() {
        // Job A: size 2, cap 1. Job B: size 3, cap 4 on k=4.
        // t=0: A shorter → A gets 1 server, B gets 3 → B done at t=1!
        let s = srpt_k_schedule(&inst(4, &[(2.0, 1), (3.0, 4)]), 1.0);
        assert!((s.completion_times[1] - 1.0).abs() < 1e-12);
        assert!((s.completion_times[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speed_s_compresses_time_exactly() {
        let instance = BatchInstance::random_uniform(60, 8, 10.0, 5);
        let s1 = srpt_k_schedule(&instance, 1.0);
        let s2 = srpt_k_schedule(&instance, 2.0);
        assert!(
            (s1.total_response_time - 2.0 * s2.total_response_time).abs() / s1.total_response_time
                < 1e-9,
            "C_1 {} vs 2·C_2 {}",
            s1.total_response_time,
            2.0 * s2.total_response_time
        );
    }

    #[test]
    fn jobs_in_system_counts_match_completions() {
        let s = srpt_k_schedule(&inst(1, &[(1.0, 1), (2.0, 1)]), 1.0);
        assert_eq!(s.jobs_in_system_at(0.0), 2);
        assert_eq!(s.jobs_in_system_at(1.5), 1);
        assert_eq!(s.jobs_in_system_at(5.0), 0);
    }

    #[test]
    fn makespan_bounded_by_work_over_k_plus_max_size() {
        let instance = BatchInstance::random_uniform(100, 4, 10.0, 6);
        let s = srpt_k_schedule(&instance, 1.0);
        let bound =
            instance.total_work() / 4.0 + instance.jobs.iter().map(|j| j.size).fold(0.0, f64::max);
        assert!(s.makespan() <= bound + 1e-9);
    }
}
