//! Numerical dual fitting (Appendix A, Lemmas 8–11).
//!
//! The 4-approximation proof sets, from the *speed-2* SRPT-k schedule,
//!
//! ```text
//! α_j = U_j/(k·s) + x_j/(s·k_j),        β(t) = |Q_s(t)| / s,
//! ```
//!
//! where `U_j` is the work initially ahead of job `j` in size order and
//! `Q_s(t)` the unfinished jobs of the speed-`s` schedule. The proof then
//! shows (for `s = 2`):
//!
//! * **Lemma 11**: `(α, β)` is feasible for `LP_dual`
//!   (`α_j/x_j − β(t)/k ≤ t/x_j + 1/(2k_j)` for all `j, t`);
//! * **Lemma 8/10**: `Σα − ∫β ≥ (1 − 1/s)·C_s`;
//! * weak duality then gives `C_s ≤ 2·LP* ≤ 2·OPT`, and the exact time
//!   scaling `C_1 = s·C_s` yields the factor 4.
//!
//! [`verify_dual_fitting`] checks every one of those statements on a
//! concrete instance — a machine-checked shadow of the proof.

use crate::instance::BatchInstance;
use crate::lp::lp_lower_bound;
use crate::schedule::srpt_k_schedule;

/// Outcome of the dual-fitting verification on one instance.
#[derive(Debug, Clone)]
pub struct DualReport {
    /// Largest violation of the dual constraints (≤ 0 means feasible).
    pub max_constraint_violation: f64,
    /// Dual objective `Σα − ∫β dt`.
    pub dual_objective: f64,
    /// Total response time of the speed-2 schedule, `C_2`.
    pub speed2_total_response: f64,
    /// Total response time of the speed-1 schedule, `C_1`.
    pub speed1_total_response: f64,
    /// Closed-form LP optimum (lower bound on OPT).
    pub lp_bound: f64,
    /// The observed approximation ratio `C_1 / LP*` (provably ≤ 4).
    pub approx_ratio: f64,
}

impl DualReport {
    /// Lemma 11: dual feasibility (within `tol`).
    pub fn is_feasible(&self, tol: f64) -> bool {
        self.max_constraint_violation <= tol
    }

    /// Lemma 8: `Σα − ∫β ≥ (1 − 1/2)·C_2` (within `tol` relative).
    pub fn lemma8_holds(&self, tol: f64) -> bool {
        self.dual_objective >= 0.5 * self.speed2_total_response * (1.0 - tol)
    }

    /// Weak duality sanity: the dual objective cannot exceed the LP optimum.
    pub fn weak_duality_holds(&self, tol: f64) -> bool {
        self.dual_objective <= self.lp_bound * (1.0 + tol) + tol
    }
}

/// Builds the Lemma 8 dual solution from the speed-2 schedule and verifies
/// feasibility, the objective inequality, weak duality, and the resulting
/// approximation ratio.
pub fn verify_dual_fitting(instance: &BatchInstance) -> DualReport {
    let s = 2.0;
    let k = instance.k as f64;
    let n = instance.len();
    let sched2 = srpt_k_schedule(instance, s);
    let sched1 = srpt_k_schedule(instance, 1.0);

    // U_j: work ahead of j in the initial size order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        instance.jobs[a]
            .size
            .partial_cmp(&instance.jobs[b].size)
            .expect("finite sizes")
            .then(a.cmp(&b))
    });
    let mut u = vec![0.0f64; n];
    let mut prefix = 0.0;
    for &idx in &order {
        u[idx] = prefix;
        prefix += instance.jobs[idx].size;
    }

    let alpha: Vec<f64> = (0..n)
        .map(|jj| u[jj] / (k * s) + instance.jobs[jj].size / (s * instance.jobs[jj].cap as f64))
        .collect();

    // β(t) = |Q_2(t)|/s: piecewise constant, breakpoints at completions.
    let mut breakpoints: Vec<f64> = sched2.completion_times.clone();
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    breakpoints.dedup();
    let mut piece_starts = vec![0.0f64];
    piece_starts.extend(breakpoints.iter().copied());

    // ∫β dt = (1/s)·Σ completion times (each job contributes its sojourn).
    let integral_beta = sched2.total_response_time / s;

    // Feasibility: constraint α_j/x_j − β(t)/k ≤ t/x_j + 1/(2k_j); the LHS
    // surplus is decreasing in t on each constant piece of β, so checking
    // piece starts covers all t (the final piece has β = 0 and extends to ∞).
    let mut max_violation = f64::NEG_INFINITY;
    for (job, &a) in instance.jobs.iter().zip(&alpha) {
        let x = job.size;
        let cap = job.cap as f64;
        for &t in &piece_starts {
            let beta = sched2.jobs_in_system_at(t) as f64 / s;
            let violation = a / x - beta / k - t / x - 1.0 / (2.0 * cap);
            max_violation = max_violation.max(violation);
        }
    }

    let dual_objective = alpha.iter().sum::<f64>() - integral_beta;
    let lp_bound = lp_lower_bound(instance);
    DualReport {
        max_constraint_violation: max_violation,
        dual_objective,
        speed2_total_response: sched2.total_response_time,
        speed1_total_response: sched1.total_response_time,
        lp_bound,
        approx_ratio: sched1.total_response_time / lp_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::BatchJob;

    fn check(instance: &BatchInstance, label: &str) {
        let r = verify_dual_fitting(instance);
        assert!(
            r.is_feasible(1e-9),
            "{label}: violation {}",
            r.max_constraint_violation
        );
        assert!(
            r.lemma8_holds(1e-9),
            "{label}: Σα−∫β = {} < C₂/2 = {}",
            r.dual_objective,
            0.5 * r.speed2_total_response
        );
        assert!(
            r.weak_duality_holds(1e-9),
            "{label}: dual {} > LP {}",
            r.dual_objective,
            r.lp_bound
        );
        assert!(
            r.approx_ratio <= 4.0 + 1e-9,
            "{label}: ratio {}",
            r.approx_ratio
        );
        assert!(
            r.approx_ratio >= 1.0 - 1e-9,
            "{label}: ratio {} < 1",
            r.approx_ratio
        );
        // Exact time scaling C₁ = 2 C₂.
        assert!(
            (r.speed1_total_response - 2.0 * r.speed2_total_response).abs()
                / r.speed1_total_response
                < 1e-9,
            "{label}: C₁ {} vs 2C₂ {}",
            r.speed1_total_response,
            2.0 * r.speed2_total_response
        );
    }

    #[test]
    fn dual_fitting_on_uniform_instances() {
        for seed in 0..8 {
            let i = BatchInstance::random_uniform(60, 4, 10.0, seed);
            check(&i, &format!("uniform-{seed}"));
        }
    }

    #[test]
    fn dual_fitting_on_heavy_tailed_instances() {
        for seed in 0..5 {
            let i = BatchInstance::random_heavy_tailed(60, 8, 1.3, seed);
            check(&i, &format!("pareto-{seed}"));
        }
    }

    #[test]
    fn dual_fitting_on_elastic_inelastic_mixtures() {
        for seed in 0..5 {
            let i = BatchInstance::random_elastic_inelastic(80, 8, 0.6, seed);
            check(&i, &format!("mix-{seed}"));
        }
    }

    #[test]
    fn dual_fitting_on_adversarial_small_cases() {
        // Equal sizes (maximal ties), caps alternating 1 and k.
        let i = BatchInstance::new(
            4,
            (0..12)
                .map(|t| BatchJob {
                    size: 1.0,
                    cap: if t % 2 == 0 { 1 } else { 4 },
                })
                .collect(),
        );
        check(&i, "ties");
        // One giant job behind many tiny ones.
        let mut jobs = vec![BatchJob {
            size: 100.0,
            cap: 2,
        }];
        jobs.extend((0..20).map(|_| BatchJob { size: 0.01, cap: 1 }));
        check(&BatchInstance::new(4, jobs), "giant");
    }

    #[test]
    fn observed_ratio_is_well_under_four_in_practice() {
        let mut worst: f64 = 0.0;
        for seed in 0..10 {
            let i = BatchInstance::random_uniform(100, 8, 20.0, seed);
            let r = verify_dual_fitting(&i);
            worst = worst.max(r.approx_ratio);
        }
        // The bound is 4; in practice SRPT-k sits near the LP bound.
        assert!(worst < 2.5, "worst observed ratio {worst}");
    }
}
