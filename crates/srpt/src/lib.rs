//! Deterministic batch scheduling with parallelizability caps
//! (paper Appendix A).
//!
//! The worst-case companion result of the paper: when all jobs arrive at
//! time 0 with *known* sizes and each job `j` parallelizes up to `k_j`
//! servers (rate `min(k_j, allocated)`), the natural generalization of
//! SRPT-k — jobs sorted by remaining size, each granted up to `k_j` servers
//! in priority order — is a **4-approximation** for total response time.
//!
//! Everything the dual-fitting proof touches is implemented and checkable:
//!
//! * [`instance`] — batch instances and workload generators,
//! * [`schedule`] — the event-driven SRPT-k schedule (with speed
//!   augmentation `s`),
//! * [`lp`] — the closed-form optimum of the LP relaxation (the lower
//!   bound `Σ_j (U_j + x_j/2)/k + Σ_j x_j/(2k_j)`),
//! * [`dual`] — the dual variables `α, β` of Lemma 8, their feasibility
//!   check, and the objective inequality `Σα − ∫β ≥ (1 − 1/s)·C_s`.

pub mod dual;
pub mod instance;
pub mod lp;
pub mod schedule;

pub use dual::{verify_dual_fitting, DualReport};
pub use instance::{BatchInstance, BatchJob};
pub use lp::lp_lower_bound;
pub use schedule::{srpt_k_schedule, Schedule};
