//! Batch instances: jobs with sizes and parallelizability caps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One batch job: inherent work `size`, parallelizable up to `cap` servers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchJob {
    /// Inherent work (runtime on one server).
    pub size: f64,
    /// Maximum useful number of servers `k_j ≥ 1`.
    pub cap: u32,
}

/// A batch scheduling instance: all jobs present at time 0, `k` servers.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchInstance {
    /// Number of servers.
    pub k: u32,
    /// The jobs.
    pub jobs: Vec<BatchJob>,
}

impl BatchInstance {
    /// Validated constructor: `k ≥ 1`, nonempty, positive finite sizes,
    /// caps `≥ 1`.
    pub fn new(k: u32, jobs: Vec<BatchJob>) -> Self {
        assert!(k >= 1, "need at least one server");
        assert!(!jobs.is_empty(), "instance needs at least one job");
        for (idx, j) in jobs.iter().enumerate() {
            assert!(
                j.size > 0.0 && j.size.is_finite(),
                "job {idx} has bad size {}",
                j.size
            );
            assert!(j.cap >= 1, "job {idx} has zero cap");
        }
        Self { k, jobs }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the instance has no jobs (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total work `Σ x_j`.
    pub fn total_work(&self) -> f64 {
        self.jobs.iter().map(|j| j.size).sum()
    }

    /// Instance with uniformly random sizes in `[0.1, max_size]` and caps
    /// uniform in `{1, …, k}`.
    pub fn random_uniform(n: usize, k: u32, max_size: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = (0..n)
            .map(|_| BatchJob {
                size: 0.1 + rng.random::<f64>() * (max_size - 0.1),
                cap: 1 + (rng.random::<f64>() * k as f64) as u32,
            })
            .map(|j| BatchJob {
                cap: j.cap.min(k),
                ..j
            })
            .collect();
        Self::new(k, jobs)
    }

    /// Instance with heavy-tailed (bounded-Pareto-like) sizes: `x = L·u^{-1/α}`
    /// truncated at `H`, caps uniform in `{1, …, k}`.
    pub fn random_heavy_tailed(n: usize, k: u32, alpha: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (l, h) = (0.5, 500.0);
        let jobs = (0..n)
            .map(|_| {
                let u: f64 = rng.random::<f64>().max(1e-12);
                let size = (l * u.powf(-1.0 / alpha)).min(h);
                let cap = 1 + (rng.random::<f64>() * k as f64) as u32;
                BatchJob {
                    size,
                    cap: cap.min(k),
                }
            })
            .collect();
        Self::new(k, jobs)
    }

    /// The paper's motivating mixture: a fraction of small *inelastic* jobs
    /// (cap 1) and large *elastic* jobs (cap `k`).
    pub fn random_elastic_inelastic(n: usize, k: u32, inelastic_fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&inelastic_fraction));
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = (0..n)
            .map(|_| {
                if rng.random::<f64>() < inelastic_fraction {
                    // Small sequential job (e.g. a reduce stage / inference).
                    BatchJob {
                        size: 0.1 + rng.random::<f64>() * 0.9,
                        cap: 1,
                    }
                } else {
                    // Large parallel job (e.g. a map stage / training run).
                    BatchJob {
                        size: 2.0 + rng.random::<f64>() * 18.0,
                        cap: k,
                    }
                }
            })
            .collect();
        Self::new(k, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_valid_instances() {
        let a = BatchInstance::random_uniform(50, 8, 10.0, 1);
        let b = BatchInstance::random_heavy_tailed(50, 8, 1.5, 2);
        let c = BatchInstance::random_elastic_inelastic(50, 8, 0.5, 3);
        for inst in [&a, &b, &c] {
            assert_eq!(inst.len(), 50);
            assert!(inst.total_work() > 0.0);
            for j in &inst.jobs {
                assert!(j.size > 0.0);
                assert!((1..=8).contains(&j.cap));
            }
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = BatchInstance::random_uniform(10, 4, 5.0, 9);
        let b = BatchInstance::random_uniform(10, 4, 5.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn elastic_inelastic_mixture_has_both_shapes() {
        let inst = BatchInstance::random_elastic_inelastic(200, 16, 0.5, 4);
        let inelastic = inst.jobs.iter().filter(|j| j.cap == 1).count();
        let elastic = inst.jobs.iter().filter(|j| j.cap == 16).count();
        assert!(inelastic > 50 && elastic > 50);
    }

    #[test]
    #[should_panic(expected = "bad size")]
    fn rejects_nonpositive_sizes() {
        BatchInstance::new(2, vec![BatchJob { size: 0.0, cap: 1 }]);
    }
}
