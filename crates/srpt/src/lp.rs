//! The LP relaxation lower bound (Appendix A, `LP_primal`).
//!
//! With all jobs at time 0 the LP
//!
//! ```text
//! min Σ_j Σ_t (t/x_j + 1/(2k_j)) y_jt
//! s.t. Σ_t y_jt ≥ x_j,   Σ_j y_jt ≤ k,   y ≥ 0
//! ```
//!
//! decouples: the `Σ y_jt/(2k_j)` term is `Σ_j x_j/(2k_j)` for any schedule
//! that processes exactly `x_j` work, and the fractional-flow term
//! `Σ t·y_jt/x_j` is minimized by processing jobs SRPT-fractionally on the
//! aggregated speed-`k` machine. Sorting sizes ascending with prefix sums
//! `U_j = Σ_{i<j} x_i` gives the closed form
//!
//! ```text
//! LP* = Σ_j (U_j + x_j/2)/k + Σ_j x_j/(2k_j),
//! ```
//!
//! which lower-bounds the optimal total response time.

use crate::instance::BatchInstance;

/// The closed-form optimum of the LP relaxation — a valid lower bound on
/// the total response time of any feasible schedule.
pub fn lp_lower_bound(instance: &BatchInstance) -> f64 {
    let k = instance.k as f64;
    let mut sizes: Vec<f64> = instance.jobs.iter().map(|j| j.size).collect();
    sizes.sort_by(|a, b| a.partial_cmp(b).expect("finite sizes"));
    let mut prefix = 0.0;
    let mut flow_term = 0.0;
    for &x in &sizes {
        flow_term += (prefix + 0.5 * x) / k;
        prefix += x;
    }
    let cap_term: f64 = instance
        .jobs
        .iter()
        .map(|j| j.size / (2.0 * j.cap as f64))
        .sum();
    flow_term + cap_term
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::BatchJob;
    use crate::schedule::srpt_k_schedule;

    fn inst(k: u32, jobs: &[(f64, u32)]) -> BatchInstance {
        BatchInstance::new(
            k,
            jobs.iter()
                .map(|&(s, c)| BatchJob { size: s, cap: c })
                .collect(),
        )
    }

    #[test]
    fn single_fully_parallel_job_bound_is_tight() {
        // One job, cap = k: LP* = x/(2k) + x/(2k) = x/k = its completion time.
        let i = inst(4, &[(8.0, 4)]);
        let lb = lp_lower_bound(&i);
        assert!((lb - 2.0).abs() < 1e-12);
        let s = srpt_k_schedule(&i, 1.0);
        assert!((s.total_response_time - lb).abs() < 1e-12);
    }

    #[test]
    fn single_server_srpt_is_within_factor_two_of_lp() {
        // On k = 1 SRPT is optimal; LP* halves the "self" term, so
        // LP* ≤ OPT ≤ 2·LP*.
        let i = inst(1, &[(1.0, 1), (2.0, 1), (3.0, 1)]);
        let lb = lp_lower_bound(&i);
        let opt = srpt_k_schedule(&i, 1.0).total_response_time;
        assert!(lb <= opt + 1e-12);
        assert!(opt <= 2.0 * lb + 1e-12);
    }

    #[test]
    fn lower_bound_respects_caps() {
        // A job with cap 1 contributes at least x/2 + … even on many servers.
        let free = lp_lower_bound(&inst(8, &[(8.0, 8)]));
        let capped = lp_lower_bound(&inst(8, &[(8.0, 1)]));
        assert!(capped > free);
        assert!((capped - (0.5 + 4.0)).abs() < 1e-12); // 8/(2·8) + 8/2
    }

    #[test]
    fn bound_is_below_every_schedule_on_random_instances() {
        for seed in 0..10 {
            let i = BatchInstance::random_uniform(80, 4, 10.0, seed);
            let lb = lp_lower_bound(&i);
            let c = srpt_k_schedule(&i, 1.0).total_response_time;
            assert!(lb <= c + 1e-9, "seed {seed}: LB {lb} > C {c}");
        }
    }

    #[test]
    fn order_of_jobs_does_not_change_the_bound() {
        let a = inst(4, &[(1.0, 2), (5.0, 1), (3.0, 4)]);
        let b = inst(4, &[(5.0, 1), (3.0, 4), (1.0, 2)]);
        assert!((lp_lower_bound(&a) - lp_lower_bound(&b)).abs() < 1e-12);
    }
}
