//! Property tests of the streaming binary trace format (PR 8 satellite):
//!
//! 1. **Binary ⇄ text bit-exactness**: any trace of finite nonnegative
//!    arrivals round-trips through *both* on-disk formats with every
//!    `f64` bit preserved, and the two formats agree with each other —
//!    including the empty and single-arrival edge cases;
//! 2. **Streaming reader fidelity**: pulling a binary trace through the
//!    chunked [`BinaryTraceReader`] yields the same arrival sequence as
//!    loading it whole, so bounded-memory replay cannot drift from
//!    in-memory replay.

use eirs_repro::sim::arrivals::{Arrival, ArrivalSource, ArrivalTrace};
use eirs_repro::sim::trace::{load_binary, save_binary, sniff_binary, BinaryTraceReader};
use eirs_repro::sim::JobClass;
use proptest::prelude::*;
use std::path::PathBuf;

/// Fresh temp-file path unique to this process and test label.
fn temp_path(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eirs-trace-prop-{}-{label}", std::process::id()))
}

/// Builds a time-sorted trace from raw draws: interarrival gaps keep the
/// times nondecreasing, class bit picks inelastic/elastic.
fn build_trace(raw: &[(f64, f64, bool)]) -> ArrivalTrace {
    let mut t = 0.0;
    let arrivals = raw
        .iter()
        .map(|&(gap, size, inelastic)| {
            t += gap;
            Arrival {
                time: t,
                class: if inelastic {
                    JobClass::Inelastic
                } else {
                    JobClass::Elastic
                },
                size,
            }
        })
        .collect();
    ArrivalTrace::new(arrivals)
}

/// Asserts two traces are identical down to the last mantissa bit.
fn assert_bit_identical(a: &ArrivalTrace, b: &ArrivalTrace, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: arrival count differs");
    for (i, (x, y)) in a.arrivals().iter().zip(b.arrivals()).enumerate() {
        assert_eq!(
            x.time.to_bits(),
            y.time.to_bits(),
            "{what}: time bits differ at record {i}"
        );
        assert_eq!(
            x.size.to_bits(),
            y.size.to_bits(),
            "{what}: size bits differ at record {i}"
        );
        assert_eq!(x.class, y.class, "{what}: class differs at record {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated trace survives binary save/load, text save/load, and
    /// chunked streaming with every bit intact — all three views agree.
    #[test]
    fn binary_and_text_round_trips_are_bit_exact(
        raw in prop::collection::vec((0.0f64..3.0, 0.001f64..50.0, 0usize..2), 0..40),
        case in 0u64..u64::MAX,
    ) {
        let raw: Vec<(f64, f64, bool)> =
            raw.into_iter().map(|(g, s, c)| (g, s, c == 0)).collect();
        let trace = build_trace(&raw);

        let bin = temp_path(&format!("bin-{case:016x}"));
        let txt = temp_path(&format!("txt-{case:016x}"));
        save_binary(&trace, &bin).expect("binary save");
        trace.save(&txt).expect("text save");

        // Both formats reload to the original, bit for bit.
        let from_bin = load_binary(&bin).expect("binary load");
        let from_txt = ArrivalTrace::load(&txt).expect("text load");
        assert_bit_identical(&trace, &from_bin, "binary round-trip");
        assert_bit_identical(&trace, &from_txt, "text round-trip");

        // The sniffing loader tells the two apart.
        prop_assert!(sniff_binary(&bin).expect("sniff bin"));
        prop_assert!(!sniff_binary(&txt).expect("sniff txt"));

        // Chunked streaming yields the identical arrival sequence.
        let mut reader = BinaryTraceReader::open(&bin).expect("streaming open");
        prop_assert_eq!(reader.len(), trace.len() as u64);
        let mut streamed = Vec::new();
        while let Some(a) = reader.next_arrival() {
            streamed.push(a);
        }
        assert_bit_identical(&trace, &ArrivalTrace::new(streamed), "chunked stream");

        let _ = std::fs::remove_file(&bin);
        let _ = std::fs::remove_file(&txt);
    }
}

/// The empty trace is a legal citizen of both formats.
#[test]
fn empty_trace_round_trips() {
    let trace = ArrivalTrace::new(Vec::new());
    let bin = temp_path("empty-bin");
    let txt = temp_path("empty-txt");
    save_binary(&trace, &bin).expect("binary save");
    trace.save(&txt).expect("text save");

    let from_bin = load_binary(&bin).expect("binary load");
    let from_txt = ArrivalTrace::load(&txt).expect("text load");
    assert!(from_bin.is_empty() && from_txt.is_empty());

    let mut reader = BinaryTraceReader::open(&bin).expect("open");
    assert!(reader.is_empty());
    assert!(
        reader.next_arrival().is_none(),
        "empty stream yields nothing"
    );

    let _ = std::fs::remove_file(&bin);
    let _ = std::fs::remove_file(&txt);
}

/// A single arrival — the smallest nonempty trace — keeps awkward float
/// values (subnormal-adjacent size, long-mantissa time) bit-exact.
#[test]
fn single_arrival_round_trips_bit_exact() {
    let trace = ArrivalTrace::new(vec![Arrival {
        time: 0.1f64.next_up(),
        class: JobClass::Elastic,
        size: f64::MIN_POSITIVE * 8.0,
    }]);
    let bin = temp_path("single-bin");
    let txt = temp_path("single-txt");
    save_binary(&trace, &bin).expect("binary save");
    trace.save(&txt).expect("text save");
    assert_bit_identical(&trace, &load_binary(&bin).expect("load"), "binary");
    assert_bit_identical(&trace, &ArrivalTrace::load(&txt).expect("load"), "text");
    let _ = std::fs::remove_file(&bin);
    let _ = std::fs::remove_file(&txt);
}
