//! Property tests for Theorem 3: on every arrival sequence, Inelastic-First
//! accumulates no more total work `W(t)` and no more inelastic work
//! `W_I(t)` than any policy in class P (work-conserving, inelastic-FCFS),
//! at every instant `t`.
//!
//! The theorem's sample-path argument never uses exponentiality, so the
//! property is tested over exponential, uniform, and heavy-tailed job sizes
//! and over randomized class-P policies.

use eirs_queueing::distributions::{BoundedPareto, Exponential, SizeDistribution, UniformSize};
use eirs_sim::coupling::{dominates_throughout, WorkTrajectory};
use eirs_sim::policy::{ElasticFirst, FairShare, InelasticFirst, TablePolicy};
use eirs_sim::{Arrival, ArrivalTrace, JobClass};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random trace with the given size law and arrival intensity.
fn random_trace(seed: u64, n: usize, dist: &dyn SizeDistribution, mean_gap: f64) -> ArrivalTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let arrivals = (0..n)
        .map(|_| {
            t += -(1.0 - rng.random::<f64>()).ln() * mean_gap;
            let class = if rng.random::<f64>() < 0.5 {
                JobClass::Inelastic
            } else {
                JobClass::Elastic
            };
            Arrival {
                time: t,
                class,
                size: dist.sample(&mut rng),
            }
        })
        .collect();
    ArrivalTrace::new(arrivals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn if_dominates_random_class_p_policies_exponential_sizes(
        seed in 0u64..10_000,
        policy_seed in 0u64..10_000,
        k in 2u32..8,
    ) {
        let dist = Exponential::new(1.0);
        let trace = random_trace(seed, 120, &dist, 0.4);
        let w_if = WorkTrajectory::record(&InelasticFirst, &trace, k);
        let policy = TablePolicy::random_class_p(policy_seed);
        let w_p = WorkTrajectory::record(&policy, &trace, k);
        let violation = dominates_throughout(&w_if, &w_p, 1e-7);
        prop_assert!(violation.is_none(), "violation at t = {violation:?}");
    }

    #[test]
    fn if_dominates_with_uniform_sizes(seed in 0u64..10_000, k in 2u32..6) {
        let dist = UniformSize::new(0.1, 3.0);
        let trace = random_trace(seed, 100, &dist, 0.5);
        let w_if = WorkTrajectory::record(&InelasticFirst, &trace, k);
        for policy_seed in [1u64, 2, 3] {
            let policy = TablePolicy::random_class_p(policy_seed);
            let w_p = WorkTrajectory::record(&policy, &trace, k);
            prop_assert!(dominates_throughout(&w_if, &w_p, 1e-7).is_none());
        }
    }

    #[test]
    fn if_dominates_with_heavy_tailed_sizes(seed in 0u64..10_000) {
        let dist = BoundedPareto::new(1.3, 0.2, 50.0);
        let trace = random_trace(seed, 80, &dist, 1.0);
        let w_if = WorkTrajectory::record(&InelasticFirst, &trace, 4);
        let w_ef = WorkTrajectory::record(&ElasticFirst, &trace, 4);
        let w_fs = WorkTrajectory::record(&FairShare, &trace, 4);
        prop_assert!(dominates_throughout(&w_if, &w_ef, 1e-6).is_none());
        prop_assert!(dominates_throughout(&w_if, &w_fs, 1e-6).is_none());
    }
}

#[test]
fn steady_state_work_ordering_holds_in_expectation() {
    // Theorem 3's corollary: E[W^IF] ≤ E[W^π] and E[W_I^IF] ≤ E[W_I^π].
    // Measured from the job-level DES in steady state.
    let run = |policy: &dyn eirs_sim::policy::AllocationPolicy, seed: u64| {
        eirs_sim::des::run_markovian(policy, 4, 1.0, 0.8, 1.0, 0.5, seed, 30_000, 300_000)
    };
    let r_if = run(&InelasticFirst, 3);
    for (name, report) in [
        ("EF", run(&ElasticFirst, 3)),
        ("FairShare", run(&FairShare, 3)),
        ("RandomP", run(&TablePolicy::random_class_p(9), 3)),
    ] {
        // 3% slack for Monte-Carlo noise (different event sequences).
        assert!(
            r_if.mean_work <= report.mean_work * 1.03,
            "{name}: E[W] IF {} vs {}",
            r_if.mean_work,
            report.mean_work
        );
        assert!(
            r_if.mean_work_inelastic <= report.mean_work_inelastic * 1.03,
            "{name}: E[W_I] IF {} vs {}",
            r_if.mean_work_inelastic,
            report.mean_work_inelastic
        );
    }
}

#[test]
fn lemma4_links_work_and_number_in_system() {
    // Lemma 4: E[W_I] = E[N_I]/µ_I and E[W_E] = E[N_E]/µ_E for any policy.
    for (policy, seed) in [
        (
            &InelasticFirst as &dyn eirs_sim::policy::AllocationPolicy,
            11u64,
        ),
        (&ElasticFirst, 12),
        (&FairShare, 13),
    ] {
        let (mu_i, mu_e) = (1.5, 0.75);
        let r =
            eirs_sim::des::run_markovian(policy, 4, 1.0, 0.8, mu_i, mu_e, seed, 30_000, 300_000);
        let w_i_pred = r.mean_num_inelastic / mu_i;
        assert!(
            (r.mean_work_inelastic - w_i_pred).abs() / w_i_pred < 0.04,
            "{}: E[W_I] {} vs E[N_I]/µ_I {}",
            policy.name(),
            r.mean_work_inelastic,
            w_i_pred
        );
        let w_e_meas = r.mean_work - r.mean_work_inelastic;
        let w_e_pred = r.mean_num_elastic / mu_e;
        assert!(
            (w_e_meas - w_e_pred).abs() / w_e_pred < 0.04,
            "{}: E[W_E] {} vs E[N_E]/µ_E {}",
            policy.name(),
            w_e_meas,
            w_e_pred
        );
    }
}

#[test]
fn ef_does_not_dominate_if_ever_in_inelastic_work() {
    // Sanity that the dominance check has teeth: the reverse comparison
    // must fail on traces where elastic jobs delay inelastic ones.
    let dist = Exponential::new(1.0);
    let mut found_violation = false;
    for seed in 0..10 {
        let trace = random_trace(seed, 100, &dist, 0.4);
        let w_if = WorkTrajectory::record(&InelasticFirst, &trace, 4);
        let w_ef = WorkTrajectory::record(&ElasticFirst, &trace, 4);
        if dominates_throughout(&w_ef, &w_if, 1e-9).is_some() {
            found_violation = true;
            break;
        }
    }
    assert!(
        found_violation,
        "EF never violated dominance over IF — check the comparator"
    );
}

#[test]
fn dominance_survives_bursty_arrivals() {
    // Theorem 3 is a sample-path statement: nothing in it requires Poisson
    // arrivals. Replay bursty (batch-Poisson) traffic and check the same
    // pathwise dominance.
    use eirs_sim::arrivals::{ArrivalSource, BurstyStream};
    for seed in 0..6 {
        let mut stream = BurstyStream::new(
            0.8,
            0.6,
            0.5,
            Box::new(Exponential::new(1.0)),
            Box::new(Exponential::new(0.7)),
            seed,
        );
        let mut arrivals = Vec::new();
        for _ in 0..150 {
            arrivals.push(stream.next_arrival().expect("infinite stream"));
        }
        let trace = ArrivalTrace::new(arrivals);
        let w_if = WorkTrajectory::record(&InelasticFirst, &trace, 4);
        for policy_seed in [1u64, 2] {
            let policy = TablePolicy::random_class_p(policy_seed);
            let w_p = WorkTrajectory::record(&policy, &trace, 4);
            assert!(
                dominates_throughout(&w_if, &w_p, 1e-7).is_none(),
                "seed {seed}, policy {policy_seed}"
            );
        }
        let w_ef = WorkTrajectory::record(&ElasticFirst, &trace, 4);
        assert!(
            dominates_throughout(&w_if, &w_ef, 1e-7).is_none(),
            "seed {seed} vs EF"
        );
    }
}
