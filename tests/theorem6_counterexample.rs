//! Integration test for Theorem 6: with `k = 2`, `µ_E = 2µ_I`, no arrivals,
//! and initial state (2 inelastic, 1 elastic), Elastic-First strictly beats
//! Inelastic-First — so IF is not optimal when `µ_I < µ_E`.
//!
//! Three independent routes to the same numbers:
//! exact absorbing-chain analysis, the paper's closed forms (35/12 and
//! 33/12), and Monte-Carlo replications of the job-level DES.

use eirs_core::counterexample::{expected_total_response_closed, theorem6_values};
use eirs_queueing::distributions::SizeDistribution;
use eirs_queueing::Exponential;
use eirs_sim::des::{DesConfig, Simulation};
use eirs_sim::policy::{AllocationPolicy, ElasticFirst, InelasticFirst};
use eirs_sim::stats::ReplicationStats;
use eirs_sim::{ArrivalTrace, JobClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn exact_values_match_paper_closed_forms() {
    let mu_i = 1.0;
    let (want_if, want_ef) = theorem6_values(mu_i);
    let got_if =
        expected_total_response_closed(&InelasticFirst, 2, 2, 1, mu_i, 2.0 * mu_i).unwrap();
    let got_ef = expected_total_response_closed(&ElasticFirst, 2, 2, 1, mu_i, 2.0 * mu_i).unwrap();
    assert!((got_if - want_if).abs() < 1e-12, "IF {got_if} vs {want_if}");
    assert!((got_ef - want_ef).abs() < 1e-12, "EF {got_ef} vs {want_ef}");
    assert!(got_ef < got_if);
}

fn monte_carlo_total_response(
    policy: &dyn AllocationPolicy,
    reps: u64,
    seed: u64,
) -> ReplicationStats {
    let exp_i = Exponential::new(1.0);
    let exp_e = Exponential::new(2.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = ReplicationStats::new();
    let empty = ArrivalTrace::default();
    for _ in 0..reps {
        let mut sim = Simulation::new(DesConfig::drain(2));
        sim.preload([
            (JobClass::Inelastic, exp_i.sample(&mut rng)),
            (JobClass::Inelastic, exp_i.sample(&mut rng)),
            (JobClass::Elastic, exp_e.sample(&mut rng)),
        ]);
        let mut stream = empty.stream();
        let r = sim.run(policy, &mut stream);
        stats.push(r.total_response);
    }
    stats
}

#[test]
fn monte_carlo_confirms_both_closed_forms() {
    let reps = 60_000;
    let s_if = monte_carlo_total_response(&InelasticFirst, reps, 41);
    let s_ef = monte_carlo_total_response(&ElasticFirst, reps, 42);
    let (want_if, want_ef) = theorem6_values(1.0);
    let ci_if = s_if.confidence_interval();
    let ci_ef = s_ef.confidence_interval();
    // Allow 2x the CI half-width for coverage slack.
    assert!(
        (ci_if.mean - want_if).abs() < 2.0 * ci_if.half_width.max(0.01),
        "IF MC {} ± {} vs exact {want_if}",
        ci_if.mean,
        ci_if.half_width
    );
    assert!(
        (ci_ef.mean - want_ef).abs() < 2.0 * ci_ef.half_width.max(0.01),
        "EF MC {} ± {} vs exact {want_ef}",
        ci_ef.mean,
        ci_ef.half_width
    );
    assert!(
        ci_ef.mean < ci_if.mean,
        "EF must beat IF in Monte Carlo too"
    );
}

#[test]
fn counterexample_region_requires_mu_i_below_mu_e() {
    // Scan the rate ratio: EF beats IF only once µ_E is sufficiently above
    // µ_I; at and below equality IF is at least as good (Theorems 1/5).
    for ratio in [0.5, 0.8, 1.0] {
        let g_if = expected_total_response_closed(&InelasticFirst, 2, 2, 1, 1.0, ratio).unwrap();
        let g_ef = expected_total_response_closed(&ElasticFirst, 2, 2, 1, 1.0, ratio).unwrap();
        assert!(
            g_if <= g_ef + 1e-12,
            "ratio {ratio}: IF {g_if} vs EF {g_ef}"
        );
    }
    for ratio in [1.8, 2.0, 3.0] {
        let g_if = expected_total_response_closed(&InelasticFirst, 2, 2, 1, 1.0, ratio).unwrap();
        let g_ef = expected_total_response_closed(&ElasticFirst, 2, 2, 1, 1.0, ratio).unwrap();
        assert!(
            g_ef < g_if,
            "ratio {ratio}: EF {g_ef} should beat IF {g_if}"
        );
    }
}

#[test]
fn larger_closed_systems_show_the_same_reversal() {
    // The counterexample generalizes: more inelastic jobs, larger k.
    let g_if = expected_total_response_closed(&InelasticFirst, 4, 4, 2, 1.0, 4.0).unwrap();
    let g_ef = expected_total_response_closed(&ElasticFirst, 4, 4, 2, 1.0, 4.0).unwrap();
    assert!(g_ef < g_if, "EF {g_ef} vs IF {g_if}");
    // And reverses back for µ_I > µ_E.
    let g_if = expected_total_response_closed(&InelasticFirst, 4, 4, 2, 4.0, 1.0).unwrap();
    let g_ef = expected_total_response_closed(&ElasticFirst, 4, 4, 2, 4.0, 1.0).unwrap();
    assert!(g_if < g_ef);
}
