//! Integration test for the paper's Section 5 claim: "We compared our
//! analysis with simulation, and all numbers agree within 1%."
//!
//! The analytic pipeline (Coxian busy-period transformation + QBD matrix
//! analytics, `eirs-core`) is checked against the state-level CTMC
//! simulator (`eirs-sim`), which shares no code with it beyond policy
//! definitions. Monte-Carlo noise at the chosen run lengths is a few tenths
//! of a percent, so the 1.5% gates below leave headroom over the paper's 1%
//! while still failing on any real modeling bug.

use eirs_core::prelude::*;
use eirs_sim::ctmc::{simulate_state_level, CtmcSimConfig};
use eirs_sim::des::run_markovian;

fn sim_cfg(p: &SystemParams, seed: u64, jumps: u64) -> CtmcSimConfig {
    CtmcSimConfig {
        k: p.k,
        lambda_i: p.lambda_i,
        lambda_e: p.lambda_e,
        mu_i: p.mu_i,
        mu_e: p.mu_e,
        jumps,
        warmup_jumps: jumps / 10,
        seed,
    }
}

/// `(k, µ_I, µ_E, ρ, jumps, tolerance)` — high-load points need longer runs
/// because Monte-Carlo autocorrelation grows like `1/(1−ρ)²`.
const CASES: [(u32, f64, f64, f64, u64, f64); 6] = [
    (4, 2.0, 1.0, 0.5, 4_000_000, 0.015),
    (4, 1.0, 1.0, 0.7, 6_000_000, 0.015),
    (4, 0.5, 1.5, 0.7, 6_000_000, 0.015),
    (4, 0.25, 1.0, 0.9, 24_000_000, 0.02),
    (2, 3.0, 1.0, 0.5, 4_000_000, 0.015),
    (8, 1.0, 2.0, 0.7, 6_000_000, 0.015),
];

#[test]
fn inelastic_first_analysis_matches_simulation_across_regimes() {
    // Points span Figure 4's regions: µ_I > µ_E, equal, µ_I < µ_E; three loads.
    for (idx, &(k, mu_i, mu_e, rho, jumps, tol)) in CASES.iter().enumerate() {
        let p = SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho).unwrap();
        let analytic = analyze_inelastic_first(&p).unwrap().mean_response;
        let sim = simulate_state_level(&InelasticFirst, sim_cfg(&p, 1000 + idx as u64, jumps))
            .mean_response;
        let rel = (analytic - sim).abs() / sim;
        assert!(
            rel < tol,
            "IF case {idx} (k={k}, µI={mu_i}, µE={mu_e}, ρ={rho}): analytic {analytic} vs sim {sim} (rel {rel:.4})"
        );
    }
}

#[test]
fn elastic_first_analysis_matches_simulation_across_regimes() {
    for (idx, &(k, mu_i, mu_e, rho, jumps, tol)) in CASES.iter().enumerate() {
        let p = SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho).unwrap();
        let analytic = analyze_elastic_first(&p).unwrap().mean_response;
        let sim = simulate_state_level(&ElasticFirst, sim_cfg(&p, 2000 + idx as u64, jumps))
            .mean_response;
        let rel = (analytic - sim).abs() / sim;
        assert!(
            rel < tol,
            "EF case {idx} (k={k}, µI={mu_i}, µE={mu_e}, ρ={rho}): analytic {analytic} vs sim {sim} (rel {rel:.4})"
        );
    }
}

#[test]
fn per_class_response_times_match_simulation() {
    let p = SystemParams::with_equal_lambdas(4, 0.5, 1.0, 0.7).unwrap();
    let a = analyze_inelastic_first(&p).unwrap();
    let s = simulate_state_level(&InelasticFirst, sim_cfg(&p, 31, 4_000_000));
    assert!(
        (a.mean_response_inelastic - s.mean_response_i).abs() / s.mean_response_i < 0.015,
        "T_I: {} vs {}",
        a.mean_response_inelastic,
        s.mean_response_i
    );
    assert!(
        (a.mean_response_elastic - s.mean_response_e).abs() / s.mean_response_e < 0.02,
        "T_E: {} vs {}",
        a.mean_response_elastic,
        s.mean_response_e
    );
}

#[test]
fn job_level_and_analytic_agree_end_to_end() {
    // The job-level DES measures response times directly (no Little's-law
    // detour) — one more independent path to the same number.
    let p = SystemParams::with_equal_lambdas(4, 1.0, 0.5, 0.6).unwrap();
    let a = analyze_inelastic_first(&p).unwrap();
    let r = run_markovian(
        &InelasticFirst,
        p.k,
        p.lambda_i,
        p.lambda_e,
        p.mu_i,
        p.mu_e,
        77,
        50_000,
        600_000,
    );
    let rel = (a.mean_response - r.mean_response).abs() / r.mean_response;
    assert!(
        rel < 0.03,
        "analytic {} vs DES {} (rel {rel:.4})",
        a.mean_response,
        r.mean_response
    );
}

#[test]
fn validation_helper_reports_small_errors() {
    let p = SystemParams::with_equal_lambdas(4, 1.5, 1.0, 0.7).unwrap();
    let row = eirs_core::validation::validate_point(&p, 4_000_000, 5).unwrap();
    assert!(row.rel_err_if() < 0.015, "IF rel err {}", row.rel_err_if());
    assert!(row.rel_err_ef() < 0.015, "EF rel err {}", row.rel_err_ef());
}
