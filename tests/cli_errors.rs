//! CLI error-path contract: a malformed `--policy`/`--workload`/`--family`
//! spec (or unknown command) must print the parse error to stderr in the
//! shared `--<flag> '<spec>': <reason>` format and exit non-zero — never
//! panic. Exercised against the real binary, one subcommand per flag, so
//! the shared error-reporting helper is pinned across
//! `policy`/`scenario`/`optimize`/`serve`.

use std::process::Command;

/// Runs the `eirs` binary and returns `(exit_code, stderr)`.
fn run_eirs(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_eirs"))
        .args(args)
        .output()
        .expect("eirs binary runs");
    let code = out.status.code().expect("no exit code (killed by signal?)");
    (code, String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn malformed_specs_fail_cleanly_with_the_shared_format() {
    for (args, needle) in [
        (
            vec!["policy", "--policy", "nope"],
            "--policy 'nope': unknown policy",
        ),
        (
            vec!["policy", "--policy", "curve:2"],
            "--policy 'curve:2': cannot parse policy",
        ),
        (
            vec!["scenario", "--workload", "bursty:x", "--reps", "2"],
            "--workload 'bursty:x': cannot parse",
        ),
        (
            vec!["scenario", "--workload", "poisson,map:1x2x3", "--reps", "2"],
            "--workload 'map:1x2x3': cannot parse",
        ),
        (
            vec!["scenario", "--policy", "if,reserve:x", "--reps", "2"],
            "--policy 'reserve:x': cannot parse policy",
        ),
        (
            vec!["optimize", "--family", "tabular:0x2"],
            "--family 'tabular:0x2': cannot parse family",
        ),
        (
            vec!["optimize", "--workload", "trace:"],
            "--workload 'trace:': cannot parse",
        ),
        (
            vec!["serve", "--policy", "waterfill:-1"],
            "--policy 'waterfill:-1': cannot parse policy",
        ),
        (
            vec!["serve", "--workload", "nope"],
            "--workload 'nope': unknown",
        ),
        (
            vec!["simulate", "--policy", "threshold:"],
            "--policy 'threshold:': cannot parse policy",
        ),
    ] {
        let (code, stderr) = run_eirs(&args);
        assert_ne!(code, 0, "{args:?} must exit non-zero");
        assert!(
            stderr.contains(needle),
            "{args:?}: stderr missing {needle:?}; got:\n{stderr}"
        );
        assert!(
            stderr.starts_with("error: "),
            "{args:?}: parse failure must report through the single error path"
        );
    }
}

#[test]
fn bad_flag_values_and_unknown_commands_fail_cleanly() {
    for (args, needle) in [
        (vec!["frobnicate"], "unknown command 'frobnicate'"),
        (vec!["--policy", "if"], "malformed argument"),
        (
            vec!["policy", "--k", "four"],
            "cannot parse --k value 'four'",
        ),
        (
            vec!["serve", "--duration", "-5"],
            "--duration must be a positive time",
        ),
        (vec!["serve", "--shards", "0"], "must be at least 1"),
        (vec!["policy", "--reps", "1"], "too few"),
    ] {
        let (code, stderr) = run_eirs(&args);
        assert_ne!(code, 0, "{args:?} must exit non-zero");
        assert!(
            stderr.contains(needle),
            "{args:?}: stderr missing {needle:?}; got:\n{stderr}"
        );
    }
}

#[test]
fn malformed_fault_flags_fail_cleanly() {
    for (args, needle) in [
        (
            vec!["serve", "--churn", "meteor:x=1"],
            "--churn 'meteor:x=1': cannot parse",
        ),
        (
            vec!["serve", "--churn", "crash:mtbf=0,mttr=5"],
            "--churn 'crash:mtbf=0,mttr=5': cannot parse",
        ),
        (
            vec![
                "scenario",
                "--workload",
                "poisson",
                "--churn",
                "crash:mtbf",
                "--reps",
                "2",
            ],
            "--churn 'crash:mtbf': cannot parse",
        ),
        (
            vec!["serve", "--shed-limit", "4"],
            "--shed-limit only applies under --churn",
        ),
        (
            vec![
                "serve",
                "--churn",
                "crash:mtbf=30,mttr=6",
                "--shed-limit",
                "0",
            ],
            "--shed-limit must be at least 1",
        ),
        (vec!["serve", "--kill-after", "10"], "need --journal"),
        (
            vec!["serve", "--journal", "/tmp/x.wal", "--snapshot-at", "10"],
            "--snapshot-at needs --snapshot",
        ),
        (
            vec!["serve", "--recover", "true"],
            "--recover true needs both --snapshot",
        ),
        (
            vec![
                "serve",
                "--recover",
                "true",
                "--snapshot",
                "/tmp/s.snap",
                "--journal",
                "/tmp/x.wal",
                "--kill-after",
                "5",
            ],
            "cannot be combined with --snapshot-at/--kill-after",
        ),
        (
            vec![
                "serve",
                "--workload",
                "trace:crates/serve/testdata/smoke.trace",
                "--churn",
                "crash:mtbf=30,mttr=6",
            ],
            "needs an explicit --fault-horizon",
        ),
    ] {
        let (code, stderr) = run_eirs(&args);
        assert_ne!(code, 0, "{args:?} must exit non-zero");
        assert!(
            stderr.contains(needle),
            "{args:?}: stderr missing {needle:?}; got:\n{stderr}"
        );
        assert!(
            stderr.starts_with("error: "),
            "{args:?}: fault-flag failure must report through the single error path"
        );
    }
}

#[test]
fn recovery_refuses_identity_mismatches() {
    let dir = std::env::temp_dir().join(format!("eirs-cli-identity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snap = dir.join("run.snap");
    let wal = dir.join("run.wal");
    let base = |extra: &[&str]| {
        let mut v = vec![
            "serve",
            "--policy",
            "fairshare",
            "--workload",
            "poisson",
            "--k",
            "2",
            "--rho",
            "0.6",
            "--duration",
            "80",
            "--churn",
            "crash:mtbf=25,mttr=5",
            "--fault-seed",
            "7",
        ];
        v.extend_from_slice(extra);
        v.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    };
    let snap_s = snap.to_str().unwrap();
    let wal_s = wal.to_str().unwrap();

    // Produce a crashed run: journal everything, snapshot early, kill later.
    let crash_args = base(&[
        "--journal",
        wal_s,
        "--snapshot",
        snap_s,
        "--snapshot-at",
        "40",
        "--kill-after",
        "120",
    ]);
    let crash_refs: Vec<&str> = crash_args.iter().map(String::as_str).collect();
    let (code, stderr) = run_eirs(&crash_refs);
    assert_eq!(code, 0, "crashing run itself must succeed: {stderr}");

    // Recovering under a different fault schedule must be refused: the
    // snapshot's decisions were made against the recorded schedule.
    for (extra, needle) in [
        (
            vec![
                "--recover",
                "true",
                "--snapshot",
                snap_s,
                "--journal",
                wal_s,
                "--fault-seed",
                "8",
            ],
            "churn",
        ),
        (
            vec![
                "--recover",
                "true",
                "--snapshot",
                snap_s,
                "--journal",
                wal_s,
                "--policy",
                "if",
            ],
            "policy",
        ),
    ] {
        let mut args = base(&[]);
        // Drop the baseline --fault-seed/--policy pair if the variant overrides it.
        args.extend(extra.iter().map(|s| s.to_string()));
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let (code, stderr) = run_eirs(&refs);
        assert_ne!(code, 0, "{extra:?} must be refused");
        assert!(
            stderr.contains(needle),
            "{extra:?}: mismatch report must name the {needle}; got:\n{stderr}"
        );
    }

    // The matching identity recovers cleanly.
    let ok_args = base(&[
        "--recover",
        "true",
        "--snapshot",
        snap_s,
        "--journal",
        wal_s,
    ]);
    let ok_refs: Vec<&str> = ok_args.iter().map(String::as_str).collect();
    let (code, stderr) = run_eirs(&ok_refs);
    assert_eq!(code, 0, "matching recovery must succeed: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fuzz_flag_errors_fail_cleanly() {
    for (args, needle) in [
        (
            vec!["fuzz", "--seed", "abc"],
            "cannot parse --seed value 'abc'",
        ),
        (vec!["fuzz", "--budget", "0"], "--budget must be >= 1"),
        (
            vec!["fuzz", "--replay", "bogus"],
            "unknown replay token 'bogus'",
        ),
        (
            // Well-formed shape, corrupted checksum: must be rejected,
            // not replayed as a different cell.
            vec!["fuzz", "--replay", "0123456789abcdef-ffff"],
            "fails its checksum",
        ),
        (
            // Truncated token (seed half only).
            vec!["fuzz", "--replay", "0123456789abcdef"],
            "unknown replay token",
        ),
    ] {
        let (code, stderr) = run_eirs(&args);
        assert_ne!(code, 0, "{args:?} must exit non-zero");
        assert!(
            stderr.contains(needle),
            "{args:?}: stderr missing {needle:?}; got:\n{stderr}"
        );
        assert!(
            stderr.starts_with("error: "),
            "{args:?}: fuzz-flag failure must report through the single error path"
        );
    }
}

/// Corrupt or truncated binary traces fed through `--workload trace:<p>`
/// must hard-error — never be silently truncated to the readable prefix
/// or reinterpreted as an empty trace.
#[test]
fn corrupt_binary_traces_fail_cleanly_through_the_cli() {
    let dir = std::env::temp_dir().join(format!("eirs-cli-badtrace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Truncated: header promises 5 records, body holds 4 stray bytes.
    let truncated = dir.join("truncated.bt");
    let mut bytes = b"eirsbt01".to_vec();
    bytes.extend_from_slice(&5u64.to_le_bytes());
    bytes.extend_from_slice(b"AAAA");
    std::fs::write(&truncated, &bytes).expect("write fixture");

    // Unfinished write: the provisional u64::MAX count a crashed
    // `BinaryTraceWriter` leaves behind.
    let unfinished = dir.join("unfinished.bt");
    let mut bytes = b"eirsbt01".to_vec();
    bytes.extend_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&unfinished, &bytes).expect("write fixture");

    // Corrupt record: length-consistent, but the class byte is garbage.
    let badclass = dir.join("badclass.bt");
    let mut bytes = b"eirsbt01".to_vec();
    bytes.extend_from_slice(&1u64.to_le_bytes());
    bytes.extend_from_slice(&1.0f64.to_le_bytes());
    bytes.extend_from_slice(&2.0f64.to_le_bytes());
    bytes.extend_from_slice(&[9u8, 0, 0, 0, 0, 0, 0, 0]);
    std::fs::write(&badclass, &bytes).expect("write fixture");

    for (path, needle) in [
        (&truncated, "length mismatch"),
        (&unfinished, "absurd record count"),
        (&badclass, "invalid class byte"),
    ] {
        let spec = format!("trace:{}", path.display());
        let args = ["scenario", "--workload", &spec, "--reps", "2"];
        let (code, stderr) = run_eirs(&args);
        assert_ne!(code, 0, "{} must be rejected", path.display());
        assert!(
            stderr.contains(needle),
            "{}: stderr missing {needle:?}; got:\n{stderr}",
            path.display()
        );
        assert!(
            stderr.starts_with("error: "),
            "{}: corrupt trace must report through the single error path",
            path.display()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn well_formed_serve_run_exits_zero_with_machine_output() {
    let out = Command::new(env!("CARGO_BIN_EXE_eirs"))
        .args([
            "serve",
            "--policy",
            "threshold:3",
            "--workload",
            "poisson",
            "--k",
            "2",
            "--rho",
            "0.5",
            "--duration",
            "50",
            "--json",
            "true",
        ])
        .output()
        .expect("eirs binary runs");
    assert!(out.status.success(), "serve run failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"eirs-serve/v1\""), "{stdout}");
    assert!(stdout.contains("\"decision_digest\": \"0x"), "{stdout}");
}

#[test]
fn network_flag_errors_fail_cleanly() {
    for (args, needle) in [
        // The networked / hot-swap / replay flag interlocks of `serve`.
        (
            vec!["serve", "--listen", "not-an-address"],
            "cannot listen on not-an-address",
        ),
        (
            vec!["serve", "--swap-at", "100"],
            "--swap-policy and --swap-at go together",
        ),
        (
            vec!["serve", "--swap-policy", "threshold:3"],
            "--swap-policy and --swap-at go together",
        ),
        (
            vec!["serve", "--swap-policy", "bogus!!", "--swap-at", "10"],
            "--swap-policy 'bogus!!':",
        ),
        (
            vec![
                "serve",
                "--swap-policy",
                "optimize:nofamily",
                "--swap-at",
                "10",
            ],
            "--swap-policy 'optimize:nofamily':",
        ),
        (
            vec!["serve", "--queue-cap", "16"],
            "only apply with --listen",
        ),
        (vec!["serve", "--shed", "true"], "only apply with --listen"),
        (
            vec!["serve", "--drain", "true"],
            "--drain only applies with --replay-journal",
        ),
        (
            vec![
                "serve",
                "--replay-journal",
                "/tmp/x.wal",
                "--journal",
                "/tmp/y.wal",
            ],
            "--replay-journal is a standalone mode",
        ),
        (
            vec![
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--recover",
                "true",
                "--snapshot",
                "/tmp/s",
                "--journal",
                "/tmp/j",
            ],
            "--listen serves live connections",
        ),
        (
            vec!["serve", "--replay-journal", "/definitely/not/here.wal"],
            "cannot replay journal",
        ),
        // The client subcommand's own interlocks.
        (vec!["client"], "client needs --connect"),
        (
            vec!["client", "--connect", "127.0.0.1:1", "--clients", "0"],
            "--clients must be at least 1",
        ),
        (
            vec!["client", "--connect", "127.0.0.1:1", "--swap-after", "5"],
            "--swap-after needs --swap",
        ),
    ] {
        let (code, stderr) = run_eirs(&args);
        assert_ne!(code, 0, "{args:?} must be rejected");
        assert!(
            stderr.starts_with("error: "),
            "{args:?}: must report through the single error path; got:\n{stderr}"
        );
        assert!(
            stderr.contains(needle),
            "{args:?}: stderr missing {needle:?}; got:\n{stderr}"
        );
    }
}

#[test]
fn client_refuses_a_dead_endpoint_cleanly() {
    // Nothing listens on this port of TEST-NET; connect must fail with a
    // clean error, not a hang (the client only retries at the protocol
    // level, never the transport level).
    let (code, stderr) = run_eirs(&[
        "client",
        "--connect",
        "127.0.0.1:1",
        "--workload",
        "trace:crates/serve/testdata/smoke.trace",
    ]);
    assert_ne!(code, 0);
    assert!(stderr.contains("connect"), "stderr:\n{stderr}");
}
