//! CLI error-path contract: a malformed `--policy`/`--workload`/`--family`
//! spec (or unknown command) must print the parse error to stderr in the
//! shared `--<flag> '<spec>': <reason>` format and exit non-zero — never
//! panic. Exercised against the real binary, one subcommand per flag, so
//! the shared error-reporting helper is pinned across
//! `policy`/`scenario`/`optimize`/`serve`.

use std::process::Command;

/// Runs the `eirs` binary and returns `(exit_code, stderr)`.
fn run_eirs(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_eirs"))
        .args(args)
        .output()
        .expect("eirs binary runs");
    let code = out.status.code().expect("no exit code (killed by signal?)");
    (code, String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn malformed_specs_fail_cleanly_with_the_shared_format() {
    for (args, needle) in [
        (
            vec!["policy", "--policy", "nope"],
            "--policy 'nope': unknown policy",
        ),
        (
            vec!["policy", "--policy", "curve:2"],
            "--policy 'curve:2': cannot parse policy",
        ),
        (
            vec!["scenario", "--workload", "bursty:x", "--reps", "2"],
            "--workload 'bursty:x': cannot parse",
        ),
        (
            vec!["scenario", "--workload", "poisson,map:1x2x3", "--reps", "2"],
            "--workload 'map:1x2x3': cannot parse",
        ),
        (
            vec!["scenario", "--policy", "if,reserve:x", "--reps", "2"],
            "--policy 'reserve:x': cannot parse policy",
        ),
        (
            vec!["optimize", "--family", "tabular:0x2"],
            "--family 'tabular:0x2': cannot parse family",
        ),
        (
            vec!["optimize", "--workload", "trace:"],
            "--workload 'trace:': cannot parse",
        ),
        (
            vec!["serve", "--policy", "waterfill:-1"],
            "--policy 'waterfill:-1': cannot parse policy",
        ),
        (
            vec!["serve", "--workload", "nope"],
            "--workload 'nope': unknown",
        ),
        (
            vec!["simulate", "--policy", "threshold:"],
            "--policy 'threshold:': cannot parse policy",
        ),
    ] {
        let (code, stderr) = run_eirs(&args);
        assert_ne!(code, 0, "{args:?} must exit non-zero");
        assert!(
            stderr.contains(needle),
            "{args:?}: stderr missing {needle:?}; got:\n{stderr}"
        );
        assert!(
            stderr.starts_with("error: "),
            "{args:?}: parse failure must report through the single error path"
        );
    }
}

#[test]
fn bad_flag_values_and_unknown_commands_fail_cleanly() {
    for (args, needle) in [
        (vec!["frobnicate"], "unknown command 'frobnicate'"),
        (vec!["--policy", "if"], "malformed argument"),
        (
            vec!["policy", "--k", "four"],
            "cannot parse --k value 'four'",
        ),
        (
            vec!["serve", "--duration", "-5"],
            "--duration must be a positive time",
        ),
        (vec!["serve", "--shards", "0"], "must be at least 1"),
        (vec!["policy", "--reps", "1"], "too few"),
    ] {
        let (code, stderr) = run_eirs(&args);
        assert_ne!(code, 0, "{args:?} must exit non-zero");
        assert!(
            stderr.contains(needle),
            "{args:?}: stderr missing {needle:?}; got:\n{stderr}"
        );
    }
}

#[test]
fn well_formed_serve_run_exits_zero_with_machine_output() {
    let out = Command::new(env!("CARGO_BIN_EXE_eirs"))
        .args([
            "serve",
            "--policy",
            "threshold:3",
            "--workload",
            "poisson",
            "--k",
            "2",
            "--rho",
            "0.5",
            "--duration",
            "50",
            "--json",
            "true",
        ])
        .output()
        .expect("eirs binary runs");
    assert!(out.status.success(), "serve run failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"eirs-serve/v1\""), "{stdout}");
    assert!(stdout.contains("\"decision_digest\": \"0x"), "{stdout}");
}
