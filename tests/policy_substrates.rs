//! Cross-substrate agreement for the policy-generic pipeline (PR 2
//! acceptance): for each shipped policy family the analytical mean
//! response time must agree with DES within the replication confidence
//! interval, and the MDP-optimal `TabularPolicy` must be analyzable like
//! any other policy — closing the loop `MDP solver → shared policy layer
//! → QBD analysis → DES`.

use eirs_repro::core::analysis::{analyze_policy_with, AnalyzeOptions};
use eirs_repro::core::policy::{parse_policy, AllocationPolicy};
use eirs_repro::core::SystemParams;
use eirs_repro::mdp::{evaluate_allocation_policy, solve_optimal, MdpConfig};
use eirs_repro::sim::replicate::run_markovian_replications;
use eirs_repro::sim::stats::{ConfidenceInterval, ReplicationStats};

/// 10 replications of 150k departures each, on decorrelated seed streams.
fn des_ci(policy: &dyn AllocationPolicy, p: &SystemParams, seed: u64) -> ConfidenceInterval {
    let reports = run_markovian_replications(
        policy, p.k, p.lambda_i, p.lambda_e, p.mu_i, p.mu_e, seed, 10, 15_000, 150_000,
    );
    let stats: ReplicationStats = reports.iter().map(|r| r.mean_response).collect();
    stats.confidence_interval()
}

/// CI widened by a hair of slack: the replication CI covers Monte-Carlo
/// noise, and the analytical side carries its own ~0.1% modeling error
/// (busy-period Coxian fit / phase truncation), so demand agreement
/// within `max(CI, 0.5%)`.
fn assert_agrees(analytic: f64, ci: &ConfidenceInterval, label: &str) {
    let tol = ci.half_width.max(0.005 * ci.mean);
    assert!(
        (analytic - ci.mean).abs() <= tol,
        "{label}: analysis {analytic} vs DES {} +- {} (tol {tol})",
        ci.mean,
        ci.half_width
    );
}

#[test]
fn every_policy_family_agrees_with_des_within_replication_ci() {
    // The open µ_I < µ_E regime at moderate load, where families differ.
    let p = SystemParams::with_equal_lambdas(4, 0.5, 1.0, 0.6).unwrap();
    let opts = AnalyzeOptions {
        phase_cap: 48,
        ..AnalyzeOptions::default()
    };
    for (idx, spec) in [
        "if",
        "ef",
        "fairshare",
        "threshold:3",
        "curve:2+1i",
        "waterfill:0.5",
        "waterfill:2",
        "reserve:2",
        "random:5",
    ]
    .iter()
    .enumerate()
    {
        let policy = parse_policy(spec).unwrap();
        let analytic = analyze_policy_with(policy.as_ref(), &p, &opts)
            .unwrap()
            .mean_response;
        let ci = des_ci(policy.as_ref(), &p, 900 + idx as u64);
        assert_agrees(analytic, &ci, &policy.name());
    }
}

#[test]
fn threshold_family_agrees_across_loads() {
    // The same family checked where the EF-mode actually engages.
    let opts = AnalyzeOptions {
        phase_cap: 48,
        ..AnalyzeOptions::default()
    };
    for (idx, rho) in [0.4, 0.7].into_iter().enumerate() {
        let p = SystemParams::with_equal_lambdas(4, 0.5, 1.0, rho).unwrap();
        let policy = parse_policy("threshold:2").unwrap();
        let analytic = analyze_policy_with(policy.as_ref(), &p, &opts)
            .unwrap()
            .mean_response;
        let ci = des_ci(policy.as_ref(), &p, 1700 + idx as u64);
        assert_agrees(analytic, &ci, &format!("threshold:2 at rho={rho}"));
    }
}

#[test]
fn mdp_optimal_policy_is_analyzable_and_agrees_with_des() {
    // Solve the MDP in the open regime, bridge to a TabularPolicy, then
    // evaluate that same policy analytically, on the MDP grid, and by DES.
    let p = SystemParams::with_equal_lambdas(2, 0.25, 1.0, 0.6).unwrap();
    let cfg = MdpConfig {
        k: p.k,
        lambda_i: p.lambda_i,
        lambda_e: p.lambda_e,
        mu_i: p.mu_i,
        mu_e: p.mu_e,
        max_i: 60,
        max_j: 60,
        allow_idling: false,
    };
    let opt = solve_optimal(&cfg, 1e-9, 400_000).unwrap();
    let policy = opt.tabular_policy();

    let opts = AnalyzeOptions {
        phase_cap: 48,
        max_level_cut: 60,
        ..AnalyzeOptions::default()
    };
    let analytic = analyze_policy_with(&policy, &p, &opts)
        .unwrap()
        .mean_response;

    // Against the MDP's own evaluation of the same policy (independent
    // numerics: truncated-grid value iteration vs QBD matrix analytics).
    let grid = evaluate_allocation_policy(&cfg, &policy, 1e-9, 400_000).unwrap() / p.total_lambda();
    let rel = (analytic - grid).abs() / grid;
    assert!(rel < 5e-3, "analysis {analytic} vs MDP grid {grid}");

    // Against DES of the same policy.
    let ci = des_ci(&policy, &p, 4242);
    assert_agrees(analytic, &ci, "MdpOptimal(k=2)");

    // And the optimal policy must not lose to EF or IF analytically.
    let ef = analyze_policy_with(parse_policy("ef").unwrap().as_ref(), &p, &opts)
        .unwrap()
        .mean_response;
    let if_ = analyze_policy_with(parse_policy("if").unwrap().as_ref(), &p, &opts)
        .unwrap()
        .mean_response;
    assert!(
        analytic <= ef.min(if_) + 0.01 * analytic,
        "optimal {analytic} vs EF {ef} / IF {if_}"
    );
}
