//! Differential tests of the scenario fuzzer (PR 8 satellite):
//!
//! 1. **Thread-count invariance of generation**: the spec strings a run
//!    seed produces are byte-identical whether the sweep fans out over
//!    1 thread or 4 — cell generation is a pure function of the seed,
//!    so a failure printed on a many-core CI box replays identically on
//!    a laptop;
//! 2. **Grammar closure**: every generated spec fragment re-parses
//!    through the existing workload / policy parsers — the fuzzer can
//!    only emit scenarios the rest of the system accepts;
//! 3. **Replayability**: a full run's cell reports reproduce bit-for-bit
//!    from each cell's printed replay token alone, with no access to the
//!    original run state.

use eirs_repro::core::fuzz::{
    self, cell_seed, parse_replay_token, replay_token, CellSpec, FuzzConfig,
};
use eirs_repro::core::scenario;

/// The fuzz fidelity used by these tests: small enough to keep the suite
/// fast, deterministic in every field that matters for the comparisons.
fn test_config(threads: usize) -> FuzzConfig {
    FuzzConfig {
        budget: 12,
        seed: 0xBEEF_CAFE,
        shrink: false,
        threads,
        replications: 2,
        departures: 400,
        warmup: 40,
        accounting_arrivals: 60,
        ..FuzzConfig::default()
    }
}

/// Same run seed, 1 worker thread vs 4: the generated spec strings (and
/// the full per-cell verdicts behind them) must be byte-identical.
#[test]
fn generated_specs_identical_across_thread_counts() {
    let serial = fuzz::fuzz_run(&test_config(1), &[]);
    let fanned = fuzz::fuzz_run(&test_config(4), &[]);
    assert_eq!(serial.cells.len(), fanned.cells.len());
    for (a, b) in serial.cells.iter().zip(&fanned.cells) {
        assert_eq!(
            a.cell.render(),
            b.cell.render(),
            "spec strings diverge between 1 and 4 threads at cell {}",
            a.index
        );
        assert_eq!(
            a.token, b.token,
            "replay tokens diverge at cell {}",
            a.index
        );
        assert_eq!(
            a.des_mean.to_bits(),
            b.des_mean.to_bits(),
            "DES means diverge bitwise at cell {}",
            a.index
        );
        assert_eq!(a.flags, b.flags, "verdicts diverge at cell {}", a.index);
    }
}

/// Every spec the generator can emit is accepted by the existing parsers:
/// the arrival/service/churn fragments through `parse_workload`, the
/// policy fragment through the policy registry, and the drawn parameters
/// through `SystemParams` (which enforces ρ < 1).
#[test]
fn every_generated_spec_reparses() {
    for raw in 0..300u64 {
        let seed = cell_seed(0x5EED_F00D, raw);
        let cell = CellSpec::from_seed(seed);
        let rendered = cell.render();
        let (workload, policy, params) = cell
            .build()
            .unwrap_or_else(|e| panic!("generated spec failed to parse: {rendered}: {e}"));
        assert!(
            params.load() < 1.0,
            "generated cell is unstable: {rendered} (rho = {})",
            params.load()
        );
        // Tractability must be decided, not panicked, for every cell.
        let _ = workload.tractability(policy.as_ref(), &params);
    }
}

/// Rendered specs are canonical: re-deriving the cell from its seed gives
/// the same string, and the replay token embeds exactly that seed.
#[test]
fn render_is_pure_and_tokens_round_trip() {
    for raw in 0..64u64 {
        let seed = cell_seed(7, raw);
        let a = CellSpec::from_seed(seed).render();
        let b = CellSpec::from_seed(seed).render();
        assert_eq!(a, b, "render is not a pure function of the seed");
        let token = replay_token(seed);
        assert_eq!(
            parse_replay_token(&token).expect("token round-trip"),
            seed,
            "token {token} did not decode to its seed"
        );
    }
}

/// A flagged-or-not cell report reproduces from its replay token alone:
/// the token is the complete failure artifact, not a pointer into the
/// original run.
#[test]
fn cell_reports_reproduce_from_replay_token_alone() {
    let cfg = test_config(2);
    let run = fuzz::fuzz_run(&cfg, &[]);
    for report in &run.cells {
        let seed = parse_replay_token(&report.token).expect("valid token");
        let cell = CellSpec::from_seed(seed);
        assert_eq!(cell.render(), report.cell.render());
        let replayed = fuzz::check_cell(0, &cell, &cfg, &[]);
        assert_eq!(
            replayed.des_mean.to_bits(),
            report.des_mean.to_bits(),
            "replayed DES mean differs bitwise for {}",
            report.token
        );
        assert_eq!(
            replayed.ci_half_width.to_bits(),
            report.ci_half_width.to_bits(),
            "replayed CI half-width differs bitwise for {}",
            report.token
        );
        assert_eq!(replayed.flags, report.flags);
    }
}

/// The generator's arrival/service fragments are drawn from the same
/// grammar the CLI documents — spot-check that each rendered fragment is
/// one `parse_workload` accepts standalone.
#[test]
fn spec_fragments_use_the_documented_grammar() {
    for raw in 0..120u64 {
        let cell = CellSpec::from_seed(cell_seed(99, raw));
        let churn = cell.churn.as_deref();
        scenario::parse_workload(
            &cell.arrivals,
            Some(&cell.service_i),
            Some(&cell.service_e),
            churn,
        )
        .unwrap_or_else(|e| {
            panic!(
                "fragment rejected: arrivals={} service_i={} service_e={}: {e}",
                cell.arrivals, cell.service_i, cell.service_e
            )
        });
    }
}
