//! Smoke test of the façade crate's public API: the README quick-start
//! must keep compiling and producing the paper's qualitative results.

use eirs_repro::prelude::*;

#[test]
fn quickstart_flow_works() {
    // Build a system, analyze both policies, confirm the Theorem 5 ordering.
    let params = SystemParams::with_equal_lambdas(4, 2.0, 1.0, 0.7).unwrap();
    assert!((params.load() - 0.7).abs() < 1e-12);
    let mrt_if = analyze_inelastic_first(&params).unwrap();
    let mrt_ef = analyze_elastic_first(&params).unwrap();
    assert!(mrt_if.mean_response < mrt_ef.mean_response);

    // Simulate the same system and confirm the analysis is in range.
    let report = eirs_repro::sim::des::run_markovian(
        &InelasticFirst,
        params.k,
        params.lambda_i,
        params.lambda_e,
        params.mu_i,
        params.mu_e,
        1,
        20_000,
        200_000,
    );
    let rel = (report.mean_response - mrt_if.mean_response).abs() / report.mean_response;
    assert!(
        rel < 0.05,
        "sim {} vs analysis {}",
        report.mean_response,
        mrt_if.mean_response
    );
}

#[test]
fn all_subcrates_are_reachable() {
    // Numerics.
    let m = eirs_repro::numerics::Matrix::identity(3);
    assert_eq!(m.rows(), 3);
    // Queueing.
    let q = eirs_repro::queueing::MM1::new(0.5, 1.0);
    assert!((q.mean_response_time() - 2.0).abs() < 1e-12);
    // Markov.
    let mut c = eirs_repro::markov::FiniteCtmc::new(2);
    c.add_rate(0, 1, 1.0);
    c.add_rate(1, 0, 1.0);
    assert!((c.stationary_distribution().unwrap()[0] - 0.5).abs() < 1e-12);
    // MDP.
    let cfg = eirs_repro::mdp::MdpConfig {
        k: 1,
        lambda_i: 0.5,
        lambda_e: 0.0,
        mu_i: 1.0,
        mu_e: 1.0,
        max_i: 40,
        max_j: 1,
        allow_idling: false,
    };
    let g =
        eirs_repro::mdp::evaluate_policy(&cfg, &eirs_repro::mdp::if_allocation(1), 1e-9, 100_000)
            .unwrap();
    assert!((g - 1.0).abs() < 1e-4);
    // SRPT.
    let inst = eirs_repro::srpt::BatchInstance::random_uniform(10, 2, 5.0, 1);
    let lb = eirs_repro::srpt::lp_lower_bound(&inst);
    assert!(lb > 0.0);
}

#[test]
fn counterexample_is_exported_at_top_level() {
    let (v_if, v_ef) = eirs_repro::core::theorem6_values(1.0);
    assert!(v_ef < v_if);
}
