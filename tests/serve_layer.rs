//! Cross-layer tests of the online serving subsystem (PR 5 tentpole):
//!
//! 1. **Table bit-identity** (property test): a compiled table's decisions
//!    equal direct `AllocationPolicy::allocate` calls bit for bit across
//!    the full compiled grid *and* in the clamp region beyond it, for
//!    every registered policy family (threshold, switching-curve,
//!    water-filling, reserve, tabular) over randomized grid shapes;
//! 2. **DES exactness**: the compiled-table server replaying a recorded
//!    trace reproduces the simulator's allocation sequence exactly, for
//!    every registry policy;
//! 3. **Sharding determinism**: the decision digest is invariant to the
//!    worker count (the `sweep`/`replicate` discipline), and snapshots
//!    restore to bit-identical continuations;
//! 4. **Serving searched policies**: optimizer output — both
//!    `MdpSolution::tabular_policy()` and an `eirs_opt` family decode —
//!    compiles and serves like any hand-written policy.

use eirs_repro::core::policy::registry;
use eirs_repro::mdp::{solve_optimal, MdpConfig};
use eirs_repro::opt::space::TabularFamily;
use eirs_repro::opt::ParamSpace;
use eirs_repro::queueing::Exponential;
use eirs_repro::serve::engine::digest_decisions;
use eirs_repro::serve::{CompiledTable, EngineConfig, ServeEngine};
use eirs_repro::sim::arrivals::ArrivalTrace;
use eirs_repro::sim::policy::{AllocationPolicy, TabularPolicy};
use proptest::prelude::*;

/// Every registered family plus an explicit dense `TabularPolicy` (the
/// MDP-bridge family), boxed for compilation.
fn all_families(k: u32) -> Vec<Box<dyn AllocationPolicy>> {
    let mut policies = registry(k);
    let kf = k as f64;
    policies.push(Box::new(TabularPolicy::from_fn(
        "tabular-mixed",
        k,
        6,
        6,
        move |i, j| {
            let inelastic = (0.5 * i as f64).min(kf);
            (inelastic, if j > 0 { kf - inelastic } else { 0.0 })
        },
    )));
    policies
}

fn poisson_trace(seed: u64, horizon: f64) -> ArrivalTrace {
    ArrivalTrace::record_poisson(
        0.9,
        0.7,
        Box::new(Exponential::new(1.0)),
        Box::new(Exponential::new(0.8)),
        seed,
        horizon,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 1: compiled decisions are bit-identical to the policy,
    /// on-grid and in the clamp region, for every family.
    #[test]
    fn compiled_tables_are_bit_identical_to_their_policies(
        k in 1u32..7,
        max_i in 2usize..24,
        max_j in 2usize..24,
    ) {
        for policy in all_families(k) {
            let table = CompiledTable::compile(policy, k, max_i, max_j);
            // The compiled grid, its edges, and a clamp region probing
            // more than twice the grid depth in both coordinates.
            for i in 0..=(2 * max_i + 5) {
                for j in 0..=(2 * max_j + 5) {
                    let served = table.lookup(i, j);
                    let direct = table.source().allocate(i, j, k);
                    prop_assert_eq!(
                        served.inelastic.to_bits(),
                        direct.inelastic.to_bits(),
                        "{}: inelastic at ({},{}) grid {}x{}",
                        table.source().name(), i, j, max_i, max_j
                    );
                    prop_assert_eq!(
                        served.elastic.to_bits(),
                        direct.elastic.to_bits(),
                        "{}: elastic at ({},{}) grid {}x{}",
                        table.source().name(), i, j, max_i, max_j
                    );
                }
            }
        }
    }
}

/// The compiled-table server replays a DES-generated trace to the exact
/// DES allocation sequence, for every registered family.
#[test]
fn single_shard_server_reproduces_des_decisions_for_every_family() {
    let k = 3;
    let trace = poisson_trace(17, 60.0);
    for policy in all_families(k) {
        let name = policy.name();
        let reference = eirs_repro::serve::replay::des_decision_log(policy.as_ref(), k, &trace);
        let table = CompiledTable::compile(policy, k, 32, 32);
        let config = EngineConfig::new(k).route_shards(1).record_decisions(true);
        let mut engine = ServeEngine::new(table, config);
        let mut source = trace.stream();
        engine.run(&mut source, f64::INFINITY);
        let served = engine.decision_log();
        assert_eq!(served.len(), reference.len(), "{name}: decision count");
        for (n, (a, b)) in served.iter().zip(&reference).enumerate() {
            assert_eq!((a.i, a.j), (b.i, b.j), "{name}: state at decision {n}");
            assert_eq!(
                a.allocation.inelastic.to_bits(),
                b.allocation.inelastic.to_bits(),
                "{name}: pi_I at decision {n}"
            );
            assert_eq!(
                a.allocation.elastic.to_bits(),
                b.allocation.elastic.to_bits(),
                "{name}: pi_E at decision {n}"
            );
        }
        assert_eq!(
            digest_decisions(&served),
            digest_decisions(&reference),
            "{name}"
        );
    }
}

/// Worker parallelism never changes what is served: same digests, same
/// metrics, shard by shard (the sweep/replicate determinism discipline).
#[test]
fn sharded_processing_is_bit_identical_to_serial() {
    let trace = poisson_trace(23, 150.0);
    let run_with = |workers: usize| {
        let table = CompiledTable::compile(Box::new(eirs_repro::sim::policy::FairShare), 2, 24, 24);
        let config = EngineConfig::new(2)
            .route_shards(8)
            .workers(workers)
            .batch(64);
        let mut engine = ServeEngine::new(table, config);
        let mut source = trace.stream();
        engine.run(&mut source, f64::INFINITY);
        (
            engine.decision_digest(),
            engine.shard_digests(),
            engine.metrics_per_shard(),
        )
    };
    let serial = run_with(1);
    for workers in [2, 4, 8] {
        let parallel = run_with(workers);
        assert_eq!(parallel.0, serial.0, "{workers} workers: combined digest");
        assert_eq!(parallel.1, serial.1, "{workers} workers: shard digests");
        assert_eq!(parallel.2, serial.2, "{workers} workers: shard metrics");
    }
}

/// A snapshot taken mid-stream restores into an engine whose
/// continuation is bit-identical — including through the text format.
#[test]
fn snapshot_restores_to_a_bit_identical_continuation() {
    let trace = poisson_trace(31, 200.0);
    let table =
        || CompiledTable::compile(Box::new(eirs_repro::sim::policy::InelasticFirst), 2, 24, 24);
    let config = EngineConfig::new(2).route_shards(4).batch(32);
    let mut original = ServeEngine::new(table(), config);
    let half = trace.len() / 2;
    original.ingest_batch(&trace.arrivals()[..half]);

    // Round-trip the snapshot through its serialized text form.
    let snap = original.snapshot();
    let mut buf = Vec::new();
    snap.to_writer(&mut buf).unwrap();
    let parsed =
        eirs_repro::serve::EngineSnapshot::from_reader(&mut std::io::Cursor::new(buf)).unwrap();
    assert_eq!(parsed, snap);

    let mut restored = ServeEngine::from_snapshot(table(), config, &parsed).unwrap();
    original.ingest_batch(&trace.arrivals()[half..]);
    original.drain();
    restored.ingest_batch(&trace.arrivals()[half..]);
    restored.drain();
    assert_eq!(restored.decision_digest(), original.decision_digest());
    assert_eq!(restored.metrics_total(), original.metrics_total());
}

/// Optimizer output serves online: the MDP-optimal tabular policy and an
/// `eirs_opt` tabular-family decode both compile into tables whose
/// decisions stay bit-identical to the source policy, and both run
/// through the sharded engine.
#[test]
fn searched_policies_compile_and_serve() {
    let k = 2;
    let cfg = MdpConfig {
        k,
        lambda_i: 0.5,
        lambda_e: 0.5,
        mu_i: 0.8,
        mu_e: 1.0,
        max_i: 20,
        max_j: 20,
        allow_idling: false,
    };
    let mdp = solve_optimal(&cfg, 1e-8, 200_000).expect("MDP converges");
    let family = TabularFamily {
        k,
        grid_i: 3,
        grid_j: 3,
    };
    let searched = family.decode(&family.clamp(&family.initial()));
    for policy in [
        Box::new(mdp.tabular_policy()) as Box<dyn AllocationPolicy>,
        searched,
    ] {
        let table = CompiledTable::compile(policy, k, 32, 32);
        for i in 0..48 {
            for j in 0..48 {
                let a = table.lookup(i, j);
                let b = table.source().allocate(i, j, k);
                assert_eq!(a.inelastic.to_bits(), b.inelastic.to_bits());
                assert_eq!(a.elastic.to_bits(), b.elastic.to_bits());
            }
        }
        let mut engine = ServeEngine::new(table, EngineConfig::new(k).route_shards(2));
        let trace = poisson_trace(41, 50.0);
        let mut source = trace.stream();
        let ingested = engine.run(&mut source, f64::INFINITY);
        assert_eq!(ingested, trace.len() as u64);
        let totals = engine.metrics_total();
        assert_eq!(totals.completions, totals.arrivals);
        assert!(totals.decisions >= totals.events());
    }
}
