//! Differential certification of the performance kernels (PR 7 tentpole):
//! the tiled matrix multiply and the panel-blocked LU must be
//! **bit-identical** to the retained naive/unblocked reference kernels on
//! arbitrary shapes, and warm-started QBD solves must agree with cold
//! solves to the solver tolerance across a (k, ρ) parameter grid.

use eirs_repro::core::experiments::{compare, compare_warm};
use eirs_repro::core::{AnalysisCache, SystemParams};
use eirs_repro::numerics::lu::LuDecomposition;
use eirs_repro::numerics::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix from an LCG stream: entries in
/// `[-1, 1)` with ~10% exact zeros, so the kernels' `a == 0.0` skip path
/// is exercised alongside the dense path.
fn lcg_matrix(rows: usize, cols: usize, seed: &mut u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((*seed >> 11) as f64) / ((1u64 << 53) as f64);
            m[(i, j)] = if x < 0.1 { 0.0 } else { 2.0 * x - 1.0 };
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Rectangular shapes straddling the 48-wide tile on every axis: the
    // tiled kernel reorders the loop *nest* but keeps each output
    // element's k-accumulation order, so equality must be exact.
    #[test]
    fn tiled_mul_is_bit_identical_to_naive(
        m in 1usize..80,
        k in 1usize..80,
        n in 1usize..80,
        seed in 1u64..1_000_000,
    ) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15);
        let a = lcg_matrix(m, k, &mut s);
        let b = lcg_matrix(k, n, &mut s);
        let mut tiled = Matrix::zeros(m, n);
        let mut naive = Matrix::zeros(m, n);
        a.mul_into(&b, &mut tiled);
        a.mul_into_naive(&b, &mut naive);
        prop_assert_eq!(tiled.as_slice(), naive.as_slice());
    }

    // Square systems spanning several 32-row panels: the blocked
    // factorization defers trailing updates but applies them in the exact
    // per-element order of the classical loop, so pivot choices, factors,
    // determinant sign, and solves all match bitwise.
    #[test]
    fn blocked_lu_is_bit_identical_to_unblocked(
        n in 1usize..90,
        seed in 1u64..1_000_000,
    ) {
        let mut s = seed.wrapping_mul(0xD1B54A32D192ED03);
        let a = lcg_matrix(n, n, &mut s);
        let blocked = LuDecomposition::new(&a);
        let unblocked = LuDecomposition::new_unblocked(&a);
        match (blocked, unblocked) {
            (Ok(b), Ok(u)) => {
                prop_assert_eq!(b.determinant().to_bits(), u.determinant().to_bits());
                let rhs: Vec<f64> = (0..n).map(|i| i as f64 * 0.7 - 0.3).collect();
                let xb = b.solve(&rhs).unwrap();
                let xu = u.solve(&rhs).unwrap();
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(&xb), bits(&xu));
            }
            (Err(eb), Err(eu)) => {
                prop_assert_eq!(format!("{eb:?}"), format!("{eu:?}"));
            }
            (b, u) => {
                prop_assert!(
                    false,
                    "blocked {:?} and unblocked {:?} disagree on fallibility",
                    b.map(|_| ()),
                    u.map(|_| ())
                );
            }
        }
    }

    // Warm chains across a (k, ρ) grid: marching µ_I with a carried
    // AnalysisCache must reproduce independent cold solves to solver
    // tolerance at every cell — EF (p = 3) and IF (p = k + 2) chains both.
    #[test]
    fn warm_chain_matches_cold_across_k_rho(
        k in 1u32..9,
        rho_idx in 0usize..4,
    ) {
        let rho = [0.3, 0.5, 0.7, 0.9][rho_idx];
        let mut cache = AnalysisCache::default();
        for i in 1..=8 {
            let mu_i = i as f64 * 0.5;
            let params = SystemParams::with_equal_lambdas(k, mu_i, 1.0, rho).unwrap();
            let warm = compare_warm(&params, &mut cache).unwrap();
            let cold = compare(&params).unwrap();
            prop_assert!(
                (warm.mrt_if - cold.mrt_if).abs() <= 1e-8 * cold.mrt_if.abs().max(1.0),
                "IF diverged at k={} rho={} mu_i={}: warm {} vs cold {}",
                k, rho, mu_i, warm.mrt_if, cold.mrt_if
            );
            prop_assert!(
                (warm.mrt_ef - cold.mrt_ef).abs() <= 1e-8 * cold.mrt_ef.abs().max(1.0),
                "EF diverged at k={} rho={} mu_i={}: warm {} vs cold {}",
                k, rho, mu_i, warm.mrt_ef, cold.mrt_ef
            );
        }
    }
}

#[test]
#[should_panic]
fn tiled_mul_rejects_inner_dimension_mismatch() {
    let a = Matrix::zeros(3, 4);
    let b = Matrix::zeros(5, 2);
    let mut out = Matrix::zeros(3, 2);
    a.mul_into(&b, &mut out);
}

#[test]
#[should_panic]
fn tiled_mul_rejects_output_shape_mismatch() {
    let a = Matrix::zeros(3, 4);
    let b = Matrix::zeros(4, 2);
    let mut out = Matrix::zeros(2, 3);
    a.mul_into(&b, &mut out);
}

#[test]
#[should_panic]
fn naive_mul_rejects_inner_dimension_mismatch() {
    let a = Matrix::zeros(3, 4);
    let b = Matrix::zeros(5, 2);
    let mut out = Matrix::zeros(3, 2);
    a.mul_into_naive(&b, &mut out);
}

#[test]
#[should_panic]
fn naive_mul_rejects_output_shape_mismatch() {
    let a = Matrix::zeros(3, 4);
    let b = Matrix::zeros(4, 2);
    let mut out = Matrix::zeros(3, 3);
    a.mul_into_naive(&b, &mut out);
}

#[test]
fn kernels_agree_on_shapes_much_larger_than_one_tile() {
    // A single deterministic large case (multiple tiles and panels in
    // every direction) so the boundary arithmetic is pinned even if the
    // proptest sampler never draws the extremes.
    let mut s = 42u64;
    let a = lcg_matrix(130, 97, &mut s);
    let b = lcg_matrix(97, 113, &mut s);
    let mut tiled = Matrix::zeros(130, 113);
    let mut naive = Matrix::zeros(130, 113);
    a.mul_into(&b, &mut tiled);
    a.mul_into_naive(&b, &mut naive);
    assert_eq!(tiled.as_slice(), naive.as_slice());

    let sq = lcg_matrix(150, 150, &mut s);
    let blocked = LuDecomposition::new(&sq).unwrap();
    let unblocked = LuDecomposition::new_unblocked(&sq).unwrap();
    assert_eq!(
        blocked.determinant().to_bits(),
        unblocked.determinant().to_bits()
    );
    let rhs: Vec<f64> = (0..150).map(|i| (i as f64).sin()).collect();
    let xb = blocked.solve(&rhs).unwrap();
    let xu = unblocked.solve(&rhs).unwrap();
    for (b, u) in xb.iter().zip(&xu) {
        assert_eq!(b.to_bits(), u.to_bits());
    }
}
