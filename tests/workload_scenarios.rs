//! Workload scenario engine (PR 3 tentpole) integration tests:
//!
//! 1. **Trace-file round trip through the DES**: a recorded trace survives
//!    save → load with per-job (time, class, size) fidelity, and the DES
//!    produces bit-identical results from the original and the reloaded
//!    trace.
//! 2. **MAP degeneracy** (property tests): a single-phase MAP *is* the
//!    Poisson process — its rate round-trips bit-identically, and the
//!    [`MapStream`] sample path is exactly the inverse-CDF exponential
//!    stream drawn in the documented order.
//! 3. **Cross-substrate agreement**: the MAP-phase-extended QBD analysis
//!    agrees with DES replications for MAP workloads, and the scenario
//!    dispatcher is consistent with direct `analyze_policy` calls.

use eirs_repro::core::analysis::AnalyzeOptions;
use eirs_repro::core::scenario::{parse_workload, registry, Tractability, Workload};
use eirs_repro::core::scenario::{ArrivalSpec, ServiceSpec};
use eirs_repro::core::SystemParams;
use eirs_repro::queueing::{
    exp_inverse_cdf, Exponential, HyperExponential, MapProcess, SizeDistribution,
};
use eirs_repro::sim::arrivals::{ArrivalSource, ArrivalTrace, MapStream};
use eirs_repro::sim::des::{DesConfig, Simulation};
use eirs_repro::sim::policy::FairShare;
use eirs_repro::sim::JobClass;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn trace_file_round_trips_through_the_des_with_per_job_fidelity() {
    // Mixed classes, high-variance sizes: anything lossy in the format
    // (precision, class tags, ordering) would show up here.
    let trace = ArrivalTrace::record_poisson(
        0.9,
        0.6,
        Box::new(HyperExponential::balanced(1.0, 5.0)),
        Box::new(Exponential::new(0.7)),
        2024,
        120.0,
    );
    assert!(trace.len() > 100, "trace too short to be interesting");

    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("roundtrip.trace");
    trace.save(&path).expect("save trace");
    let loaded = ArrivalTrace::load(&path).expect("load trace");

    // Per-job fidelity: every arrival epoch, class, and size survives the
    // file format bit for bit.
    assert_eq!(loaded.len(), trace.len());
    for (a, b) in trace.arrivals().iter().zip(loaded.arrivals()) {
        assert_eq!(a.time.to_bits(), b.time.to_bits(), "arrival time drifted");
        assert_eq!(a.class, b.class);
        assert_eq!(a.size.to_bits(), b.size.to_bits(), "job size drifted");
    }

    // And the DES cannot tell the two traces apart.
    let run = |t: &ArrivalTrace| {
        let mut s = t.stream();
        Simulation::new(DesConfig::drain(3)).run(&FairShare, &mut s)
    };
    let (orig, reloaded) = (run(&trace), run(&loaded));
    assert_eq!(orig.completed, reloaded.completed);
    assert_eq!(
        orig.total_response.to_bits(),
        reloaded.total_response.to_bits()
    );
    assert_eq!(orig.end_time.to_bits(), reloaded.end_time.to_bits());
    // Drain mode completes every job in the trace, split by class.
    let n_i = trace
        .arrivals()
        .iter()
        .filter(|a| a.class == JobClass::Inelastic)
        .count() as u64;
    assert_eq!(orig.completed, [n_i, trace.len() as u64 - n_i]);
}

#[test]
fn trace_file_workload_runs_through_the_scenario_engine() {
    // A trace written to disk feeds the `trace:<path>` workload spec.
    let params = SystemParams::with_equal_lambdas(2, 1.0, 1.0, 0.5).unwrap();
    let trace = ArrivalTrace::record_poisson(
        params.lambda_i,
        params.lambda_e,
        Box::new(Exponential::new(params.mu_i)),
        Box::new(Exponential::new(params.mu_e)),
        7,
        5_000.0,
    );
    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("scenario.trace");
    trace.save(&path).expect("save trace");

    let w = parse_workload(&format!("trace:{}", path.display()), None, None, None).unwrap();
    assert_eq!(
        w.tractability(&FairShare, &params),
        Tractability::Intractable,
        "external trace files are simulation-only"
    );
    let report = w
        .simulate(&FairShare, &params, 3, 100, 2_000)
        .expect("simulate trace workload");
    assert!(report.completed[0] + report.completed[1] >= 2_000);
    assert!(report.mean_response.is_finite() && report.mean_response > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A one-phase MAP *is* Poisson: the stored and stationary rates are
    /// the λ that built it, bit for bit, even through rate normalization.
    #[test]
    fn single_phase_map_rate_is_bit_identical_to_poisson(
        lambda_q in 1u32..4000,
    ) {
        let lambda = lambda_q as f64 * 0.01;
        let map = MapProcess::poisson(lambda);
        prop_assert_eq!(map.phases(), 1);
        prop_assert_eq!(map.arrival_rate().to_bits(), lambda.to_bits());
        // Normalizing to its own rate is the identity on the rate.
        let renorm = map.scaled_to_rate(lambda);
        prop_assert_eq!(renorm.arrival_rate().to_bits(), lambda.to_bits());
    }

    /// The single-phase [`MapStream`] sample path degenerates to the
    /// marked-Poisson inverse-CDF stream: replaying the documented draw
    /// order (initial phase, holding time, transition pick, class mark,
    /// size) against the same `StdRng` reproduces every arrival bit for
    /// bit through the shared `exp_inverse_cdf` helper.
    #[test]
    fn single_phase_map_stream_is_the_inverse_cdf_poisson_stream(
        seed in 0u64..1_000_000,
        lambda_q in 1u32..500,
        frac_q in 0u32..=10,
    ) {
        let lambda = lambda_q as f64 * 0.01;
        let frac_i = frac_q as f64 / 10.0;
        let (mu_i, mu_e) = (0.8, 1.7);
        let mut stream = MapStream::new(
            MapProcess::poisson(lambda),
            frac_i,
            Box::new(Exponential::new(mu_i)),
            Box::new(Exponential::new(mu_e)),
            seed,
        );

        // Reference: the same draws, straight from the inverse CDF.
        let mut rng = StdRng::seed_from_u64(seed);
        let _initial_phase: f64 = rng.random();
        let mut t = 0.0;
        for n in 0..64 {
            let u_hold: f64 = rng.random();
            t += exp_inverse_cdf(1.0 - u_hold, lambda);
            let _u_pick: f64 = rng.random(); // always selects the arrival
            let u_class: f64 = rng.random();
            let class = if u_class < frac_i {
                JobClass::Inelastic
            } else {
                JobClass::Elastic
            };
            let size = match class {
                JobClass::Inelastic => Exponential::new(mu_i).sample(&mut rng),
                JobClass::Elastic => Exponential::new(mu_e).sample(&mut rng),
            };
            let a = stream.next_arrival().unwrap();
            prop_assert_eq!(a.time.to_bits(), t.to_bits(), "arrival {} time", n);
            prop_assert_eq!(a.class, class, "arrival {} class", n);
            prop_assert_eq!(a.size.to_bits(), size.to_bits(), "arrival {} size", n);
        }
    }

    /// Scenario analysis through the one-phase MAP chain is bit-identical
    /// to the general truncated chain the Poisson path uses.
    #[test]
    fn map_analysis_with_one_phase_matches_the_poisson_chain(
        k in 1u32..5,
        rho_q in 2u32..8,
    ) {
        use eirs_repro::core::analysis::{analyze_policy_map, analyze_policy_with};
        let params = SystemParams::with_equal_lambdas(k, 0.5, 1.0, rho_q as f64 * 0.1).unwrap();
        let opts = AnalyzeOptions { phase_cap: 20, force_general: true, ..Default::default() };
        let map = MapProcess::poisson(params.total_lambda());
        let direct = analyze_policy_with(&FairShare, &params, &opts).unwrap();
        let via_map = analyze_policy_map(&FairShare, &params, &map, &opts).unwrap();
        prop_assert_eq!(direct.mean_response.to_bits(), via_map.mean_response.to_bits());
        prop_assert_eq!(
            direct.mean_num_inelastic.to_bits(),
            via_map.mean_num_inelastic.to_bits()
        );
    }
}

#[test]
fn deterministic_trace_workloads_run_one_exact_replication() {
    let params = SystemParams::with_equal_lambdas(2, 1.0, 1.0, 0.5).unwrap();
    let trace = ArrivalTrace::record_poisson(
        params.lambda_i,
        params.lambda_e,
        Box::new(Exponential::new(params.mu_i)),
        Box::new(Exponential::new(params.mu_e)),
        13,
        5_000.0,
    );
    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("deterministic.trace");
    trace.save(&path).expect("save trace");
    let w = parse_workload(&format!("trace:{}", path.display()), None, None, None).unwrap();
    assert!(w.is_deterministic());
    // Asking for 6 replications of a fixed trace yields one exact run,
    // not six identical ones dressed up as independent samples.
    let reports = w
        .replications(&FairShare, &params, 3, 6, 100, 2_000)
        .unwrap();
    assert_eq!(reports.len(), 1);
}

#[test]
fn too_short_traces_error_instead_of_silently_truncating() {
    let params = SystemParams::with_equal_lambdas(2, 1.0, 1.0, 0.5).unwrap();
    let trace = ArrivalTrace::record_poisson(
        params.lambda_i,
        params.lambda_e,
        Box::new(Exponential::new(params.mu_i)),
        Box::new(Exponential::new(params.mu_e)),
        17,
        200.0, // ~200 arrivals: far fewer than the requested window
    );
    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("short.trace");
    trace.save(&path).expect("save trace");
    let w = parse_workload(&format!("trace:{}", path.display()), None, None, None).unwrap();
    let err = w
        .simulate(&FairShare, &params, 3, 1_000, 50_000)
        .expect_err("a short trace must not be reported as a full run");
    assert!(err.contains("exhausted"), "unexpected error: {err}");
}

#[test]
fn analyze_policy_map_rejects_unnormalized_maps() {
    use eirs_repro::core::analysis::{analyze_policy_map, AnalysisError};
    let params = SystemParams::with_equal_lambdas(3, 0.5, 1.0, 0.5).unwrap();
    // Stationary rate 5 != the model's total arrival rate: hard error,
    // not a silently wrong answer.
    let wrong = MapProcess::mmpp2(1.0, 1.0, 9.0, 1.0);
    let err = analyze_policy_map(&FairShare, &params, &wrong, &AnalyzeOptions::default())
        .expect_err("mis-scaled MAP must be rejected");
    assert!(matches!(err, AnalysisError::BadInput(_)), "{err:?}");
}

#[test]
fn map_workload_analysis_agrees_with_des_replications() {
    // The MAP-phase-extended QBD vs the simulator, on a genuinely
    // modulated workload (two policy structures: priority and fractional).
    let params = SystemParams::with_equal_lambdas(3, 0.5, 1.0, 0.55).unwrap();
    let w = parse_workload("map", None, None, None).unwrap();
    let opts = AnalyzeOptions {
        phase_cap: 40,
        ..Default::default()
    };
    for policy in eirs_repro::core::policy::registry(3)
        .iter()
        .filter(|p| ["Fair-Share", "Elastic-First"].contains(&p.name().as_str()))
    {
        let a = w
            .analyze(policy.as_ref(), &params, &opts)
            .unwrap()
            .expect("map x exp is tractable");
        let reports = w
            .replications(policy.as_ref(), &params, 11, 5, 2_000, 25_000)
            .unwrap();
        let mean: f64 = reports.iter().map(|r| r.mean_response).sum::<f64>() / reports.len() as f64;
        let rel = (a.mean_response - mean).abs() / mean;
        assert!(
            rel < 0.04,
            "{}: analysis {} vs DES {mean} (rel {rel:.4})",
            policy.name(),
            a.mean_response
        );
    }
}

#[test]
fn bursty_workload_effective_rate_matches_params() {
    // The burst normalization must deliver λ_I + λ_E jobs per unit time.
    let params = SystemParams::with_equal_lambdas(2, 1.0, 1.0, 0.6).unwrap();
    let w = Workload::new(
        ArrivalSpec::Bursty { mean_burst: 5.0 },
        ServiceSpec::Exponential,
        ServiceSpec::Exponential,
    );
    let mut source = w.build_source(&params, 9, 0.0).unwrap();
    let n = 30_000;
    let mut t = 0.0;
    let mut count_i = 0usize;
    for _ in 0..n {
        let a = source.next_arrival().unwrap();
        t = a.time;
        if a.class == JobClass::Inelastic {
            count_i += 1;
        }
    }
    let rate = n as f64 / t;
    let want = params.total_lambda();
    assert!((rate - want).abs() / want < 0.05, "rate {rate} vs {want}");
    let frac = count_i as f64 / n as f64;
    assert!((frac - 0.5).abs() < 0.02, "class split {frac}");
}

#[test]
fn registry_covers_the_required_families_and_simulates_under_all_policies() {
    let params = SystemParams::with_equal_lambdas(2, 1.0, 1.0, 0.5).unwrap();
    let names: Vec<String> = registry().iter().map(|w| w.name.clone()).collect();
    for required in ["poisson", "map", "bursty", "trace"] {
        assert!(names.iter().any(|n| n == required), "missing {required}");
    }
    // Every scenario family drives every registry policy without
    // violating feasibility (the DES asserts it on each decision).
    for w in registry() {
        for policy in eirs_repro::core::policy::registry(params.k) {
            let r = w
                .simulate(policy.as_ref(), &params, 5, 50, 500)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", w.name, policy.name()));
            assert!(r.mean_response.is_finite(), "{}/{}", w.name, policy.name());
        }
    }
}
