//! Property tests of the shared policy layer (PR 2 tentpole):
//!
//! 1. every policy in the shared registry produces feasible allocations
//!    (`π_I ≤ min(i,k)`, `π_I + π_E ≤ k`, `π_E = 0` when `j = 0`) over
//!    randomized states — checked both by the 2-class rules and by the
//!    multiclass `check_feasible` on the two-class reduction, so the two
//!    policy layers enforce the same constraints;
//! 2. `analyze_policy` on the EF/IF wrappers is **bit-identical** to the
//!    pre-refactor hardcoded implementations (`analysis::reference`) over
//!    randomized parameters.

use eirs_repro::core::analysis::{self, analyze_policy, reference};
use eirs_repro::core::policy::registry;
use eirs_repro::core::SystemParams;
use eirs_repro::multiclass::{check_feasible, MultiSystem};
use proptest::prelude::*;

fn assert_bits_equal(a: &analysis::PolicyAnalysis, b: &analysis::PolicyAnalysis, label: &str) {
    for (x, y, field) in [
        (a.mean_response, b.mean_response, "mean_response"),
        (
            a.mean_response_inelastic,
            b.mean_response_inelastic,
            "mean_response_inelastic",
        ),
        (
            a.mean_response_elastic,
            b.mean_response_elastic,
            "mean_response_elastic",
        ),
        (
            a.mean_num_inelastic,
            b.mean_num_inelastic,
            "mean_num_inelastic",
        ),
        (a.mean_num_elastic, b.mean_num_elastic, "mean_num_elastic"),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: {field} diverged ({x} vs {y})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn registry_policies_are_feasible_on_randomized_states(
        k in 1u32..9,
        i in 0usize..60,
        j in 0usize..60,
    ) {
        let kf = k as f64;
        // The multiclass reduction needs rates, not just k; allocations do
        // not depend on them.
        let system = MultiSystem::two_class(k, 0.1, 0.1, 1.0, 1.0);
        for policy in registry(k) {
            let a = policy.allocate(i, j, k);
            let name = policy.name();
            // The 2-class feasibility constraints, verbatim.
            prop_assert!(
                a.inelastic >= 0.0 && a.elastic >= 0.0,
                "{name}: negative allocation at ({i},{j},{k})"
            );
            prop_assert!(
                a.inelastic <= (i as f64).min(kf) + 1e-9,
                "{name}: pi_I {} > min(i,k) at ({i},{j},{k})", a.inelastic
            );
            prop_assert!(
                a.inelastic + a.elastic <= kf + 1e-9,
                "{name}: total {} > k at ({i},{j},{k})", a.inelastic + a.elastic
            );
            prop_assert!(
                j > 0 || a.elastic == 0.0,
                "{name}: elastic share {} with j = 0 at ({i},{k})", a.elastic
            );
            // And the multiclass checker on the two-class reduction agrees.
            let checked = check_feasible(&[a.inelastic, a.elastic], &[i, j], &system, &name);
            prop_assert!(checked.is_ok(), "{name}: {checked:?}");
        }
    }

    #[test]
    fn ef_and_if_wrappers_are_bit_identical_to_prerefactor_paths(
        k in 1u32..12,
        mu_i_q in 1u32..15,
        mu_e_q in 1u32..9,
        rho_q in 1u32..10,
    ) {
        // Discrete grids keep the parameters in the numerically-stable
        // region the pre-refactor code was specified on.
        let mu_i = mu_i_q as f64 * 0.25;
        let mu_e = mu_e_q as f64 * 0.25;
        let rho = rho_q as f64 * 0.1;
        let p = SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho).unwrap();

        let ef_new = analysis::analyze_elastic_first(&p).unwrap();
        let ef_old = reference::analyze_elastic_first_reference(&p).unwrap();
        assert_bits_equal(&ef_new, &ef_old, "EF wrapper vs reference");
        // analyze_policy routes EF through the same exact chain.
        let ef_generic = analyze_policy(&eirs_repro::sim::policy::ElasticFirst, &p).unwrap();
        assert_bits_equal(&ef_generic, &ef_old, "analyze_policy(EF) vs reference");

        let if_new = analysis::analyze_inelastic_first(&p).unwrap();
        let if_old = reference::analyze_inelastic_first_reference(&p).unwrap();
        assert_bits_equal(&if_new, &if_old, "IF wrapper vs reference");
        let if_generic = analyze_policy(&eirs_repro::sim::policy::InelasticFirst, &p).unwrap();
        assert_bits_equal(&if_generic, &if_old, "analyze_policy(IF) vs reference");
    }
}

#[test]
fn zero_rate_degenerate_cases_match_reference_exactly() {
    // The wrappers' shortcut branches (λ_I = 0, λ_E = 0) are part of the
    // bit-identity contract too.
    for (li, le) in [(0.0, 2.0), (3.0, 0.0)] {
        let p = SystemParams::new(4, li, le, 1.0, 1.0).unwrap();
        let ef_new = analysis::analyze_elastic_first(&p).unwrap();
        let ef_old = reference::analyze_elastic_first_reference(&p).unwrap();
        let if_new = analysis::analyze_inelastic_first(&p).unwrap();
        let if_old = reference::analyze_inelastic_first_reference(&p).unwrap();
        for ((a, b), label) in [(&ef_new, &ef_old), (&if_new, &if_old)]
            .into_iter()
            .zip(["EF", "IF"])
        {
            assert_eq!(
                a.mean_num_inelastic.to_bits(),
                b.mean_num_inelastic.to_bits(),
                "{label} λI={li} λE={le}"
            );
            assert_eq!(
                a.mean_num_elastic.to_bits(),
                b.mean_num_elastic.to_bits(),
                "{label} λI={li} λE={le}"
            );
        }
    }
}

#[test]
fn structure_detection_is_consistent_with_the_exact_paths() {
    use eirs_repro::core::analysis::{detect_structure, AnalyzeOptions, PolicyStructure};
    use eirs_repro::sim::policy::{ElasticFirst, InelasticFirst, ReservePolicy};
    let opts = AnalyzeOptions::default();
    for k in [1u32, 2, 4, 7] {
        assert_eq!(
            detect_structure(&ElasticFirst, k, &opts),
            PolicyStructure::ElasticPriority
        );
        assert_eq!(
            detect_structure(&InelasticFirst, k, &opts),
            PolicyStructure::InelasticPriority
        );
        assert_eq!(
            detect_structure(&ReservePolicy { reserve: k }, k, &opts),
            PolicyStructure::ElasticPriority
        );
    }
}
