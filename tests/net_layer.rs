//! Cross-layer tests of the networked serving front end (crates/net):
//!
//! 1. **Protocol robustness** (fuzz): random byte streams, truncations at
//!    every prefix, oversized length fields, and corrupted checksums all
//!    surface as clean `ProtocolError`s — never a panic, never a silently
//!    desynchronized or truncated stream;
//! 2. **Hot-swap determinism** (property test): installing a policy at
//!    *any* arrival-sequence barrier, under *any* batch splitting, leaves
//!    a write-ahead journal whose replay reproduces the live decision
//!    digest bit for bit;
//! 3. **Batch-boundary regression** (satellite of the same PR): the CLI's
//!    offline hot-swap loop journals and ingests the trailing partial
//!    batch before shutdown — replay of a stream whose length is not a
//!    batch multiple still matches exactly;
//! 4. **CLI loopback smoke**: `eirs serve --listen` driven by
//!    `eirs client` over 127.0.0.1 with a mid-stream swap keeps exact
//!    accounting and replays to the same digest.

use eirs_net::protocol::{
    encode_frame, frame_type, read_frame, write_magic, Frame, ProtocolError, MAGIC, MAX_PAYLOAD,
};
use eirs_repro::core::policy::parse_policy;
use eirs_repro::serve::{
    replay_journal, CompiledTable, EngineConfig, Journal, JournalWriter, ServeEngine, SwapRecord,
};
use eirs_repro::sim::{Arrival, JobClass};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Cursor;
use std::process::Command;

const K: u32 = 3;
const GRID: usize = 16;

fn compile(spec: &str) -> Result<CompiledTable, String> {
    Ok(CompiledTable::compile(parse_policy(spec)?, K, GRID, GRID))
}

fn config() -> EngineConfig {
    EngineConfig::new(K).route_shards(4).batch(32)
}

fn workload(n: usize) -> Vec<Arrival> {
    (0..n)
        .map(|i| Arrival {
            time: i as f64 * 0.07,
            class: if i % 3 == 0 {
                JobClass::Elastic
            } else {
                JobClass::Inelastic
            },
            size: 0.3 + 0.1 * ((i % 5) as f64),
        })
        .collect()
}

/// A stream of valid frames of every type, as raw bytes (no magic).
fn valid_stream() -> Vec<u8> {
    let frames = [
        Frame::Arrival {
            req_id: 7,
            class: JobClass::Inelastic,
            time: 1.25,
            size: 0.5,
        },
        Frame::Control("swap threshold:2".into()),
        Frame::Decision {
            req_id: 7,
            seq: 0,
            shard: 1,
            i: 2,
            j: 0,
            generation: 1,
            alloc_inelastic: 2.0,
            alloc_elastic: 1.0,
            admitted: true,
        },
        Frame::ControlOk("ok".into()),
        Frame::Error("nope".into()),
        Frame::Bye,
    ];
    let mut bytes = Vec::new();
    for f in &frames {
        bytes.extend_from_slice(&encode_frame(f));
    }
    bytes
}

#[test]
fn random_byte_streams_error_and_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x5eed_f00d);
    for _ in 0..500 {
        let len = (rng.random::<u64>() % 200) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.random::<u64>() as u8).collect();
        let mut cursor = Cursor::new(bytes);
        // Drain the stream: every outcome must be a clean frame, a clean
        // EOF, or a typed error — reaching this point without a panic is
        // the property under test.
        while let Ok(Some(_)) = read_frame(&mut cursor) {}
    }
}

#[test]
fn truncation_at_every_prefix_is_a_clean_eof_or_truncated_error() {
    let bytes = valid_stream();
    // Frame boundaries: offsets where a prefix ends exactly between frames.
    let mut boundaries = vec![0usize];
    {
        let mut cursor = Cursor::new(bytes.clone());
        loop {
            match read_frame(&mut cursor) {
                Ok(Some(_)) => boundaries.push(cursor.position() as usize),
                Ok(None) => break,
                Err(e) => panic!("valid stream failed to decode: {e}"),
            }
        }
    }
    for cut in 0..bytes.len() {
        let mut cursor = Cursor::new(bytes[..cut].to_vec());
        let outcome = loop {
            match read_frame(&mut cursor) {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        if boundaries.contains(&cut) {
            assert!(
                matches!(outcome, Ok(None)),
                "cut at frame boundary {cut} should be clean EOF, got {outcome:?}"
            );
        } else {
            assert!(
                matches!(outcome, Err(ProtocolError::Truncated)),
                "cut mid-frame at {cut} should be Truncated, got {outcome:?}"
            );
        }
    }
}

#[test]
fn oversized_length_fields_are_rejected_before_allocation() {
    for len in [MAX_PAYLOAD as u16 + 1, u16::MAX] {
        let mut bytes = vec![frame_type::CONTROL, 0];
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let got = read_frame(&mut Cursor::new(bytes));
        assert!(
            matches!(got, Err(ProtocolError::BadLength { .. })),
            "len {len} should be BadLength, got {got:?}"
        );
    }
}

#[test]
fn corrupted_streams_never_yield_a_wrong_frame() {
    // Flip random bytes in a valid multi-frame stream: decoding must
    // either produce a prefix of the original frames and then error, or
    // (for flips in a trailing frame's unread tail) stop cleanly. It must
    // never produce a frame that differs from the original sequence.
    let bytes = valid_stream();
    let originals: Vec<Frame> = {
        let mut cursor = Cursor::new(bytes.clone());
        let mut v = Vec::new();
        while let Some(f) = read_frame(&mut cursor).expect("valid stream") {
            v.push(f);
        }
        v
    };
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..400 {
        let mut corrupt = bytes.clone();
        let flips = 1 + rng.random::<u64>() % 3;
        for _ in 0..flips {
            let at = (rng.random::<u64>() as usize) % corrupt.len();
            corrupt[at] ^= 1 << (rng.random::<u64>() % 8);
        }
        let mut cursor = Cursor::new(corrupt);
        let mut decoded = Vec::new();
        while let Ok(Some(f)) = read_frame(&mut cursor) {
            decoded.push(f);
        }
        assert!(
            decoded.len() <= originals.len()
                && decoded
                    .iter()
                    .zip(&originals)
                    .all(|(d, o)| format!("{d:?}") == format!("{o:?}")),
            "corruption produced a non-prefix decode: {decoded:?}"
        );
    }
}

#[test]
fn magic_mismatch_is_a_bad_magic_error() {
    let mut bytes = MAGIC;
    bytes[3] ^= 0x20;
    let got = eirs_net::protocol::read_magic(&mut Cursor::new(bytes.to_vec()));
    assert!(matches!(got, Err(ProtocolError::BadMagic(_))), "{got:?}");
    let mut ok = Vec::new();
    write_magic(&mut ok).unwrap();
    assert_eq!(ok, MAGIC);
}

/// Live run: journal every batch write-ahead, swap at `barrier`, splitting
/// the stream into the given batch sizes. Returns (digest, journal bytes).
fn journaled_swap_run(
    arrivals: &[Arrival],
    barrier: usize,
    splits: &[usize],
    swap_spec: &str,
) -> (u64, u32, Vec<u8>) {
    let mut engine = ServeEngine::new(compile("fairshare").unwrap(), config());
    let mut wal =
        JournalWriter::create_with_spec(Vec::<u8>::new(), &engine, Some("fairshare")).unwrap();
    let mut split_iter = splits.iter().copied().cycle();
    let mut next = 0usize;
    let mut swapped = false;
    while next < arrivals.len() || !swapped {
        if !swapped && next >= barrier.min(arrivals.len()) {
            let table = compile(swap_spec).unwrap();
            let record = SwapRecord {
                seq: engine.ingested(),
                generation: engine.generation() + 1,
                hash: table.identity_hash(),
                spec: swap_spec.to_string(),
            };
            wal.append_swap(&record).unwrap();
            let installed = engine.install_table(table, swap_spec);
            assert_eq!(installed, record);
            swapped = true;
            continue;
        }
        let want = split_iter.next().unwrap().max(1);
        let cap = if swapped {
            arrivals.len()
        } else {
            barrier.min(arrivals.len())
        };
        let end = (next + want).min(cap);
        let batch = &arrivals[next..end];
        wal.append_batch(engine.ingested(), batch).unwrap();
        engine.ingest_batch(batch);
        next = end;
    }
    engine.drain();
    (
        engine.decision_digest(),
        engine.generation(),
        wal.into_inner().unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hot-swap at any arrival index, under any batch splitting: the
    /// journal replays to the live digest bit for bit.
    #[test]
    fn hot_swap_at_any_index_replays_bit_identically(
        barrier in 0usize..=70,
        splits in prop::collection::vec(1usize..13, 1..4),
        n in 40usize..70,
    ) {
        let arrivals = workload(n);
        let (digest, generation, journal_bytes) =
            journaled_swap_run(&arrivals, barrier, &splits, "threshold:2");
        let journal = Journal::from_reader(&mut &journal_bytes[..]).expect("parse journal");
        let mut replayed = replay_journal(config(), &journal, &|s| compile(s)).expect("replay");
        replayed.drain();
        prop_assert_eq!(replayed.decision_digest(), digest, "replay drift");
        prop_assert_eq!(replayed.generation(), generation);
    }

    /// The same swap barrier yields the same digest regardless of how the
    /// stream is batched — the barrier is workload semantics, batching is
    /// an implementation detail.
    #[test]
    fn swap_digest_is_invariant_to_batch_splitting(
        barrier in 0usize..=50,
        splits_a in prop::collection::vec(1usize..17, 1..4),
        splits_b in prop::collection::vec(1usize..17, 1..4),
    ) {
        let arrivals = workload(50);
        let (da, _, _) = journaled_swap_run(&arrivals, barrier, &splits_a, "threshold:2");
        let (db, _, _) = journaled_swap_run(&arrivals, barrier, &splits_b, "threshold:2");
        prop_assert_eq!(da, db, "batch splitting changed the decision stream");
    }
}

/// Runs the `eirs` binary; returns (exit code, stdout, stderr).
fn run_eirs(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_eirs"))
        .args(args)
        .output()
        .expect("eirs binary runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn json_field<'a>(doc: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let at = doc
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {doc}"));
    let rest = &doc[at + pat.len()..];
    rest.split(&[',', '\n'][..])
        .next()
        .unwrap()
        .trim_matches('"')
}

/// Satellite regression: the CLI's offline hot-swap loop must journal and
/// ingest the trailing partial batch before shutdown. A trace whose length
/// is not a multiple of the batch (201 arrivals, batch 64) plus a swap
/// barrier off any batch boundary replays to the exact live digest.
#[test]
fn cli_offline_swap_flushes_the_final_partial_batch() {
    let dir = std::env::temp_dir().join("eirs_net_layer_cli");
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("offline_swap.wal");
    let wal_s = wal.to_str().unwrap();
    let trace = "trace:crates/serve/testdata/smoke.trace";
    let (code, out, err) = run_eirs(&[
        "serve",
        "--policy",
        "curve:2+0.5i",
        "--k",
        "3",
        "--workload",
        trace,
        "--batch",
        "64",
        "--journal",
        wal_s,
        "--swap-policy",
        "threshold:3",
        "--swap-at",
        "117",
        "--json",
        "true",
    ]);
    assert_eq!(code, 0, "serve failed: {err}");
    let live_digest = json_field(&out, "decision_digest").to_string();
    // All 201 trace arrivals must be journaled — including the final
    // partial batch (201 = 3*64 + 9).
    let journal = Journal::load(&wal).expect("journal parses");
    assert_eq!(journal.entries.len(), 201, "partial batch dropped");
    let (code, out, err) = run_eirs(&[
        "serve",
        "--k",
        "3",
        "--replay-journal",
        wal_s,
        "--json",
        "true",
    ]);
    assert_eq!(code, 0, "replay failed: {err}");
    assert_eq!(
        json_field(&out, "decision_digest"),
        live_digest,
        "replay drift"
    );
    assert_eq!(json_field(&out, "generation"), "1");
    std::fs::remove_file(&wal).ok();
}

/// CLI loopback smoke: serve --listen driven by client over 127.0.0.1,
/// hot-swap mid-stream, exact accounting, digest reproducible from the
/// journal (the same gate CI runs against the release binary).
#[test]
fn cli_loopback_serve_and_client_round_trip_with_hot_swap() {
    let dir = std::env::temp_dir().join("eirs_net_layer_loopback");
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("net.wal");
    let addr_file = dir.join("addr.txt");
    std::fs::remove_file(&addr_file).ok();
    let server = {
        let wal = wal.clone();
        let addr_file = addr_file.clone();
        std::thread::spawn(move || {
            Command::new(env!("CARGO_BIN_EXE_eirs"))
                .args([
                    "serve",
                    "--policy",
                    "curve:2+0.5i",
                    "--k",
                    "3",
                    "--listen",
                    "127.0.0.1:0",
                    "--addr-file",
                    addr_file.to_str().unwrap(),
                    "--journal",
                    wal.to_str().unwrap(),
                    "--swap-policy",
                    "threshold:3",
                    "--swap-at",
                    "120",
                    "--json",
                    "true",
                ])
                .output()
                .expect("serve runs")
        })
    };
    // Wait for the addr file (the server binds an OS-assigned port).
    let addr = {
        let mut tries = 0;
        loop {
            match std::fs::read_to_string(&addr_file) {
                Ok(s) if !s.is_empty() => break s,
                _ => {
                    tries += 1;
                    assert!(tries < 200, "server never wrote the addr file");
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
        }
    };
    let (code, client_out, err) = run_eirs(&[
        "client",
        "--connect",
        &addr,
        "--clients",
        "2",
        "--k",
        "3",
        "--workload",
        "trace:crates/serve/testdata/smoke.trace",
        "--json",
        "true",
    ]);
    assert_eq!(code, 0, "client failed: {err}");
    let server_out = server.join().expect("server thread");
    assert!(server_out.status.success(), "serve exited nonzero");
    let serve_doc = String::from_utf8_lossy(&server_out.stdout).into_owned();

    assert_eq!(json_field(&serve_doc, "client_arrivals"), "201");
    assert_eq!(json_field(&serve_doc, "accounting_balanced"), "true");
    assert_eq!(json_field(&serve_doc, "generation"), "1");
    assert_eq!(json_field(&client_out, "decisions"), "201");
    assert_eq!(json_field(&client_out, "max_generation"), "1");

    // The journal alone reproduces the live networked digest.
    let live_digest = json_field(&serve_doc, "decision_digest").to_string();
    let (code, replay_out, err) = run_eirs(&[
        "serve",
        "--k",
        "3",
        "--replay-journal",
        wal.to_str().unwrap(),
        "--drain",
        "true",
        "--json",
        "true",
    ]);
    assert_eq!(code, 0, "replay failed: {err}");
    assert_eq!(
        json_field(&replay_out, "decision_digest"),
        live_digest,
        "networked replay drift"
    );
    std::fs::remove_file(&wal).ok();
    std::fs::remove_file(&addr_file).ok();
}
