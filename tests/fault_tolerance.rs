//! Property tests of the fault-tolerance layer (PR 6 tentpole):
//!
//! 1. **Recovery at any index**: a journaled run snapshotted at *any*
//!    arrival index and killed at *any* later one recovers to a
//!    bit-identical decision digest and metrics total, across randomized
//!    routing partitions, worker counts, batch sizes, and fault
//!    schedules (the chaos harness asserts the serial / parallel /
//!    kill-and-recover triple internally);
//! 2. **Snapshot text round-trip mid-flight**: freezing a churned engine
//!    at any prefix of the workload, serializing through the text
//!    format, restoring, and finishing the workload equals the
//!    uninterrupted run bit for bit — including fault cursors and
//!    degraded-mode counters.

use eirs_repro::queueing::Exponential;
use eirs_repro::serve::{
    run_chaos, ChurnConfig, CompiledTable, EngineConfig, EngineSnapshot, ServeEngine,
};
use eirs_repro::sim::arrivals::ArrivalTrace;
use eirs_repro::sim::availability::FaultSpec;
use eirs_repro::sim::policy::FairShare;
use proptest::prelude::*;

fn trace(seed: u64) -> ArrivalTrace {
    ArrivalTrace::record_poisson(
        0.9,
        0.7,
        Box::new(Exponential::new(1.0)),
        Box::new(Exponential::new(0.8)),
        seed,
        110.0,
    )
}

fn make_table() -> CompiledTable {
    CompiledTable::compile(Box::new(FairShare), 3, 24, 24)
}

fn config(route: usize, workers: usize, batch: usize, churned: bool) -> EngineConfig {
    let mut config = EngineConfig::new(3)
        .route_shards(route)
        .workers(workers)
        .batch(batch);
    if churned {
        config = config
            .churn(ChurnConfig {
                spec: FaultSpec::parse("crash:mtbf=25,mttr=6").expect("valid spec"),
                seed: 5,
                horizon: 200.0,
            })
            .shed_limit(8);
    }
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Recovery is index-independent: wherever the snapshot and the kill
    /// land, the recovered digest equals the unfaulted serial run's.
    #[test]
    fn kill_and_recover_at_any_index_is_bit_identical(
        seed in 1u64..1000,
        route in 1usize..5,
        workers in 1usize..5,
        batch in 1usize..40,
        snap_frac in 0.02f64..0.9,
        kill_frac in 0.0f64..1.0,
        churn_sel in 0u32..2,
    ) {
        let churned = churn_sel == 1;
        let t = trace(seed);
        let n = t.len() as u64;
        // 110 epochs at rate 1.6 always yields far more than 4 arrivals;
        // the shim has no prop_assume, so assert the precondition.
        prop_assert!(n >= 4);
        let snapshot_at = (((n - 2) as f64 * snap_frac) as u64).min(n - 2);
        let kill_after =
            (snapshot_at + 1 + ((n - snapshot_at - 1) as f64 * kill_frac) as u64).min(n);
        // run_chaos panics (→ proptest failure) if the serial, parallel,
        // or kill-and-recover digests or metrics diverge.
        let report = run_chaos(
            &make_table,
            config(route, workers, batch, churned),
            &t,
            snapshot_at,
            kill_after,
        );
        prop_assert_eq!(report.serial_digest, report.recovered_digest);
        prop_assert_eq!(
            report.metrics.completions + report.metrics.rejections,
            report.metrics.arrivals,
            "every arrival is served or accounted as shed"
        );
    }

    /// Snapshots taken at any workload prefix survive the text format:
    /// restore + finish equals the uninterrupted run.
    #[test]
    fn snapshot_restore_at_any_prefix_continues_bit_identically(
        seed in 1u64..1000,
        route in 1usize..5,
        cut_frac in 0.0f64..1.0,
        churn_sel in 0u32..2,
    ) {
        let churned = churn_sel == 1;
        let t = trace(seed);
        let cut = ((t.len() as f64) * cut_frac) as usize;
        let config = config(route, 1, 16, churned);

        let mut reference = ServeEngine::new(make_table(), config);
        reference.ingest_batch(t.arrivals());
        reference.drain();

        let mut first = ServeEngine::new(make_table(), config);
        first.ingest_batch(&t.arrivals()[..cut]);
        let mut bytes = Vec::new();
        first.snapshot().to_writer(&mut bytes).expect("serialize");
        drop(first);

        let snap = EngineSnapshot::from_reader(&mut bytes.as_slice()).expect("parse");
        let mut resumed = ServeEngine::from_snapshot(make_table(), config, &snap)
            .expect("restore");
        resumed.ingest_batch(&t.arrivals()[cut..]);
        resumed.drain();

        prop_assert_eq!(resumed.decision_digest(), reference.decision_digest());
        prop_assert_eq!(resumed.metrics_total(), reference.metrics_total());
    }
}
