//! Determinism contracts of the parallel sweep engine (PR 1 tentpole):
//! fanning a figure grid or a replication batch out over worker threads
//! must not change a single bit of the output relative to the serial path.

use eirs_repro::core::experiments::{
    figure4_heatmap_serial, figure4_heatmap_warm_serial, figure4_heatmap_warm_with_threads,
    figure4_heatmap_with_threads, figure5_response_curve, figure6_server_scaling,
};
use eirs_repro::core::sweep;
use eirs_repro::sim::des::run_markovian;
use eirs_repro::sim::policy::{ElasticFirst, InelasticFirst};
use eirs_repro::sim::replicate::{replication_seeds, run_replications_with_threads};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_figure4_heatmap_is_bit_identical_to_serial(
        k in 2u32..6,
        rho_idx in 0usize..3,
        threads in 2usize..9,
    ) {
        let rho = [0.5, 0.7, 0.9][rho_idx];
        let serial = figure4_heatmap_serial(k, rho).expect("grid solves");
        let parallel = figure4_heatmap_with_threads(k, rho, threads).expect("grid solves");
        prop_assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(s.mu_i.to_bits(), p.mu_i.to_bits());
            prop_assert_eq!(s.mu_e.to_bits(), p.mu_e.to_bits());
            prop_assert_eq!(
                s.comparison.mrt_if.to_bits(),
                p.comparison.mrt_if.to_bits(),
                "IF E[T] diverged at (mu_i={}, mu_e={})", s.mu_i, s.mu_e
            );
            prop_assert_eq!(
                s.comparison.mrt_ef.to_bits(),
                p.comparison.mrt_ef.to_bits(),
                "EF E[T] diverged at (mu_i={}, mu_e={})", s.mu_i, s.mu_e
            );
            prop_assert_eq!(s.comparison.winner, p.comparison.winner);
        }
    }

    // Warm-start chains are laid out along grid rows and each row carries
    // its own fresh cache, so the seeding order is a pure function of the
    // row — the parallel warm path must match the serial warm path bit
    // for bit, exactly like the cold path.
    #[test]
    fn parallel_warm_figure4_heatmap_is_bit_identical_to_serial(
        k in 2u32..6,
        rho_idx in 0usize..3,
        threads in 2usize..9,
    ) {
        let rho = [0.5, 0.7, 0.9][rho_idx];
        let serial = figure4_heatmap_warm_serial(k, rho).expect("grid solves");
        let parallel = figure4_heatmap_warm_with_threads(k, rho, threads).expect("grid solves");
        prop_assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(
                s.comparison.mrt_if.to_bits(),
                p.comparison.mrt_if.to_bits(),
                "warm IF E[T] diverged at (mu_i={}, mu_e={})", s.mu_i, s.mu_e
            );
            prop_assert_eq!(
                s.comparison.mrt_ef.to_bits(),
                p.comparison.mrt_ef.to_bits(),
                "warm EF E[T] diverged at (mu_i={}, mu_e={})", s.mu_i, s.mu_e
            );
            prop_assert_eq!(s.comparison.winner, p.comparison.winner);
        }
    }

    #[test]
    fn parallel_replications_same_seed_same_bits(
        base_seed in 0u64..10_000,
        threads in 2usize..9,
    ) {
        let run = |t: usize| {
            run_replications_with_threads(base_seed, 5, t, |seed| {
                run_markovian(&InelasticFirst, 2, 0.6, 0.4, 1.0, 0.8, seed, 100, 2_000)
            })
        };
        let serial = run(1);
        let parallel = run(threads);
        // And a second parallel run: same seed, same bits, run to run.
        let parallel_again = run(threads);
        prop_assert_eq!(serial.len(), parallel.len());
        for ((s, p), q) in serial.iter().zip(&parallel).zip(&parallel_again) {
            prop_assert_eq!(s.mean_response.to_bits(), p.mean_response.to_bits());
            prop_assert_eq!(s.mean_work.to_bits(), p.mean_work.to_bits());
            prop_assert_eq!(s.end_time.to_bits(), p.end_time.to_bits());
            prop_assert_eq!(s.completed, p.completed);
            prop_assert_eq!(p.mean_response.to_bits(), q.mean_response.to_bits());
        }
    }
}

#[test]
fn figure5_and_figure6_parallel_drivers_match_inline_computation() {
    // The parallel drivers must agree bitwise with computing each point
    // directly (they are pure per-point functions).
    let mu_is = [0.5, 1.0, 2.0, 3.0];
    let curve = figure5_response_curve(3, 0.6, &mu_is).unwrap();
    for (point, &mu_i) in curve.iter().zip(&mu_is) {
        let p = eirs_repro::core::SystemParams::with_equal_lambdas(3, mu_i, 1.0, 0.6).unwrap();
        let c = eirs_repro::core::experiments::compare(&p).unwrap();
        assert_eq!(point.mrt_if.to_bits(), c.mrt_if.to_bits());
        assert_eq!(point.mrt_ef.to_bits(), c.mrt_ef.to_bits());
    }

    let ks = [2u32, 4, 8];
    let scaling = figure6_server_scaling(&ks, 0.7, 2.0, 1.0).unwrap();
    for (point, &k) in scaling.iter().zip(&ks) {
        let p = eirs_repro::core::SystemParams::with_equal_lambdas(k, 2.0, 1.0, 0.7).unwrap();
        let c = eirs_repro::core::experiments::compare(&p).unwrap();
        assert_eq!(point.k, k);
        assert_eq!(point.mrt_if.to_bits(), c.mrt_if.to_bits());
        assert_eq!(point.mrt_ef.to_bits(), c.mrt_ef.to_bits());
    }
}

#[test]
fn warm_heatmap_decisions_match_cold_heatmap() {
    // Warm-started cells agree with cold cells to solver tolerance, and
    // the heat-map decisions match everywhere outside the tie band (where
    // a sub-tolerance difference can legitimately flip Tie ↔ winner).
    let cold = figure4_heatmap_serial(4, 0.9).unwrap();
    let warm = figure4_heatmap_warm_serial(4, 0.9).unwrap();
    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        let (ci, wi) = (c.comparison.mrt_if, w.comparison.mrt_if);
        let (ce, we) = (c.comparison.mrt_ef, w.comparison.mrt_ef);
        assert!(
            (wi - ci).abs() <= 1e-8 * ci.abs().max(1.0),
            "IF diverged at (mu_i={}, mu_e={}): warm {wi} vs cold {ci}",
            c.mu_i,
            c.mu_e
        );
        assert!(
            (we - ce).abs() <= 1e-8 * ce.abs().max(1.0),
            "EF diverged at (mu_i={}, mu_e={}): warm {we} vs cold {ce}",
            c.mu_i,
            c.mu_e
        );
        if (ci - ce).abs() > 1e-7 * ci.max(ce) {
            assert_eq!(
                w.comparison.winner, c.comparison.winner,
                "decision flipped outside the tie band at (mu_i={}, mu_e={})",
                c.mu_i, c.mu_e
            );
        }
    }
}

#[test]
fn sweep_engine_is_order_preserving_under_oversubscription() {
    // More threads than points, points cheaper than spawn cost: order must
    // still be exactly input order.
    let points: Vec<u64> = (0..23).collect();
    let out = sweep::sweep_with_threads(&points, 16, |&x| x * x);
    assert_eq!(out, points.iter().map(|&x| x * x).collect::<Vec<_>>());
}

#[test]
fn replication_seed_streams_are_stable_across_runs() {
    // The seed schedule is part of the reproducibility contract: derived
    // seeds must never depend on thread count or timing.
    let s1 = replication_seeds(123, 16);
    let s2 = replication_seeds(123, 16);
    assert_eq!(s1, s2);
    // Prefix property: extending the replication count keeps earlier seeds.
    let s3 = replication_seeds(123, 32);
    assert_eq!(&s3[..16], &s1[..]);
}

#[test]
fn parallel_sweep_handles_mixed_policy_workloads() {
    // A sweep whose closure runs simulations (not just analyses) stays
    // deterministic: policies are Sync and each point owns its RNG.
    let seeds: Vec<u64> = (0..6).collect();
    let f = |&seed: &u64| {
        let r_if = run_markovian(&InelasticFirst, 2, 0.5, 0.5, 1.0, 1.0, seed, 50, 1_000);
        let r_ef = run_markovian(&ElasticFirst, 2, 0.5, 0.5, 1.0, 1.0, seed, 50, 1_000);
        (r_if.mean_response.to_bits(), r_ef.mean_response.to_bits())
    };
    let serial = sweep::sweep_serial(&seeds, f);
    let parallel = sweep::sweep_with_threads(&seeds, 4, f);
    assert_eq!(serial, parallel);
}
