//! Property-based tests of the numerical substrates: linear algebra,
//! root finding, queueing formulas, Coxian fitting, and the QBD engine.
//! These invariants protect every figure harness in the repository.

use eirs_repro::markov::Qbd;
use eirs_repro::numerics::roots::solve_quadratic;
use eirs_repro::numerics::{lu, Matrix};
use eirs_repro::queueing::coxian::fit_busy_period;
use eirs_repro::queueing::{MMk, MM1};
use proptest::prelude::*;

fn arb_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data);
        // Diagonal dominance keeps instances invertible and well conditioned.
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_transpose_of_product(a in arb_matrix(4), b in arb_matrix(4)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn matrix_distributivity(a in arb_matrix(3), b in arb_matrix(3), c in arb_matrix(3)) {
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-11);
    }

    #[test]
    fn lu_solve_round_trip(a in arb_matrix(6), x in prop::collection::vec(-5.0f64..5.0, 6)) {
        let b = a.matvec(&x);
        let solved = lu::solve(&a, &b).expect("well-conditioned by construction");
        for (got, want) in solved.iter().zip(&x) {
            prop_assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn lu_determinant_of_product(a in arb_matrix(4), b in arb_matrix(4)) {
        let da = lu::LuDecomposition::new(&a).expect("nonsingular").determinant();
        let db = lu::LuDecomposition::new(&b).expect("nonsingular").determinant();
        let dab = lu::LuDecomposition::new(&a.matmul(&b)).expect("nonsingular").determinant();
        prop_assert!((dab - da * db).abs() / dab.abs().max(1.0) < 1e-9);
    }

    #[test]
    fn quadratic_recovers_planted_roots(r1 in -50.0f64..50.0, gap in 0.01f64..100.0) {
        let r2 = r1 + gap;
        let roots = solve_quadratic(1.0, -(r1 + r2), r1 * r2);
        prop_assert_eq!(roots.len(), 2);
        prop_assert!((roots[0] - r1).abs() < 1e-6 * (1.0 + r1.abs()), "{} vs {r1}", roots[0]);
        prop_assert!((roots[1] - r2).abs() < 1e-6 * (1.0 + r2.abs()), "{} vs {r2}", roots[1]);
    }

    #[test]
    fn busy_period_fit_round_trips(rho in 0.01f64..0.99, mu in 0.1f64..20.0) {
        let q = MM1::new(rho * mu, mu);
        let target = q.busy_period_moments();
        let cox = fit_busy_period(&q).expect("busy periods are representable");
        let got = cox.moments();
        prop_assert!((got.m1 - target.m1).abs() / target.m1 < 1e-7);
        prop_assert!((got.m2 - target.m2).abs() / target.m2 < 1e-7);
        prop_assert!((got.m3 - target.m3).abs() / target.m3 < 1e-7);
        prop_assert!((0.0..=1.0).contains(&cox.q()));
    }

    #[test]
    fn mm1_busy_period_cv2_identity(rho in 0.01f64..0.99) {
        let q = MM1::new(rho, 1.0);
        let cv2 = q.busy_period_moments().cv2();
        let want = (1.0 + rho) / (1.0 - rho);
        prop_assert!((cv2 - want).abs() < 1e-9);
    }

    #[test]
    fn erlang_c_is_a_probability_and_mmk_beats_mm1_split(
        rho in 0.05f64..0.95,
        k in 1u32..40,
    ) {
        let lambda = rho * k as f64;
        let mmk = MMk::new(lambda, 1.0, k);
        let c = mmk.erlang_c();
        prop_assert!((0.0..=1.0).contains(&c));
        // Resource pooling: one fast M/M/k beats k split M/M/1s in E[T_Q]
        // comparison … the classical ordering E[T_Q](M/M/k) ≤ E[T_Q] of a
        // single M/M/1 with the same per-server load.
        let single = MM1::new(rho, 1.0);
        let wait_mm1 = single.mean_response_time() - 1.0;
        prop_assert!(mmk.mean_wait() <= wait_mm1 + 1e-9);
    }

    #[test]
    fn qbd_mm1_levels_are_geometric(rho in 0.05f64..0.95) {
        let qbd = Qbd::new(
            vec![Matrix::from_rows(&[&[rho]])],
            vec![Matrix::zeros(1, 1)],
            vec![],
            Matrix::from_rows(&[&[rho]]),
            Matrix::zeros(1, 1),
            Matrix::from_rows(&[&[1.0]]),
        )
        .expect("valid blocks");
        let sol = qbd.solve().expect("stable");
        prop_assert!((sol.total_probability() - 1.0).abs() < 1e-9);
        let mean = sol.mean_level();
        let want = rho / (1.0 - rho);
        prop_assert!((mean - want).abs() / want.max(1e-6) < 1e-7, "{mean} vs {want}");
    }

    #[test]
    fn qbd_mmk_matches_erlang_formulas(rho in 0.1f64..0.9, k in 2u32..12) {
        let lambda = rho * k as f64;
        let up = vec![Matrix::from_rows(&[&[lambda]]); k as usize];
        let local = vec![Matrix::zeros(1, 1); k as usize];
        let down = (1..k as usize)
            .map(|l| Matrix::from_rows(&[&[l as f64]]))
            .collect();
        let qbd = Qbd::new(
            up,
            local,
            down,
            Matrix::from_rows(&[&[lambda]]),
            Matrix::zeros(1, 1),
            Matrix::from_rows(&[&[k as f64]]),
        )
        .expect("valid blocks");
        let sol = qbd.solve().expect("stable");
        let want = MMk::new(lambda, 1.0, k).mean_number_in_system();
        prop_assert!(
            (sol.mean_level() - want).abs() / want < 1e-7,
            "{} vs {want}",
            sol.mean_level()
        );
    }
}

#[test]
fn analysis_is_deterministic() {
    // The whole analytic pipeline must be bit-reproducible run to run.
    use eirs_repro::core::prelude::*;
    let p = SystemParams::with_equal_lambdas(4, 0.5, 1.0, 0.9).unwrap();
    let a = analyze_inelastic_first(&p).unwrap();
    let b = analyze_inelastic_first(&p).unwrap();
    assert_eq!(a.mean_response.to_bits(), b.mean_response.to_bits());
}
