//! Cross-checks between three independent solution methods:
//!
//! * matrix-analytic QBD analysis (`eirs-core`, infinite state space,
//!   busy-period approximation),
//! * truncated-MDP policy evaluation (`eirs-mdp`, exact on the truncated
//!   chain),
//! * truncated-MDP optimization (Theorems 1/5 numerically).

use eirs_core::prelude::*;
use eirs_mdp::{ef_allocation, evaluate_policy, if_allocation, solve_optimal, MdpConfig};

fn mdp_cfg(p: &SystemParams, n: usize) -> MdpConfig {
    MdpConfig {
        k: p.k,
        lambda_i: p.lambda_i,
        lambda_e: p.lambda_e,
        mu_i: p.mu_i,
        mu_e: p.mu_e,
        max_i: n,
        max_j: n,
        allow_idling: false,
    }
}

#[test]
fn truncated_if_evaluation_matches_matrix_analytic() {
    let p = SystemParams::with_equal_lambdas(2, 1.0, 1.0, 0.6).unwrap();
    let analytic = analyze_inelastic_first(&p).unwrap().mean_num_in_system();
    let cfg = mdp_cfg(&p, 70);
    let truncated = evaluate_policy(&cfg, &if_allocation(p.k), 1e-9, 400_000).unwrap();
    let rel = (analytic - truncated).abs() / truncated;
    assert!(
        rel < 0.01,
        "QBD {analytic} vs MDP {truncated} (rel {rel:.4})"
    );
}

#[test]
fn truncated_ef_evaluation_matches_matrix_analytic() {
    let p = SystemParams::with_equal_lambdas(2, 1.0, 1.0, 0.6).unwrap();
    let analytic = analyze_elastic_first(&p).unwrap().mean_num_in_system();
    let cfg = mdp_cfg(&p, 70);
    let truncated = evaluate_policy(&cfg, &ef_allocation(p.k), 1e-9, 400_000).unwrap();
    let rel = (analytic - truncated).abs() / truncated;
    assert!(
        rel < 0.01,
        "QBD {analytic} vs MDP {truncated} (rel {rel:.4})"
    );
}

#[test]
fn optimal_equals_if_in_the_proved_regime() {
    // µ_I ≥ µ_E (Theorems 1 and 5): the MDP optimum is IF's cost.
    for (mu_i, mu_e) in [(1.0, 1.0), (2.0, 1.0)] {
        let p = SystemParams::with_equal_lambdas(2, mu_i, mu_e, 0.6).unwrap();
        let cfg = mdp_cfg(&p, 50);
        let opt = solve_optimal(&cfg, 1e-9, 500_000).unwrap();
        let g_if = evaluate_policy(&cfg, &if_allocation(p.k), 1e-9, 500_000).unwrap();
        assert!(
            (opt.average_cost - g_if).abs() < 1e-5,
            "(µI={mu_i}): optimal {} vs IF {g_if}",
            opt.average_cost
        );
        // Interior region only: boundary states react to rejected arrivals
        // and deep states are tie-degenerate when µ_I = µ_E.
        assert!(opt.matches_inelastic_first(p.k, 10, 10));
    }
}

#[test]
fn optimal_strictly_beats_if_in_the_open_regime() {
    // µ_I < µ_E at high load: Theorem 6's message in steady state. The
    // optimal policy also weakly beats EF (EF need not be optimal either).
    let p = SystemParams::with_equal_lambdas(2, 0.25, 1.0, 0.8).unwrap();
    let cfg = mdp_cfg(&p, 60);
    let opt = solve_optimal(&cfg, 1e-9, 500_000).unwrap();
    let g_if = evaluate_policy(&cfg, &if_allocation(p.k), 1e-9, 500_000).unwrap();
    let g_ef = evaluate_policy(&cfg, &ef_allocation(p.k), 1e-9, 500_000).unwrap();
    assert!(
        opt.average_cost < g_if - 1e-3,
        "optimal {} should strictly beat IF {g_if}",
        opt.average_cost
    );
    assert!(opt.average_cost <= g_ef + 1e-6);
}

#[test]
fn ef_beats_if_in_mdp_where_figure4_says_so() {
    // Figure 4(c) region: µ_I ≪ µ_E at ρ = 0.8 — EF < IF on the truncated
    // chain too, independently of the QBD pipeline.
    let p = SystemParams::with_equal_lambdas(2, 0.25, 1.0, 0.8).unwrap();
    let cfg = mdp_cfg(&p, 60);
    let g_if = evaluate_policy(&cfg, &if_allocation(p.k), 1e-9, 500_000).unwrap();
    let g_ef = evaluate_policy(&cfg, &ef_allocation(p.k), 1e-9, 500_000).unwrap();
    assert!(g_ef < g_if, "EF {g_ef} vs IF {g_if}");
}
