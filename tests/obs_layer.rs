//! Contracts of the `eirs_obs` observability layer (PR 9 tentpole):
//!
//! 1. **Histogram algebra** — the log-linear latency histogram's merge is
//!    exact and associative, shard-order invariant, and merging per-shard
//!    histograms equals recording the whole stream into one histogram;
//!    quantiles stay within the bucket-precision bound of a sorted
//!    reference.
//! 2. **Invariance** — turning telemetry on never perturbs an output:
//!    serve decision digests, warm-sweep cells, and fuzz verdicts are
//!    bit-identical with the layer enabled and disabled. Telemetry is
//!    write-only by construction; these tests pin the construction.
//!
//! The enable flag is process-global, so every test that toggles it (or
//! reads the collected events) serializes on [`obs_lock`].

use eirs_repro::obs::LatencyHistogram;
use eirs_repro::{core, obs};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that touch the global enable flag / event buffers.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn hist_of(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Arbitrary latency-like values spanning the histogram's full range:
/// sub-microsecond to minutes in nanoseconds.
fn values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..200_000_000_000, 0..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Satellite 3a: merge is associative (and the fold is exact, so the
    // comparison is full struct equality — buckets, count, sum, min, max).
    #[test]
    fn histogram_merge_is_associative(a in values(), b in values(), c in values()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    // Satellite 3b: shard order never matters — any permutation of the
    // per-shard histograms merges to the same aggregate.
    #[test]
    fn histogram_merge_is_shard_order_invariant(
        shards in prop::collection::vec(values(), 1..6),
        seed in 0u64..1000,
    ) {
        let hists: Vec<LatencyHistogram> = shards.iter().map(|s| hist_of(s)).collect();
        let mut forward = LatencyHistogram::new();
        for h in &hists {
            forward.merge(h);
        }
        // A seeded Fisher–Yates shuffle of the merge order.
        let mut order: Vec<usize> = (0..hists.len()).collect();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for i in (1..order.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut shuffled = LatencyHistogram::new();
        for &i in &order {
            shuffled.merge(&hists[i]);
        }
        prop_assert_eq!(forward, shuffled);
    }

    // Satellite 3c: merging shards equals recording the whole stream,
    // and the merged quantiles track a sorted reference within the
    // log-linear bucket precision (2^-5 relative, with slack).
    #[test]
    fn merged_histogram_equals_whole_and_tracks_sorted_reference(
        shards in prop::collection::vec(
            prop::collection::vec(1u64..100_000_000, 1..200),
            1..5,
        ),
        q_idx in 0usize..4,
    ) {
        let mut merged = LatencyHistogram::new();
        for s in &shards {
            merged.merge(&hist_of(s));
        }
        let mut all: Vec<u64> = shards.iter().flatten().copied().collect();
        let whole = hist_of(&all);
        prop_assert_eq!(&merged, &whole, "merged-of-shards must equal whole-stream");

        all.sort_unstable();
        let q = [0.5, 0.9, 0.99, 1.0][q_idx];
        let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
        let exact = all[rank - 1] as f64;
        let est = merged.quantile(q).expect("nonempty") as f64;
        // Bucket midpoints are within 2^-5 ≈ 3.1% of any member value;
        // 5% covers rank rounding at tiny counts.
        let tol = (exact * 0.05).max(2.0);
        prop_assert!(
            (est - exact).abs() <= tol,
            "q{q}: histogram {est} vs sorted reference {exact}"
        );
    }
}

/// Serve: enabling telemetry must not move a single decision bit, and
/// the deterministic per-shard metrics (now including the response-time
/// sketches) must be identical too. Only the wall-clock latency
/// histogram — which is not part of the metrics — may differ.
#[test]
fn serve_decisions_and_metrics_are_invariant_under_telemetry() {
    use eirs_repro::queueing::Exponential;
    use eirs_repro::serve::{CompiledTable, EngineConfig, ServeEngine};
    use eirs_repro::sim::arrivals::ArrivalTrace;
    use eirs_repro::sim::policy::FairShare;

    let _guard = obs_lock();
    let trace = ArrivalTrace::record_poisson(
        0.9,
        0.6,
        Box::new(Exponential::new(1.0)),
        Box::new(Exponential::new(0.8)),
        23,
        150.0,
    );
    let run = || {
        let table = CompiledTable::compile(Box::new(FairShare), 3, 24, 24);
        let mut engine = ServeEngine::new(table, EngineConfig::new(3).route_shards(4).batch(32));
        let mut source = trace.stream();
        engine.run(&mut source, f64::INFINITY);
        engine
    };
    obs::set_enabled(false);
    let off = run();
    obs::set_enabled(true);
    let on = run();
    obs::set_enabled(false);
    obs::reset();

    assert_eq!(on.decision_digest(), off.decision_digest());
    assert_eq!(on.shard_digests(), off.shard_digests());
    assert_eq!(on.metrics_per_shard(), off.metrics_per_shard());
    assert_eq!(
        on.response_histogram(),
        off.response_histogram(),
        "sim-time response histogram is deterministic, not telemetry"
    );
    // The wall-clock histogram is the only on/off difference.
    assert!(on.decision_latency().count() > 0);
    assert_eq!(off.decision_latency().count(), 0);
}

/// Warm figure-4 sweep: spans and solver counters on, every cell bit
/// equals the telemetry-off run, and the trace actually collected spans.
#[test]
fn warm_sweep_output_is_invariant_under_telemetry() {
    use core::experiments::figure4_heatmap_warm_with_threads;

    let _guard = obs_lock();
    obs::set_enabled(false);
    let off = figure4_heatmap_warm_with_threads(3, 0.7, 2).expect("grid solves");
    obs::reset();
    obs::set_enabled(true);
    let on = figure4_heatmap_warm_with_threads(3, 0.7, 2).expect("grid solves");
    obs::set_enabled(false);
    let events = obs::take_events();
    let snap = obs::snapshot();
    obs::reset();

    assert_eq!(on.len(), off.len());
    for (a, b) in on.iter().zip(&off) {
        assert_eq!(a.comparison.mrt_if.to_bits(), b.comparison.mrt_if.to_bits());
        assert_eq!(a.comparison.mrt_ef.to_bits(), b.comparison.mrt_ef.to_bits());
        assert_eq!(a.comparison.winner, b.comparison.winner);
    }
    assert!(
        events.iter().any(|e| e.name == "figure4.cell"),
        "sweep must emit per-cell spans when enabled"
    );
    assert!(
        snap.counter("markov.warm.attempts") > 0,
        "warm sweep must count warm-route attempts"
    );
    // The exported trace is well-formed JSON end to end.
    obs::export::validate_json(&obs::export::chrome_trace_json(&events, &snap))
        .expect("chrome trace must validate");
}

/// Fuzz: per-cell verdicts (replay token, flags, means — everything the
/// CI would act on) are bit-identical with telemetry on and off.
#[test]
fn fuzz_verdicts_are_invariant_under_telemetry() {
    use core::fuzz::{fuzz_run, FuzzConfig};

    let _guard = obs_lock();
    let cfg = FuzzConfig {
        budget: 6,
        seed: 0x0B5_CAFE,
        shrink: false,
        threads: 2,
        replications: 2,
        departures: 300,
        warmup: 30,
        accounting_arrivals: 50,
        ..FuzzConfig::default()
    };
    obs::set_enabled(false);
    let off = fuzz_run(&cfg, &[]);
    obs::set_enabled(true);
    let on = fuzz_run(&cfg, &[]);
    obs::set_enabled(false);
    obs::reset();

    assert_eq!(on.flagged, off.flagged);
    assert_eq!(on.tractable, off.tractable);
    assert_eq!(on.cells.len(), off.cells.len());
    for (a, b) in on.cells.iter().zip(&off.cells) {
        assert_eq!(a.token, b.token);
        assert_eq!(a.cell.render(), b.cell.render());
        assert_eq!(a.tractable, b.tractable);
        assert_eq!(
            a.analysis_mean.map(f64::to_bits),
            b.analysis_mean.map(f64::to_bits)
        );
        assert_eq!(a.des_mean.to_bits(), b.des_mean.to_bits());
        assert_eq!(a.ci_half_width.to_bits(), b.ci_half_width.to_bits());
        assert_eq!(a.flags.len(), b.flags.len());
    }
}

/// The disabled layer is inert end to end: no events, no counters, and
/// `LatencyHistogram`'s encode/decode (used by serve snapshots) is
/// lossless either way.
#[test]
fn disabled_layer_collects_nothing_and_codecs_round_trip() {
    let _guard = obs_lock();
    obs::set_enabled(false);
    obs::reset();
    {
        let mut s = obs::span("never", "test");
        s.arg("x", 1u64);
    }
    obs::event("never-either", "test");
    assert!(obs::take_events().is_empty());

    let h = hist_of(&[3, 70, 4096, 123_456_789]);
    let restored = LatencyHistogram::decode(&h.encode()).expect("round trip");
    assert_eq!(restored, h);
    assert_eq!(restored.quantile(0.5), h.quantile(0.5));
}
