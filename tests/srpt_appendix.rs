//! Property tests for Appendix A: the generalized SRPT-k 4-approximation
//! and the dual-fitting machinery behind it.

use eirs_srpt::{lp_lower_bound, srpt_k_schedule, verify_dual_fitting, BatchInstance, BatchJob};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = BatchInstance> {
    (
        2u32..=8,
        prop::collection::vec((0.05f64..20.0, 1u32..=8), 1..60),
    )
        .prop_map(|(k, raw)| {
            let jobs = raw
                .into_iter()
                .map(|(size, cap)| BatchJob {
                    size,
                    cap: cap.min(k),
                })
                .collect();
            BatchInstance::new(k, jobs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn srpt_k_is_within_factor_four_of_the_lp_bound(instance in arb_instance()) {
        let c1 = srpt_k_schedule(&instance, 1.0).total_response_time;
        let lb = lp_lower_bound(&instance);
        prop_assert!(lb > 0.0);
        prop_assert!(c1 >= lb - 1e-9, "schedule beats its own lower bound: {c1} < {lb}");
        prop_assert!(c1 <= 4.0 * lb + 1e-9, "ratio {} exceeds 4", c1 / lb);
    }

    #[test]
    fn dual_solution_is_feasible_and_strong_enough(instance in arb_instance()) {
        let r = verify_dual_fitting(&instance);
        prop_assert!(r.is_feasible(1e-9), "violation {}", r.max_constraint_violation);
        prop_assert!(r.lemma8_holds(1e-9), "Σα − ∫β = {} < C₂/2 = {}", r.dual_objective, r.speed2_total_response / 2.0);
        prop_assert!(r.weak_duality_holds(1e-9), "dual {} > LP {}", r.dual_objective, r.lp_bound);
    }

    #[test]
    fn speed_scaling_is_exact(instance in arb_instance()) {
        let c1 = srpt_k_schedule(&instance, 1.0).total_response_time;
        let c2 = srpt_k_schedule(&instance, 2.0).total_response_time;
        prop_assert!((c1 - 2.0 * c2).abs() / c1 < 1e-9);
    }

    #[test]
    fn completions_cover_all_jobs(instance in arb_instance()) {
        let s = srpt_k_schedule(&instance, 1.0);
        prop_assert_eq!(s.completion_times.len(), instance.len());
        for (idx, &c) in s.completion_times.iter().enumerate() {
            // No job can finish faster than its own size over its cap.
            let floor = instance.jobs[idx].size / instance.jobs[idx].cap as f64;
            prop_assert!(c >= floor - 1e-9, "job {idx} done at {c} < floor {floor}");
        }
    }
}

#[test]
fn chain_of_inequalities_from_the_proof_holds_end_to_end() {
    // (1−1/2)·C₂ ≤ Σα − ∫β ≤ LP* ≤ C₁ and C₁ = 2·C₂ ⇒ C₁ ≤ 4·LP*.
    for seed in 0..20 {
        let i = BatchInstance::random_elastic_inelastic(120, 8, 0.5, seed);
        let r = verify_dual_fitting(&i);
        assert!(0.5 * r.speed2_total_response <= r.dual_objective + 1e-9);
        assert!(r.dual_objective <= r.lp_bound + 1e-9);
        assert!(r.lp_bound <= r.speed1_total_response + 1e-9);
        assert!(r.approx_ratio <= 4.0 + 1e-9);
    }
}
