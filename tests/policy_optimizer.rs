//! Integration tests of the policy-optimization subsystem (PR 4
//! tentpole): the search loop `family → objective → optimizer` must
//! recover the paper's structural results and certify against the MDP.
//!
//! 1. **Structure recovery** (property test): on Poisson×exp instances in
//!    the provably-optimal regime `µ_I ≥ µ_E` (Theorems 1 and 5), the MDP
//!    optimum is Inelastic-First-structured
//!    (`MdpSolution::matches_inelastic_first`) — and the optimizer over
//!    the threshold and switching-curve families must land on a policy
//!    with that same IF structure on the state-space interior, at an
//!    IF-matching mean response time.
//! 2. **Certification**: in the open `µ_I < µ_E` regime the searched
//!    tabular family must close to within 1% of `solve_optimal`'s exact
//!    optimum while strictly beating both fixed baselines.
//! 3. **DES objective**: searches on intractable workloads are
//!    deterministic end to end under a fixed seed.

use eirs_repro::core::analysis::{analyze_policy_with, AnalyzeOptions};
use eirs_repro::core::policy::{AllocationPolicy, ElasticFirst, InelasticFirst};
use eirs_repro::core::scenario::{ArrivalSpec, ServiceSpec, Workload};
use eirs_repro::core::SystemParams;
use eirs_repro::mdp::{solve_optimal, MdpConfig};
use eirs_repro::opt::certify_against_mdp;
use eirs_repro::opt::objective::{AnalyticObjective, DesObjective};
use eirs_repro::opt::optim::{optimize, optimize_with_start, Budget, Method};
use eirs_repro::opt::space::{
    ParamSpace, SwitchingCurveFamily, TabularFamily, ThresholdFamily, WaterFillingFamily,
};
use proptest::prelude::*;

fn analyze_opts() -> AnalyzeOptions {
    AnalyzeOptions {
        phase_cap: 32,
        ..AnalyzeOptions::default()
    }
}

/// `true` when `policy` allocates exactly like Inelastic-First on the
/// interior window `(i, j) ∈ [0, w]²`.
fn matches_if_structure(policy: &dyn AllocationPolicy, k: u32, w: usize) -> bool {
    (0..=w).all(|i| {
        (0..=w).all(|j| {
            let a = policy.allocate(i, j, k);
            let b = InelasticFirst.allocate(i, j, k);
            (a.inelastic - b.inelastic).abs() < 1e-12 && (a.elastic - b.elastic).abs() < 1e-12
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: the optimizer over the threshold and switching-curve
    /// families recovers the paper's structural result on a randomized
    /// `(k, ρ)` grid in the `µ_I ≥ µ_E` regime — best-found matches the
    /// MDP optimum's Inelastic-First structure.
    #[test]
    fn optimizer_recovers_if_structure_where_mdp_is_if(
        k in 2u32..5,
        rho_pct in 30u32..75,
    ) {
        let rho = rho_pct as f64 / 100.0;
        let params = SystemParams::with_equal_lambdas(k, 1.5, 1.0, rho).unwrap();

        // The MDP optimum itself is IF-structured here (Theorem 5).
        let cfg = MdpConfig {
            k,
            lambda_i: params.lambda_i,
            lambda_e: params.lambda_e,
            mu_i: params.mu_i,
            mu_e: params.mu_e,
            max_i: 36,
            max_j: 36,
            allow_idling: false,
        };
        let mdp = solve_optimal(&cfg, 1e-8, 500_000).unwrap();
        prop_assert!(mdp.matches_inelastic_first(k, 10, 10));

        let objective = AnalyticObjective::poisson_exp(params, analyze_opts());
        let if_response = analyze_policy_with(&InelasticFirst, &params, &analyze_opts())
            .unwrap()
            .mean_response;

        // Threshold family: the exhaustive scan's larger-parameter
        // tie-break must resolve the flat tail to the IF-most member.
        let threshold = ThresholdFamily { max_threshold: 12 };
        let r = optimize(&threshold, &objective, Method::Auto, &Budget::default()).unwrap();
        let best = threshold.decode(&r.best_x);
        prop_assert!(
            matches_if_structure(best.as_ref(), k, 2),
            "threshold best {} is not IF-structured (k={k}, rho={rho})",
            r.best_params
        );
        prop_assert!(
            r.best_value <= if_response * 1.01,
            "threshold best {} vs IF {if_response}",
            r.best_value
        );

        // Switching-curve family via pattern search.
        let curve = SwitchingCurveFamily { max_intercept: 12, max_slope: 2.0 };
        let budget = Budget { max_evals: 60, seed: 7 };
        let r = optimize(&curve, &objective, Method::Coordinate, &budget).unwrap();
        let best = curve.decode(&r.best_x);
        prop_assert!(
            matches_if_structure(best.as_ref(), k, 2),
            "curve best {} is not IF-structured (k={k}, rho={rho})",
            r.best_params
        );
        prop_assert!(
            r.best_value <= if_response * 1.01,
            "curve best {} vs IF {if_response}",
            r.best_value
        );
    }
}

#[test]
fn tabular_search_certifies_within_one_percent_in_the_open_regime() {
    // µ_I < µ_E at moderate load: IF is strictly suboptimal and neither
    // fixed baseline is optimal; the searched tabular family must close
    // to within 1% of the exact MDP optimum (the acceptance criterion)
    // and strictly beat both baselines.
    let params = SystemParams::with_equal_lambdas(3, 0.5, 1.0, 0.6).unwrap();
    let objective = AnalyticObjective::poisson_exp(params, analyze_opts());
    let family = TabularFamily {
        k: 3,
        grid_i: 3,
        grid_j: 3,
    };
    let budget = Budget {
        max_evals: 250,
        seed: 42,
    };
    let coarse = optimize(&family, &objective, Method::CrossEntropy, &budget).unwrap();
    let polished = optimize_with_start(
        &family,
        &objective,
        Method::Coordinate,
        &budget,
        Some(&coarse.best_x),
    )
    .unwrap();
    let best_value = polished.best_value.min(coarse.best_value);

    let cert = certify_against_mdp(&params, best_value, 48).unwrap();
    assert!(
        cert.optimality_gap <= 0.01,
        "gap {:.4}% (found {}, mdp {})",
        100.0 * cert.optimality_gap,
        cert.best_found_mean_response,
        cert.mdp_mean_response
    );
    // Open regime: the MDP optimum is NOT Inelastic-First here.
    assert!(!cert.mdp_matches_inelastic_first);

    for baseline in [
        analyze_policy_with(&InelasticFirst, &params, &analyze_opts()).unwrap(),
        analyze_policy_with(&ElasticFirst, &params, &analyze_opts()).unwrap(),
    ] {
        assert!(
            best_value < baseline.mean_response,
            "found {best_value} should beat baseline {}",
            baseline.mean_response
        );
    }
}

#[test]
fn golden_section_tunes_the_waterfill_weight_against_the_exact_chain() {
    // 1-D continuous family end-to-end: the tuned weight must beat both
    // the fair-share point (w = 1) and the family's box edges.
    let params = SystemParams::with_equal_lambdas(4, 0.5, 1.0, 0.6).unwrap();
    let objective = AnalyticObjective::poisson_exp(params, analyze_opts());
    let family = WaterFillingFamily {
        max_log2_weight: 5.0,
    };
    let r = optimize(&family, &objective, Method::Auto, &Budget::default()).unwrap();
    assert_eq!(r.optimizer, "golden-section");
    let mut edges = Vec::new();
    for x in [-5.0, 0.0, 5.0] {
        let p = family.decode(&[x]);
        edges.push(
            analyze_policy_with(p.as_ref(), &params, &analyze_opts())
                .unwrap()
                .mean_response,
        );
    }
    for (edge, label) in edges.iter().zip(["w=1/32", "w=1 (fair share)", "w=32"]) {
        assert!(
            r.best_value <= edge + 1e-9,
            "tuned {} should be no worse than {label} ({edge})",
            r.best_value
        );
    }
}

#[test]
fn des_backed_search_is_deterministic_under_a_fixed_seed() {
    // Intractable workload (bursty batches) → CRN-paired DES objective;
    // the whole search must reproduce bit-identically.
    let params = SystemParams::with_equal_lambdas(3, 0.5, 1.0, 0.5).unwrap();
    let bursty = Workload::new(
        ArrivalSpec::Bursty { mean_burst: 4.0 },
        ServiceSpec::Exponential,
        ServiceSpec::Exponential,
    );
    let family = ThresholdFamily { max_threshold: 6 };
    let budget = Budget {
        max_evals: 6,
        seed: 11,
    };
    let run = || {
        let objective = DesObjective::new(bursty.clone(), params, 11, 3, 4_000);
        optimize(&family, &objective, Method::Auto, &budget).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.best_x, b.best_x);
    assert_eq!(a.best_value.to_bits(), b.best_value.to_bits());
    assert_eq!(a.trace.len(), b.trace.len());
    assert!(a.best_value.is_finite() && a.best_value > 0.0);
}
