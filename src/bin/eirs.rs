//! `eirs` — command-line front end for the reproduction.
//!
//! ```text
//! eirs analyze   --k 4 --lambda-i 1 --lambda-e 1 --mu-i 2 --mu-e 1
//! eirs compare   --k 4 --rho 0.7 --mu-i 0.5 --mu-e 1
//! eirs policy    --policy threshold:3 --k 4 --rho 0.7 --mu-i 0.5 --mu-e 1
//! eirs scenario  --workload map --policy if,ef,fairshare --k 4 --rho 0.7
//! eirs simulate  --policy if --k 4 --rho 0.7 --mu-i 1 --mu-e 1 \
//!                --departures 500000 --seed 1
//! eirs counterexample --ratio 2
//! ```
//!
//! All commands accept a global `--threads N` to pin the sweep worker
//! count (otherwise `EIRS_THREADS` or all cores). Every command is a thin
//! wrapper over the library; see `README.md`.

use eirs_repro::cli::{CliArgs, CliError};
use eirs_repro::core::counterexample::expected_total_response_closed;
use eirs_repro::core::policy::parse_policy;
use eirs_repro::core::prelude::*;
use eirs_repro::core::sweep;
use eirs_repro::sim::des::run_markovian;
use eirs_repro::sim::replicate::run_markovian_replications;
use eirs_repro::sim::stats::ReplicationStats;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => {}
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!("usage: eirs <command> [--flag value]... [--threads N]");
    eprintln!("commands:");
    eprintln!("  analyze         exact E[T] under IF and EF for explicit rates");
    eprintln!("                  --k --lambda-i --lambda-e --mu-i --mu-e");
    eprintln!("  compare         IF vs EF at a target load (lambda_i = lambda_e)");
    eprintln!("                  --k --rho --mu-i --mu-e");
    eprintln!("  policy          analytic + DES evaluation of any policy spec");
    eprintln!("                  --policy --k --rho --mu-i --mu-e [--reps --departures");
    eprintln!("                  --seed --phase-cap --level-cut --force-general true]");
    eprintln!("  scenario        workload x policy grid: DES CI + analysis if tractable");
    eprintln!("                  --workload <spec[,spec...]|all> --policy <spec[,spec...]|all>");
    eprintln!("                  [--service-i --service-e --k --rho --mu-i --mu-e");
    eprintln!("                  --reps --departures --seed --phase-cap]");
    eprintln!("  simulate        DES run of one policy spec");
    eprintln!("                  --policy --k --rho --mu-i --mu-e --departures --seed");
    eprintln!("  counterexample  Theorem 6 closed system --ratio (mu_e/mu_i)");
    eprintln!();
    eprintln!("policy specs:   if | ef | fairshare | reserve:<r> | threshold:<t>");
    eprintln!("                | curve:<a>+<b>i | waterfill:<w> | random:<seed>");
    eprintln!("workload specs: poisson | map[:<r01>x<r10>x<a0>x<a1>] | bursty[:<mean>]");
    eprintln!("                | trace[:<path>] | smooth-service | heavytail-service");
    eprintln!("service specs:  exp | erlang:<stages> | hyper:<cv2> | det");
}

fn parse_params(args: &CliArgs) -> Result<SystemParams, String> {
    let k = args.get_parsed_or("k", 4u32).map_err(stringify)?;
    let mu_i = args.get_parsed_or("mu-i", 1.0).map_err(stringify)?;
    let mu_e = args.get_parsed_or("mu-e", 1.0).map_err(stringify)?;
    if let Some(rho_raw) = args.get("rho") {
        let rho: f64 = rho_raw
            .parse()
            .map_err(|_| format!("bad --rho '{rho_raw}'"))?;
        SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho).map_err(|e| e.to_string())
    } else {
        let lambda_i = args.get_parsed_or("lambda-i", 0.5).map_err(stringify)?;
        let lambda_e = args.get_parsed_or("lambda-e", 0.5).map_err(stringify)?;
        SystemParams::new(k, lambda_i, lambda_e, mu_i, mu_e).map_err(|e| e.to_string())
    }
}

fn stringify(e: CliError) -> String {
    e.to_string()
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let args = CliArgs::parse(raw).map_err(stringify)?;
    if let Some(n) = args.threads().map_err(stringify)? {
        sweep::set_threads(Some(n));
    }
    match args.command.as_str() {
        "analyze" => {
            let p = parse_params(&args)?;
            let a_if = analyze_inelastic_first(&p).map_err(|e| e.to_string())?;
            let a_ef = analyze_elastic_first(&p).map_err(|e| e.to_string())?;
            println!(
                "k={} lambda_i={:.4} lambda_e={:.4} mu_i={} mu_e={} rho={:.3}",
                p.k,
                p.lambda_i,
                p.lambda_e,
                p.mu_i,
                p.mu_e,
                p.load()
            );
            println!("policy           E[T]      E[T_I]    E[T_E]");
            for (name, a) in [("Inelastic-First", a_if), ("Elastic-First", a_ef)] {
                println!(
                    "{name:<16} {:<9.4} {:<9.4} {:<9.4}",
                    a.mean_response, a.mean_response_inelastic, a.mean_response_elastic
                );
            }
            Ok(())
        }
        "compare" => {
            let p = parse_params(&args)?;
            let c = eirs_repro::core::experiments::compare(&p).map_err(|e| e.to_string())?;
            println!(
                "E[T] IF = {:.4}   E[T] EF = {:.4}   winner: {:?}",
                c.mrt_if, c.mrt_ef, c.winner
            );
            if p.inelastic_first_provably_optimal() {
                println!("mu_i >= mu_e: Theorem 5 guarantees Inelastic-First is optimal.");
            } else {
                println!("mu_i < mu_e: outside the proved-optimal regime (see Theorem 6).");
            }
            Ok(())
        }
        "policy" => {
            let p = parse_params(&args)?;
            let policy = parse_policy(&args.get_or("policy", "if"))?;
            let reps = args.get_parsed_or("reps", 8usize).map_err(stringify)?;
            if reps < 2 {
                return Err(format!(
                    "--reps {reps} is too few: confidence intervals need at least 2 replications"
                ));
            }
            let departures = args
                .get_parsed_or("departures", 200_000u64)
                .map_err(stringify)?;
            let seed = args.get_parsed_or("seed", 1u64).map_err(stringify)?;
            let defaults = AnalyzeOptions::default();
            let opts = AnalyzeOptions {
                phase_cap: args
                    .get_parsed_or("phase-cap", defaults.phase_cap)
                    .map_err(stringify)?,
                max_level_cut: args
                    .get_parsed_or("level-cut", defaults.max_level_cut)
                    .map_err(stringify)?,
                // Escape hatch for policies that only look like strict
                // priority inside the probed window (e.g. a threshold
                // beyond --phase-cap): skip detection entirely.
                force_general: args
                    .get_parsed_or("force-general", defaults.force_general)
                    .map_err(stringify)?,
                ..defaults
            };
            println!(
                "policy: {}   (k={} lambda_i={:.4} lambda_e={:.4} mu_i={} mu_e={} rho={:.3})",
                policy.name(),
                p.k,
                p.lambda_i,
                p.lambda_e,
                p.mu_i,
                p.mu_e,
                p.load()
            );
            let a = analyze_policy_with(policy.as_ref(), &p, &opts).map_err(|e| e.to_string())?;
            println!(
                "analysis:   E[T] = {:.4} (inelastic {:.4}, elastic {:.4})",
                a.mean_response, a.mean_response_inelastic, a.mean_response_elastic
            );
            // DES replications on decorrelated seed streams, fanned out
            // over the sweep workers.
            let reports = run_markovian_replications(
                policy.as_ref(),
                p.k,
                p.lambda_i,
                p.lambda_e,
                p.mu_i,
                p.mu_e,
                seed,
                reps,
                departures / 10,
                departures,
            );
            let stats: ReplicationStats = reports.iter().map(|r| r.mean_response).collect();
            let ci = stats.confidence_interval();
            println!(
                "simulation: E[T] = {:.4} +- {:.4}  ({} reps x {} departures, 95% CI)",
                stats.mean(),
                ci.half_width,
                reps,
                departures
            );
            let inside = ci.contains(a.mean_response);
            println!(
                "agreement:  analysis {} the replication confidence interval",
                if inside { "inside" } else { "OUTSIDE" }
            );
            Ok(())
        }
        "scenario" => {
            use eirs_repro::core::experiments::{
                scenario_sweep, ScenarioSweepConfig, ScenarioSweepPoint,
            };
            use eirs_repro::core::scenario::{self, Workload};

            let p = parse_params(&args)?;
            // Comma-separated workload and policy lists; `all` expands to
            // the registries.
            let workload_specs = args.get_or("workload", "poisson");
            // `all` expands to the registry names; either way each spec
            // goes through parse_workload so --service-i/--service-e
            // overrides apply uniformly.
            let specs: Vec<String> = if workload_specs == "all" {
                scenario::registry().into_iter().map(|w| w.name).collect()
            } else {
                workload_specs
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect()
            };
            let workloads: Vec<Workload> = specs
                .iter()
                .map(|spec| {
                    scenario::parse_workload(spec, args.get("service-i"), args.get("service-e"))
                })
                .collect::<Result<_, _>>()?;
            let policy_specs = args.get_or("policy", "if");
            let policies = if policy_specs == "all" {
                eirs_repro::core::policy::registry(p.k)
            } else {
                policy_specs
                    .split(',')
                    .map(|s| parse_policy(s.trim()))
                    .collect::<Result<_, _>>()?
            };
            let reps = args.get_parsed_or("reps", 8usize).map_err(stringify)?;
            if reps < 2 {
                return Err(format!(
                    "--reps {reps} is too few: confidence intervals need at least 2 replications"
                ));
            }
            let departures = args
                .get_parsed_or("departures", 100_000u64)
                .map_err(stringify)?;
            let cfg = ScenarioSweepConfig {
                replications: reps,
                departures,
                warmup: departures / 10,
                base_seed: args.get_parsed_or("seed", 42u64).map_err(stringify)?,
            };
            let opts = AnalyzeOptions {
                phase_cap: args
                    .get_parsed_or("phase-cap", 48usize)
                    .map_err(stringify)?,
                ..AnalyzeOptions::default()
            };
            println!(
                "scenario grid: {} workload(s) x {} policy(ies)   (k={} lambda_i={:.4} \
                 lambda_e={:.4} mu_i={} mu_e={} rho={:.3}, {} reps x {} departures)",
                workloads.len(),
                policies.len(),
                p.k,
                p.lambda_i,
                p.lambda_e,
                p.mu_i,
                p.mu_e,
                p.load(),
                reps,
                departures
            );
            let points = scenario_sweep(&workloads, &policies, &p, &opts, &cfg)?;
            let widths = [28, 26, 10, 18, 12];
            let cell = |s: String, w: usize| format!("{s:<width$}", width = w + 2);
            let header: String = ["workload", "policy", "analysis", "des (95% CI)", "in CI"]
                .iter()
                .zip(&widths)
                .map(|(s, &w)| cell(s.to_string(), w))
                .collect();
            println!("{}", header.trim_end());
            for ScenarioSweepPoint {
                workload,
                policy,
                analysis_mean_response,
                des_mean_response,
                des_ci_half_width,
                des_replications,
                analysis_inside_ci,
                ..
            } in &points
            {
                let analysis = analysis_mean_response
                    .map(|m| format!("{m:.4}"))
                    .unwrap_or_else(|| "-".into());
                let in_ci = analysis_inside_ci
                    .map(|b| if b { "yes".into() } else { "NO".to_string() })
                    .unwrap_or_else(|| "-".into());
                // A deterministic trace replay runs once and is exact for
                // that trace — no interval to report.
                let des = if *des_replications == 1 {
                    format!("{des_mean_response:.4} (exact replay)")
                } else {
                    format!("{des_mean_response:.4} +- {des_ci_half_width:.4}")
                };
                let row: String = [workload.clone(), policy.clone(), analysis, des, in_ci]
                    .iter()
                    .zip(&widths)
                    .map(|(s, &w)| cell(s.clone(), w))
                    .collect();
                println!("{}", row.trim_end());
            }
            let checked = points.iter().filter(|pt| pt.analysis_inside_ci.is_some());
            let misses: Vec<&ScenarioSweepPoint> = checked
                .clone()
                .filter(|pt| pt.analysis_inside_ci == Some(false))
                .collect();
            println!(
                "tractable pairs: {} of {}   analysis inside CI: {}",
                checked.clone().count(),
                points.len(),
                checked.count() - misses.len()
            );
            for miss in misses {
                println!(
                    "  OUTSIDE CI: {}/{} (analysis {:.4}, DES {:.4} +- {:.4})",
                    miss.workload,
                    miss.policy,
                    miss.analysis_mean_response.unwrap_or(f64::NAN),
                    miss.des_mean_response,
                    miss.des_ci_half_width
                );
            }
            Ok(())
        }
        "simulate" => {
            let p = parse_params(&args)?;
            let departures = args
                .get_parsed_or("departures", 200_000u64)
                .map_err(stringify)?;
            let seed = args.get_parsed_or("seed", 1u64).map_err(stringify)?;
            let policy = parse_policy(&args.get_or("policy", "if"))?;
            let r = run_markovian(
                policy.as_ref(),
                p.k,
                p.lambda_i,
                p.lambda_e,
                p.mu_i,
                p.mu_e,
                seed,
                departures / 10,
                departures,
            );
            println!("policy: {}", policy.name());
            println!(
                "E[T] = {:.4} (inelastic {:.4}, elastic {:.4})",
                r.mean_response, r.mean_response_inelastic, r.mean_response_elastic
            );
            let (p50, p95, p99) = r.tail_response;
            println!("tails: P50 = {p50:.4}  P95 = {p95:.4}  P99 = {p99:.4}");
            println!(
                "E[N] = {:.4}   utilization = {:.3}",
                r.mean_num_in_system, r.utilization
            );
            Ok(())
        }
        "counterexample" => {
            let ratio = args.get_parsed_or("ratio", 2.0).map_err(stringify)?;
            let g_if = expected_total_response_closed(&InelasticFirst, 2, 2, 1, 1.0, ratio)
                .map_err(|e| e.to_string())?;
            let g_ef = expected_total_response_closed(&ElasticFirst, 2, 2, 1, 1.0, ratio)
                .map_err(|e| e.to_string())?;
            println!("Theorem 6 closed system (k=2, start 2 inelastic + 1 elastic, mu_i=1, mu_e={ratio}):");
            println!("E[sum T] IF = {g_if:.6}");
            println!("E[sum T] EF = {g_ef:.6}");
            println!(
                "better: {}",
                if g_ef < g_if {
                    "Elastic-First"
                } else {
                    "Inelastic-First (or tie)"
                }
            );
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}
