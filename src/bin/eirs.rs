//! `eirs` — command-line front end for the reproduction.
//!
//! ```text
//! eirs analyze   --k 4 --lambda-i 1 --lambda-e 1 --mu-i 2 --mu-e 1
//! eirs compare   --k 4 --rho 0.7 --mu-i 0.5 --mu-e 1
//! eirs policy    --policy threshold:3 --k 4 --rho 0.7 --mu-i 0.5 --mu-e 1
//! eirs scenario  --workload map --policy if,ef,fairshare --k 4 --rho 0.7
//! eirs optimize  --family curve --workload poisson --k 4 --rho 0.6 \
//!                --mu-i 0.5 --mu-e 1 --budget 120
//! eirs simulate  --policy if --k 4 --rho 0.7 --mu-i 1 --mu-e 1 \
//!                --departures 500000 --seed 1
//! eirs serve     --policy curve:2+0.5i --workload poisson --k 4 --rho 0.7 \
//!                --shards 4 --batch 1024 --duration 500
//! eirs serve     --policy curve:2+0.5i --listen 127.0.0.1:7070 --journal run.wal \
//!                --swap-policy optimize:threshold --swap-at 100000
//! eirs client    --connect 127.0.0.1:7070 --workload poisson --clients 4
//! eirs counterexample --ratio 2
//! ```
//!
//! All commands accept a global `--threads N` to pin the sweep worker
//! count (otherwise `EIRS_THREADS` or all cores); `policy`, `scenario`,
//! `optimize`, and `serve` accept `--json true` to emit one
//! machine-consumable JSON document instead of the human tables. Every
//! command is a thin wrapper over the library; see `README.md`.

use eirs_repro::bench::json::Json;
use eirs_repro::cli::{CliArgs, CliError};
use eirs_repro::core::counterexample::expected_total_response_closed;
use eirs_repro::core::policy::parse_policy;
use eirs_repro::core::prelude::*;
use eirs_repro::core::sweep;
use eirs_repro::opt;
use eirs_repro::sim::des::run_markovian;
use eirs_repro::sim::replicate::run_markovian_replications;
use eirs_repro::sim::stats::ReplicationStats;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => {}
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!("usage: eirs <command> [--flag value]... [--threads N]");
    eprintln!("commands:");
    eprintln!("  analyze         exact E[T] under IF and EF for explicit rates");
    eprintln!("                  --k --lambda-i --lambda-e --mu-i --mu-e");
    eprintln!("  compare         IF vs EF at a target load (lambda_i = lambda_e)");
    eprintln!("                  --k --rho --mu-i --mu-e");
    eprintln!("  policy          analytic + DES evaluation of any policy spec");
    eprintln!("                  --policy --k --rho --mu-i --mu-e [--reps --departures");
    eprintln!("                  --seed --phase-cap --level-cut --force-general true]");
    eprintln!("  scenario        workload x policy grid: DES CI + analysis if tractable");
    eprintln!("                  --workload <spec[,spec...]|all> --policy <spec[,spec...]|all>");
    eprintln!("                  [--service-i --service-e --churn <fault spec> --k --rho");
    eprintln!("                  --mu-i --mu-e --reps --departures --seed --phase-cap]");
    eprintln!("  optimize        search a policy family for the best allocation");
    eprintln!("                  --family --workload [--method auto|golden|nelder-mead");
    eprintln!("                  |coordinate|cross-entropy --budget --objective auto|analysis");
    eprintln!("                  |des --k --rho --mu-i --mu-e --reps --departures --seed");
    eprintln!("                  --certify auto|mdp|none --grid --phase-cap]");
    eprintln!("  simulate        DES run of one policy spec");
    eprintln!("                  --policy --k --rho --mu-i --mu-e --departures --seed");
    eprintln!("  serve           online decision server: compiled table + sharded engine");
    eprintln!("                  --policy --workload --shards --batch --duration [--route-shards");
    eprintln!("                  --grid --seed --snapshot <path> --k --rho --mu-i --mu-e]");
    eprintln!("                  faults:   [--churn <fault spec> --fault-seed --fault-horizon");
    eprintln!("                  --shed-limit <jobs>]");
    eprintln!("                  recovery: [--journal <path> --snapshot-at <n> --kill-after <n>");
    eprintln!("                  --recover true]");
    eprintln!("                  network:  [--listen <addr> --addr-file <path> --queue-cap <n>");
    eprintln!("                  --shed true] hot-swap: [--swap-policy <spec|optimize:<family>>");
    eprintln!("                  --swap-at <n>] replay: [--replay-journal <path> --drain true]");
    eprintln!("  client          load generator for a networked serve (--listen) front end");
    eprintln!("                  --connect <host:port> [--clients <n> --workload --duration");
    eprintln!("                  --seed --swap <spec> --swap-after <n> --k --rho --mu-i --mu-e]");
    eprintln!("  fuzz            seeded scenario fuzzer: random (workload, policy) cells");
    eprintln!("                  through every differential oracle (analysis vs DES,");
    eprintln!("                  accounting, digests, optimizer vs baselines)");
    eprintln!("                  --budget --seed [--shrink false --reps --departures");
    eprintln!("                  --warmup] | --replay <token>");
    eprintln!("  counterexample  Theorem 6 closed system --ratio (mu_e/mu_i)");
    eprintln!();
    eprintln!("policy specs:   if | ef | fairshare | reserve:<r> | threshold:<t>");
    eprintln!("                | curve:<a>+<b>i | waterfill:<w> | random:<seed>");
    eprintln!("workload specs: poisson | map[:<r01>x<r10>x<a0>x<a1>] | bursty[:<mean>]");
    eprintln!("                | trace[:<path>] | smooth-service | heavytail-service");
    eprintln!("service specs:  exp | erlang:<stages> | hyper:<cv2> | det");
    eprintln!("fault specs:    crash:mtbf=<t>,mttr=<t> | drain:period=<t>,down=<t>[,servers=<n>]");
    eprintln!("                | mmpp:r01=<r>,r10=<r>,a0=<r>,a1=<r>[,mttr=<t>]");
    eprintln!("family specs:   threshold[:<max>] | curve[:<max_intercept>] | waterfill");
    eprintln!("                | reserve | tabular[:<I>x<J>]");
    eprintln!();
    eprintln!("policy, scenario, optimize, serve, client, and fuzz accept --json true for machine");
    eprintln!("output.");
    eprintln!("all commands accept --metrics-out <path> (Prometheus text) and --trace-out <path>");
    eprintln!("(Chrome trace-event JSON; .jsonl for line-delimited events) to export telemetry;");
    eprintln!("either flag enables the eirs_obs layer for the run (outputs are unchanged).");
}

fn parse_params(args: &CliArgs) -> Result<SystemParams, String> {
    let k = args.get_parsed_or("k", 4u32).map_err(stringify)?;
    let mu_i = args.get_parsed_or("mu-i", 1.0).map_err(stringify)?;
    let mu_e = args.get_parsed_or("mu-e", 1.0).map_err(stringify)?;
    if let Some(rho_raw) = args.get("rho") {
        let rho: f64 = rho_raw
            .parse()
            .map_err(|_| format!("bad --rho '{rho_raw}'"))?;
        SystemParams::with_equal_lambdas(k, mu_i, mu_e, rho).map_err(|e| e.to_string())
    } else {
        let lambda_i = args.get_parsed_or("lambda-i", 0.5).map_err(stringify)?;
        let lambda_e = args.get_parsed_or("lambda-e", 0.5).map_err(stringify)?;
        SystemParams::new(k, lambda_i, lambda_e, mu_i, mu_e).map_err(|e| e.to_string())
    }
}

fn stringify(e: CliError) -> String {
    e.to_string()
}

/// Shared spec-error reporting for `policy`/`scenario`/`optimize`/`serve`:
/// a malformed `--policy`, `--workload`, or `--family` spec always surfaces
/// as `--<flag> '<spec>': <reason>` through `run`'s single error path —
/// printed to stderr with a non-zero exit, never a panic or unwrap.
fn spec_error(flag: &str, spec: &str, err: &str) -> String {
    format!("--{flag} '{spec}': {err}")
}

/// The `--policy` flag as a single policy spec.
fn policy_flag(args: &CliArgs) -> Result<Box<dyn AllocationPolicy>, String> {
    let spec = args.get_or("policy", "if");
    parse_policy(&spec).map_err(|e| spec_error("policy", &spec, &e))
}

/// The `--policy` flag as a comma-separated list (`all` expands to the
/// registry for `k` servers).
fn policy_list_flag(args: &CliArgs, k: u32) -> Result<Vec<Box<dyn AllocationPolicy>>, String> {
    let specs = args.get_or("policy", "if");
    if specs == "all" {
        return Ok(eirs_repro::core::policy::registry(k));
    }
    specs
        .split(',')
        .map(|raw| {
            let spec = raw.trim();
            parse_policy(spec).map_err(|e| spec_error("policy", spec, &e))
        })
        .collect()
}

/// The `--workload` flag (with `--service-i`/`--service-e` overrides and
/// the `--churn` capacity-fault axis).
fn workload_flag(args: &CliArgs) -> Result<eirs_repro::core::scenario::Workload, String> {
    let spec = args.get_or("workload", "poisson");
    if let Some(churn) = args.get("churn") {
        // Surface a malformed churn spec under its own flag, not as a
        // workload error.
        eirs_repro::sim::FaultSpec::parse(churn).map_err(|e| spec_error("churn", churn, &e))?;
    }
    eirs_repro::core::scenario::parse_workload(
        &spec,
        args.get("service-i"),
        args.get("service-e"),
        args.get("churn"),
    )
    .map_err(|e| spec_error("workload", &spec, &e))
}

/// The `--family` flag (optimizer parameter spaces).
fn family_flag(args: &CliArgs, k: u32) -> Result<Box<dyn opt::ParamSpace>, String> {
    let spec = args.get_or("family", "curve");
    opt::parse_family(&spec, k).map_err(|e| spec_error("family", &spec, &e))
}

/// One baseline row of the `optimize` report: display name, mean
/// response, and — on the DES backend — the paired comparison
/// `(diff_mean, diff_ci_half_width, improves)`.
type BaselineRow = (String, f64, Option<(f64, f64, bool)>);

/// The `--json true` flag shared by `policy`, `scenario`, and `optimize`.
fn json_mode(args: &CliArgs) -> Result<bool, String> {
    args.get_parsed_or("json", false).map_err(stringify)
}

/// The hot-swap generation schedule as JSON rows (shared by every serve
/// mode: offline, networked, and journal replay).
fn swap_rows(swaps: &[eirs_repro::serve::SwapRecord]) -> Vec<Json> {
    swaps
        .iter()
        .map(|s| {
            let mut r = Json::object();
            r.set("seq", s.seq)
                .set("generation", s.generation as u64)
                .set("table_hash", format!("0x{:016x}", s.hash))
                .set("spec", s.spec.as_str());
            r
        })
        .collect()
}

/// One human-readable line per hot-swap.
fn print_swap_log(swaps: &[eirs_repro::serve::SwapRecord]) {
    for s in swaps {
        println!(
            "swap:  generation {} at seq {} -> '{}' (table 0x{:016x})",
            s.generation, s.seq, s.spec, s.hash
        );
    }
}

/// Standard parameter block embedded in every JSON document.
fn params_json(p: &SystemParams) -> Json {
    let mut o = Json::object();
    o.set("k", p.k as u64)
        .set("lambda_i", p.lambda_i)
        .set("lambda_e", p.lambda_e)
        .set("mu_i", p.mu_i)
        .set("mu_e", p.mu_e)
        .set("rho", p.load());
    o
}

/// The `eirs_opt` oracle the fuzz command injects above `eirs_core::fuzz`.
/// On tractable cells it runs a small analytic search over the threshold
/// family and checks two things: (a) **search correctness** — the search
/// result must match a brute-force scan of the family's own integer grid
/// (the sharp check: there is no expressiveness excuse against your own
/// family); and (b) **baselines** — EF/IF must not beat the winner by
/// more than 2% (the threshold family only reaches IF as the threshold
/// → ∞, so a small expressiveness gap is legitimate; a real optimizer
/// regression loses far more).
struct OptimizerOracle;

impl eirs_repro::core::fuzz::CellOracle for OptimizerOracle {
    fn name(&self) -> &str {
        "optimizer-vs-baseline"
    }

    fn check(&self, cell: &eirs_repro::core::fuzz::CellSpec) -> Result<(), String> {
        let Ok((workload, policy, params)) = cell.build() else {
            return Ok(()); // spec-parse oracle owns build failures
        };
        if workload.tractability(policy.as_ref(), &params)
            == eirs_repro::core::Tractability::Intractable
        {
            return Ok(());
        }
        let objective: Box<dyn opt::Objective> = Box::new(opt::AnalyticObjective::new(
            workload.clone(),
            params,
            AnalyzeOptions::default(),
        ));
        let Ok(family) = opt::parse_family("threshold", params.k) else {
            return Ok(());
        };
        let budget = opt::Budget {
            max_evals: 16,
            seed: cell.seed,
        };
        let Ok(report) = opt::optimize_refined(
            family.as_ref(),
            objective.as_ref(),
            opt::Method::Auto,
            &budget,
            4,
        ) else {
            return Ok(()); // analysis failures are the analysis oracle's job
        };

        // (a) Search correctness: brute-force the integer threshold grid
        // through the same objective; the search must match its best.
        let grid: Vec<Box<dyn AllocationPolicy>> = (1..=16usize)
            .filter_map(|t| parse_policy(&format!("threshold:{t}")).ok())
            .collect();
        let mut grid_best = f64::INFINITY;
        for v in objective.evaluate_batch(&grid) {
            let Ok(val) = v else { return Ok(()) };
            if val.is_finite() {
                grid_best = grid_best.min(val);
            }
        }
        if grid_best.is_finite() && report.best_value > grid_best * (1.0 + 1e-9) {
            return Err(format!(
                "optimizer missed its own family's grid optimum: brute-force threshold scan \
                 E[T]={grid_best:.9} vs optimized {:.9} ({})",
                report.best_value, report.best_params
            ));
        }

        // (b) Baselines: EF/IF must not beat the winner beyond the
        // family's expressiveness gap.
        let baselines: Vec<Box<dyn AllocationPolicy>> =
            vec![Box::new(ElasticFirst), Box::new(InelasticFirst)];
        let mut best_baseline = f64::INFINITY;
        let mut best_name = "";
        for (b, v) in baselines.iter().zip(objective.evaluate_batch(&baselines)) {
            let Ok(val) = v else { return Ok(()) };
            if val.is_finite() && val < best_baseline {
                best_baseline = val;
                best_name = if b.name().starts_with('E') {
                    "EF"
                } else {
                    "IF"
                };
            }
        }
        if best_baseline.is_finite() && report.best_value > best_baseline * (1.0 + 0.02) {
            return Err(format!(
                "baseline {best_name} beats the optimizer: E[T]={best_baseline:.6} vs \
                 optimized {:.6} ({})",
                report.best_value, report.best_params
            ));
        }
        Ok(())
    }
}

/// Renders fuzz oracle flags as a JSON array.
fn flags_json(flags: &[eirs_repro::core::fuzz::Flag]) -> Vec<Json> {
    flags
        .iter()
        .map(|f| {
            let mut o = Json::object();
            o.set("oracle", f.oracle.clone())
                .set("detail", f.detail.clone());
            o
        })
        .collect()
}

/// Human-readable analysis/DES numbers of one fuzz cell.
fn print_cell_numbers(report: &eirs_repro::core::fuzz::CellReport) {
    println!(
        "tractable: {}   analysis E[T]: {}   DES E[T]: {:.6} +- {:.6}",
        report.tractable,
        report
            .analysis_mean
            .map_or("n/a".to_string(), |a| format!("{a:.6}")),
        report.des_mean,
        report.ci_half_width
    );
}

/// Writes the run's collected telemetry after the command finishes:
/// `--metrics-out` gets Prometheus text, `--trace-out` gets a Chrome
/// trace-event JSON (load it at `ui.perfetto.dev`) or JSONL when the
/// path ends in `.jsonl`.
fn export_telemetry(metrics_out: Option<&str>, trace_out: Option<&str>) -> Result<(), String> {
    use eirs_repro::obs;
    if metrics_out.is_none() && trace_out.is_none() {
        return Ok(());
    }
    let events = obs::take_events();
    let snap = obs::snapshot();
    if let Some(path) = trace_out {
        let text = if path.ends_with(".jsonl") {
            obs::export::jsonl(&events)
        } else {
            obs::export::chrome_trace_json(&events, &snap)
        };
        std::fs::write(path, text).map_err(|e| format!("cannot write trace {path}: {e}"))?;
        eprintln!("trace: {} events -> {path}", events.len());
    }
    if let Some(path) = metrics_out {
        let text = obs::export::prometheus_text(&snap);
        std::fs::write(path, text).map_err(|e| format!("cannot write metrics {path}: {e}"))?;
        eprintln!(
            "metrics: {} counters, {} gauges, {} histograms -> {path}",
            snap.counters.len(),
            snap.gauges.len(),
            snap.histograms.len()
        );
    }
    Ok(())
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let args = CliArgs::parse(raw).map_err(stringify)?;
    if let Some(n) = args.threads().map_err(stringify)? {
        sweep::set_threads(Some(n));
    }
    // The observability layer stays a no-op (one relaxed load per probe)
    // unless an export path asks for it. Telemetry is write-only, so
    // enabling it never changes any command's output — the CI
    // observability-invariance gate replays `serve` both ways and
    // compares decision digests.
    let metrics_out = args.get("metrics-out").map(str::to_string);
    let trace_out = args.get("trace-out").map(str::to_string);
    if metrics_out.is_some() || trace_out.is_some() {
        eirs_repro::obs::set_enabled(true);
    }
    dispatch(args)?;
    export_telemetry(metrics_out.as_deref(), trace_out.as_deref())
}

fn dispatch(args: CliArgs) -> Result<(), String> {
    match args.command.as_str() {
        "analyze" => {
            let p = parse_params(&args)?;
            let a_if = analyze_inelastic_first(&p).map_err(|e| e.to_string())?;
            let a_ef = analyze_elastic_first(&p).map_err(|e| e.to_string())?;
            println!(
                "k={} lambda_i={:.4} lambda_e={:.4} mu_i={} mu_e={} rho={:.3}",
                p.k,
                p.lambda_i,
                p.lambda_e,
                p.mu_i,
                p.mu_e,
                p.load()
            );
            println!("policy           E[T]      E[T_I]    E[T_E]");
            for (name, a) in [("Inelastic-First", a_if), ("Elastic-First", a_ef)] {
                println!(
                    "{name:<16} {:<9.4} {:<9.4} {:<9.4}",
                    a.mean_response, a.mean_response_inelastic, a.mean_response_elastic
                );
            }
            Ok(())
        }
        "compare" => {
            let p = parse_params(&args)?;
            let c = eirs_repro::core::experiments::compare(&p).map_err(|e| e.to_string())?;
            println!(
                "E[T] IF = {:.4}   E[T] EF = {:.4}   winner: {:?}",
                c.mrt_if, c.mrt_ef, c.winner
            );
            if p.inelastic_first_provably_optimal() {
                println!("mu_i >= mu_e: Theorem 5 guarantees Inelastic-First is optimal.");
            } else {
                println!("mu_i < mu_e: outside the proved-optimal regime (see Theorem 6).");
            }
            Ok(())
        }
        "policy" => {
            let p = parse_params(&args)?;
            let policy = policy_flag(&args)?;
            let reps = args.get_parsed_or("reps", 8usize).map_err(stringify)?;
            if reps < 2 {
                return Err(format!(
                    "--reps {reps} is too few: confidence intervals need at least 2 replications"
                ));
            }
            let departures = args
                .get_parsed_or("departures", 200_000u64)
                .map_err(stringify)?;
            let seed = args.get_parsed_or("seed", 1u64).map_err(stringify)?;
            let defaults = AnalyzeOptions::default();
            let opts = AnalyzeOptions {
                phase_cap: args
                    .get_parsed_or("phase-cap", defaults.phase_cap)
                    .map_err(stringify)?,
                max_level_cut: args
                    .get_parsed_or("level-cut", defaults.max_level_cut)
                    .map_err(stringify)?,
                // Escape hatch for policies that only look like strict
                // priority inside the probed window (e.g. a threshold
                // beyond --phase-cap): skip detection entirely.
                force_general: args
                    .get_parsed_or("force-general", defaults.force_general)
                    .map_err(stringify)?,
                ..defaults
            };
            let a = analyze_policy_with(policy.as_ref(), &p, &opts).map_err(|e| e.to_string())?;
            // DES replications on decorrelated seed streams, fanned out
            // over the sweep workers.
            let reports = run_markovian_replications(
                policy.as_ref(),
                p.k,
                p.lambda_i,
                p.lambda_e,
                p.mu_i,
                p.mu_e,
                seed,
                reps,
                departures / 10,
                departures,
            );
            let stats: ReplicationStats = reports.iter().map(|r| r.mean_response).collect();
            let ci = stats.confidence_interval();
            let inside = ci.contains(a.mean_response);
            if json_mode(&args)? {
                let mut analysis = Json::object();
                analysis
                    .set("mean_response", a.mean_response)
                    .set("mean_response_inelastic", a.mean_response_inelastic)
                    .set("mean_response_elastic", a.mean_response_elastic);
                let mut simulation = Json::object();
                simulation
                    .set("mean_response", stats.mean())
                    .set("ci_half_width", ci.half_width)
                    .set("replications", reps)
                    .set("departures_each", departures)
                    .set("seed", seed);
                let mut doc = Json::object();
                doc.set("schema", "eirs-policy/v1")
                    .set("params", params_json(&p))
                    .set("policy", policy.name())
                    .set("analysis", analysis)
                    .set("simulation", simulation)
                    .set("analysis_inside_des_ci", inside);
                print!("{}", doc.pretty());
                return Ok(());
            }
            println!(
                "policy: {}   (k={} lambda_i={:.4} lambda_e={:.4} mu_i={} mu_e={} rho={:.3})",
                policy.name(),
                p.k,
                p.lambda_i,
                p.lambda_e,
                p.mu_i,
                p.mu_e,
                p.load()
            );
            println!(
                "analysis:   E[T] = {:.4} (inelastic {:.4}, elastic {:.4})",
                a.mean_response, a.mean_response_inelastic, a.mean_response_elastic
            );
            println!(
                "simulation: E[T] = {:.4} +- {:.4}  ({} reps x {} departures, 95% CI)",
                stats.mean(),
                ci.half_width,
                reps,
                departures
            );
            println!(
                "agreement:  analysis {} the replication confidence interval",
                if inside { "inside" } else { "OUTSIDE" }
            );
            Ok(())
        }
        "scenario" => {
            use eirs_repro::core::experiments::{
                scenario_sweep, ScenarioSweepConfig, ScenarioSweepPoint,
            };
            use eirs_repro::core::scenario::{self, Workload};

            let p = parse_params(&args)?;
            // Comma-separated workload and policy lists; `all` expands to
            // the registries.
            let workload_specs = args.get_or("workload", "poisson");
            // `all` expands to the registry names; either way each spec
            // goes through parse_workload so --service-i/--service-e
            // overrides apply uniformly.
            let specs: Vec<String> = if workload_specs == "all" {
                scenario::registry().into_iter().map(|w| w.name).collect()
            } else {
                workload_specs
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect()
            };
            if let Some(churn) = args.get("churn") {
                eirs_repro::sim::FaultSpec::parse(churn)
                    .map_err(|e| spec_error("churn", churn, &e))?;
            }
            let workloads: Vec<Workload> = specs
                .iter()
                .map(|spec| {
                    scenario::parse_workload(
                        spec,
                        args.get("service-i"),
                        args.get("service-e"),
                        args.get("churn"),
                    )
                    .map_err(|e| spec_error("workload", spec, &e))
                })
                .collect::<Result<_, _>>()?;
            let policies = policy_list_flag(&args, p.k)?;
            let reps = args.get_parsed_or("reps", 8usize).map_err(stringify)?;
            if reps < 2 {
                return Err(format!(
                    "--reps {reps} is too few: confidence intervals need at least 2 replications"
                ));
            }
            let departures = args
                .get_parsed_or("departures", 100_000u64)
                .map_err(stringify)?;
            let cfg = ScenarioSweepConfig {
                replications: reps,
                departures,
                warmup: departures / 10,
                base_seed: args.get_parsed_or("seed", 42u64).map_err(stringify)?,
            };
            let opts = AnalyzeOptions {
                phase_cap: args
                    .get_parsed_or("phase-cap", 48usize)
                    .map_err(stringify)?,
                ..AnalyzeOptions::default()
            };
            let json = json_mode(&args)?;
            if !json {
                println!(
                    "scenario grid: {} workload(s) x {} policy(ies)   (k={} lambda_i={:.4} \
                     lambda_e={:.4} mu_i={} mu_e={} rho={:.3}, {} reps x {} departures)",
                    workloads.len(),
                    policies.len(),
                    p.k,
                    p.lambda_i,
                    p.lambda_e,
                    p.mu_i,
                    p.mu_e,
                    p.load(),
                    reps,
                    departures
                );
            }
            let points = scenario_sweep(&workloads, &policies, &p, &opts, &cfg)?;
            if json {
                let mut rows = Vec::with_capacity(points.len());
                for pt in &points {
                    let mut r = Json::object();
                    r.set("workload", pt.workload.clone())
                        .set("policy", pt.policy.clone())
                        .set("tractability", format!("{:?}", pt.tractability))
                        .set("des_mean_response", pt.des_mean_response)
                        .set("des_ci_half_width", pt.des_ci_half_width)
                        .set("des_replications", pt.des_replications)
                        .set(
                            "analysis_mean_response",
                            pt.analysis_mean_response.map_or(Json::Null, Json::from),
                        )
                        .set(
                            "analysis_inside_des_ci",
                            pt.analysis_inside_ci.map_or(Json::Null, Json::from),
                        );
                    rows.push(r);
                }
                let mut doc = Json::object();
                doc.set("schema", "eirs-scenario/v1")
                    .set("params", params_json(&p))
                    .set("des_replications", reps)
                    .set("des_departures_each", departures)
                    .set("seed", cfg.base_seed)
                    .set("rows", rows);
                print!("{}", doc.pretty());
                return Ok(());
            }
            let widths = [28, 26, 10, 18, 12];
            let cell = |s: String, w: usize| format!("{s:<width$}", width = w + 2);
            let header: String = ["workload", "policy", "analysis", "des (95% CI)", "in CI"]
                .iter()
                .zip(&widths)
                .map(|(s, &w)| cell(s.to_string(), w))
                .collect();
            println!("{}", header.trim_end());
            for ScenarioSweepPoint {
                workload,
                policy,
                analysis_mean_response,
                des_mean_response,
                des_ci_half_width,
                des_replications,
                analysis_inside_ci,
                ..
            } in &points
            {
                let analysis = analysis_mean_response
                    .map(|m| format!("{m:.4}"))
                    .unwrap_or_else(|| "-".into());
                let in_ci = analysis_inside_ci
                    .map(|b| if b { "yes".into() } else { "NO".to_string() })
                    .unwrap_or_else(|| "-".into());
                // A deterministic trace replay runs once and is exact for
                // that trace — no interval to report.
                let des = if *des_replications == 1 {
                    format!("{des_mean_response:.4} (exact replay)")
                } else {
                    format!("{des_mean_response:.4} +- {des_ci_half_width:.4}")
                };
                let row: String = [workload.clone(), policy.clone(), analysis, des, in_ci]
                    .iter()
                    .zip(&widths)
                    .map(|(s, &w)| cell(s.clone(), w))
                    .collect();
                println!("{}", row.trim_end());
            }
            let checked = points.iter().filter(|pt| pt.analysis_inside_ci.is_some());
            let misses: Vec<&ScenarioSweepPoint> = checked
                .clone()
                .filter(|pt| pt.analysis_inside_ci == Some(false))
                .collect();
            println!(
                "tractable pairs: {} of {}   analysis inside CI: {}",
                checked.clone().count(),
                points.len(),
                checked.count() - misses.len()
            );
            for miss in misses {
                println!(
                    "  OUTSIDE CI: {}/{} (analysis {:.4}, DES {:.4} +- {:.4})",
                    miss.workload,
                    miss.policy,
                    miss.analysis_mean_response.unwrap_or(f64::NAN),
                    miss.des_mean_response,
                    miss.des_ci_half_width
                );
            }
            Ok(())
        }
        "optimize" => {
            let p = parse_params(&args)?;
            let json = json_mode(&args)?;
            let workload = workload_flag(&args)?;
            let family = family_flag(&args, p.k)?;
            let method = opt::parse_method(&args.get_or("method", "auto"))?;
            let budget = opt::Budget {
                max_evals: args.get_parsed_or("budget", 120usize).map_err(stringify)?,
                seed: args.get_parsed_or("seed", 42u64).map_err(stringify)?,
            };
            let opts = AnalyzeOptions {
                phase_cap: args
                    .get_parsed_or("phase-cap", 48usize)
                    .map_err(stringify)?,
                ..AnalyzeOptions::default()
            };
            let reps = args.get_parsed_or("reps", 6usize).map_err(stringify)?;
            let departures = args
                .get_parsed_or("departures", 50_000u64)
                .map_err(stringify)?;
            let des = opt::DesBudget {
                base_seed: budget.seed,
                replications: reps,
                departures,
            };
            let probe = family.decode(&family.clamp(&family.initial()));
            let objective: Box<dyn opt::Objective> = match args.get_or("objective", "auto").as_str()
            {
                "auto" => opt::objective_for(&workload, &p, probe.as_ref(), &opts, &des),
                "analysis" => Box::new(opt::AnalyticObjective::new(workload.clone(), p, opts)),
                "des" => Box::new(opt::DesObjective::new(
                    workload.clone(),
                    p,
                    des.base_seed,
                    des.replications,
                    des.departures,
                )),
                other => {
                    return Err(format!(
                        "unknown --objective '{other}' (expected auto, analysis, des)"
                    ))
                }
            };
            // `--refine N` chains a coordinate-pattern polish after the
            // main method on N extra evaluations.
            let refine = args.get_parsed_or("refine", 0usize).map_err(stringify)?;
            let report = opt::optimize_refined(
                family.as_ref(),
                objective.as_ref(),
                method,
                &budget,
                refine,
            )?;
            let best_policy = family.decode(&report.best_x);

            // Baselines: exact through the same objective when it is
            // analytic, CRN-paired DES otherwise.
            let analytic_backend = report.objective == "analysis";
            let mut improvement = None;
            let (baseline_rows, beats_best): (Vec<BaselineRow>, bool) = if analytic_backend {
                let baselines: Vec<Box<dyn AllocationPolicy>> =
                    vec![Box::new(ElasticFirst), Box::new(InelasticFirst)];
                let scored = objective.evaluate_batch(&baselines);
                let mut rows = Vec::new();
                for (b, v) in baselines.iter().zip(scored) {
                    rows.push((b.name(), v?, None));
                }
                let best_baseline = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
                improvement = Some((best_baseline - report.best_value) / best_baseline);
                // Families only approach EF/IF asymptotically (a
                // finite threshold vs IF), so "beats" tolerates
                // matching the strongest baseline to within 0.1%; the
                // signed improvement is reported alongside.
                (rows, report.best_value <= best_baseline * (1.0 + 1e-3))
            } else {
                let cert = opt::improvement_over_baselines(
                    &workload,
                    &p,
                    best_policy.as_ref(),
                    budget.seed,
                    reps.max(2),
                    departures,
                )?;
                let rows = cert
                    .baselines
                    .iter()
                    .map(|b| {
                        (
                            b.name.clone(),
                            b.mean_response,
                            Some((b.diff_mean, b.diff_ci_half_width, b.improves)),
                        )
                    })
                    .collect();
                (rows, cert.beats_best_baseline)
            };

            // Optimality certification against the MDP grid: meaningful
            // exactly when the workload is the paper's Poisson×exp model.
            let certify_mode = args.get_or("certify", "auto");
            let poisson_exp = workload.tractability(best_policy.as_ref(), &p)
                == eirs_repro::core::Tractability::PoissonExp;
            let grid = args.get_parsed_or("grid", 48usize).map_err(stringify)?;
            let certificate = match certify_mode.as_str() {
                "none" => None,
                "mdp" => Some(opt::certify_against_mdp(&p, report.best_value, grid)?),
                "auto" => {
                    if poisson_exp {
                        Some(opt::certify_against_mdp(&p, report.best_value, grid)?)
                    } else {
                        None
                    }
                }
                other => {
                    return Err(format!(
                        "unknown --certify '{other}' (expected auto, mdp, none)"
                    ))
                }
            };

            if json {
                let mut best = Json::object();
                best.set("policy", report.best_policy.clone())
                    .set("params", report.best_params.clone())
                    .set(
                        "x",
                        report
                            .best_x
                            .iter()
                            .map(|&v| Json::Num(v))
                            .collect::<Vec<_>>(),
                    )
                    .set("mean_response", report.best_value);
                let mut baselines = Vec::new();
                for (name, mean, paired) in &baseline_rows {
                    let mut row = Json::object();
                    row.set("policy", name.clone()).set("mean_response", *mean);
                    if let Some((diff, hw, improves)) = paired {
                        row.set("paired_diff_mean", *diff)
                            .set("paired_diff_ci_half_width", *hw)
                            .set("improves", *improves);
                    }
                    baselines.push(row);
                }
                let mut doc = Json::object();
                doc.set("schema", "eirs-optimize/v1")
                    .set("params", params_json(&p))
                    .set("workload", workload.name.clone())
                    .set("family", report.family.clone())
                    .set("optimizer", report.optimizer.clone())
                    .set("objective", report.objective.clone())
                    .set("budget", budget.max_evals)
                    .set("seed", budget.seed)
                    .set("evaluations", report.evaluations)
                    .set("best", best)
                    .set("baselines", baselines)
                    .set(
                        "improvement_over_best_baseline",
                        improvement.map_or(Json::Null, Json::from),
                    )
                    .set("beats_best_baseline", beats_best);
                doc.set(
                    "mdp_certificate",
                    certificate.as_ref().map_or(Json::Null, |c| {
                        let mut o = Json::object();
                        o.set("mdp_mean_response", c.mdp_mean_response)
                            .set("optimality_gap", c.optimality_gap)
                            .set("mdp_matches_inelastic_first", c.mdp_matches_inelastic_first)
                            .set("grid", c.grid)
                            .set("window", c.window);
                        o
                    }),
                );
                print!("{}", doc.pretty());
                return Ok(());
            }

            println!(
                "optimize: family={} workload={} objective={} optimizer={}",
                report.family, workload.name, report.objective, report.optimizer
            );
            println!(
                "          (k={} lambda_i={:.4} lambda_e={:.4} mu_i={} mu_e={} rho={:.3})",
                p.k,
                p.lambda_i,
                p.lambda_e,
                p.mu_i,
                p.mu_e,
                p.load()
            );
            println!(
                "search:   {} evaluations (budget {}{}, seed {})",
                report.evaluations,
                budget.max_evals,
                if refine > 0 {
                    format!(" + {refine} refine")
                } else {
                    String::new()
                },
                budget.seed
            );
            println!(
                "best:     {}   [{}]   E[T] = {:.4}",
                report.best_policy, report.best_params, report.best_value
            );
            for (name, mean, paired) in &baseline_rows {
                match paired {
                    None => println!("baseline: {name:<16} E[T] = {mean:.4}"),
                    Some((diff, hw, improves)) => println!(
                        "baseline: {name:<16} E[T] = {mean:.4}   paired diff {diff:+.4} +- {hw:.4}{}",
                        if *improves { "  (improves)" } else { "" }
                    ),
                }
            }
            match improvement {
                Some(impr) => println!(
                    "verdict:  {:+.3}% vs the strongest fixed baseline ({})",
                    100.0 * impr,
                    if beats_best {
                        "beats or matches within 0.1%"
                    } else {
                        "does NOT beat"
                    }
                ),
                None => println!(
                    "verdict:  best-found {} the strongest fixed baseline (95% paired CI)",
                    if beats_best { "beats" } else { "does NOT beat" }
                ),
            }
            if let Some(c) = &certificate {
                println!(
                    "certificate: MDP optimum E[T] = {:.4} (grid {})   optimality gap = {:.3}%   \
                     MDP matches IF: {}",
                    c.mdp_mean_response,
                    c.grid,
                    100.0 * c.optimality_gap,
                    if c.mdp_matches_inelastic_first {
                        "yes"
                    } else {
                        "no"
                    }
                );
            }
            Ok(())
        }
        "simulate" => {
            let p = parse_params(&args)?;
            let departures = args
                .get_parsed_or("departures", 200_000u64)
                .map_err(stringify)?;
            let seed = args.get_parsed_or("seed", 1u64).map_err(stringify)?;
            let policy = policy_flag(&args)?;
            let r = run_markovian(
                policy.as_ref(),
                p.k,
                p.lambda_i,
                p.lambda_e,
                p.mu_i,
                p.mu_e,
                seed,
                departures / 10,
                departures,
            );
            println!("policy: {}", policy.name());
            println!(
                "E[T] = {:.4} (inelastic {:.4}, elastic {:.4})",
                r.mean_response, r.mean_response_inelastic, r.mean_response_elastic
            );
            let (p50, p95, p99) = r.tail_response;
            println!("tails: P50 = {p50:.4}  P95 = {p95:.4}  P99 = {p99:.4}");
            println!(
                "E[N] = {:.4}   utilization = {:.3}",
                r.mean_num_in_system, r.utilization
            );
            Ok(())
        }
        "fuzz" => {
            use eirs_repro::core::fuzz::{self, CellSpec, FuzzConfig};
            let json = json_mode(&args)?;
            let cfg = FuzzConfig {
                budget: args.get_parsed_or("budget", 100usize).map_err(stringify)?,
                seed: args.get_parsed_or("seed", 1u64).map_err(stringify)?,
                shrink: args.get_parsed_or("shrink", true).map_err(stringify)?,
                threads: sweep::threads(),
                replications: args.get_parsed_or("reps", 4usize).map_err(stringify)?,
                departures: args
                    .get_parsed_or("departures", 8000u64)
                    .map_err(stringify)?,
                warmup: args.get_parsed_or("warmup", 800u64).map_err(stringify)?,
                ..FuzzConfig::default()
            };
            let oracle = OptimizerOracle;
            let extra: [&dyn fuzz::CellOracle; 1] = [&oracle];

            // `--replay <token>` re-derives one flagged cell from its
            // printed token and re-runs every oracle on it —
            // bit-identical across runs, hosts, and thread counts.
            if let Some(token) = args.get("replay") {
                let seed = fuzz::parse_replay_token(token)?;
                let report = fuzz::check_cell(0, &CellSpec::from_seed(seed), &cfg, &extra);
                if json {
                    let mut doc = Json::object();
                    doc.set("schema", "eirs-fuzz-replay/v1")
                        .set("token", report.token.clone())
                        .set("spec", report.cell.render())
                        .set("tractable", report.tractable)
                        .set(
                            "analysis_mean",
                            report.analysis_mean.map_or(Json::Null, Json::from),
                        )
                        .set("des_mean", report.des_mean)
                        .set("ci_half_width", report.ci_half_width)
                        .set("flags", flags_json(&report.flags));
                    print!("{}", doc.pretty());
                } else {
                    println!("replay {}", report.token);
                    println!("spec: {}", report.cell.render());
                    print_cell_numbers(&report);
                    if report.flags.is_empty() {
                        println!("verdict: clean (every oracle passed)");
                    } else {
                        for f in &report.flags {
                            println!("FLAGGED [{}]: {}", f.oracle, f.detail);
                        }
                    }
                }
                if report.flags.is_empty() {
                    return Ok(());
                }
                return Err(format!(
                    "replayed cell {} still fails {} oracle(s)",
                    report.token,
                    report.flags.len()
                ));
            }

            if cfg.budget == 0 {
                return Err("--budget must be >= 1 (cells to fuzz)".into());
            }
            let report = fuzz::fuzz_run(&cfg, &extra);
            if json {
                let mut failures = Vec::new();
                for cell in report.cells.iter().filter(|c| !c.flags.is_empty()) {
                    let mut f = Json::object();
                    f.set("token", cell.token.clone())
                        .set("spec", cell.cell.render())
                        .set("flags", flags_json(&cell.flags))
                        .set(
                            "minimized_spec",
                            cell.minimized
                                .as_ref()
                                .map_or(Json::Null, |(m, _)| Json::from(m.render())),
                        )
                        .set("replay", format!("eirs fuzz --replay {}", cell.token));
                    failures.push(f);
                }
                let mut doc = Json::object();
                doc.set("schema", "eirs-fuzz/v1")
                    .set("seed", report.seed)
                    .set("budget", cfg.budget)
                    .set("replications", cfg.replications)
                    .set("departures", cfg.departures)
                    .set("tractable_cells", report.tractable)
                    .set("flagged_cells", report.flagged)
                    .set("shrink_evals", report.shrink_evals)
                    .set("failures", failures);
                print!("{}", doc.pretty());
            } else {
                println!(
                    "fuzz: seed={} budget={} reps={} departures={}",
                    report.seed, cfg.budget, cfg.replications, cfg.departures
                );
                println!(
                    "cells: {}   tractable: {}   flagged: {}   shrink evals: {}",
                    report.cells.len(),
                    report.tractable,
                    report.flagged,
                    report.shrink_evals
                );
                for cell in report.cells.iter().filter(|c| !c.flags.is_empty()) {
                    println!("FLAGGED {}", cell.token);
                    println!("  spec: {}", cell.cell.render());
                    for f in &cell.flags {
                        println!("  [{}] {}", f.oracle, f.detail);
                    }
                    if let Some((m, evals)) = &cell.minimized {
                        println!("  minimized ({evals} evals): {}", m.render());
                    }
                    println!("  replay: eirs fuzz --replay {}", cell.token);
                }
                if report.flagged == 0 {
                    println!("all cells clean: every oracle passed on every generated cell");
                }
            }
            if report.flagged > 0 {
                return Err(format!(
                    "{} of {} fuzz cells flagged (replay with the printed tokens)",
                    report.flagged, cfg.budget
                ));
            }
            Ok(())
        }
        "serve" => {
            use eirs_repro::serve::{
                recover, run_journaled, ChurnConfig, CompiledTable, EngineConfig, EngineSnapshot,
                Journal, JournalWriter, RunControls, ServeEngine,
            };
            use eirs_repro::sim::FaultSpec;

            let p = parse_params(&args)?;
            let policy = policy_flag(&args)?;
            let workload = workload_flag(&args)?;
            let workers = args.get_parsed_or("shards", 1usize).map_err(stringify)?;
            let route = args
                .get_parsed_or("route-shards", 4usize)
                .map_err(stringify)?;
            let batch = args.get_parsed_or("batch", 1024usize).map_err(stringify)?;
            // A deterministic trace-file replay defaults to the whole
            // trace: truncating it at an arbitrary horizon and reporting
            // complete-looking totals would silently misrepresent the
            // replay (the same discipline as PR 3's short-trace error).
            // An explicit --duration still wins.
            // Trace replays default to the whole file even under --churn
            // (engine-side churn changes decisions, not which arrivals
            // exist) — which is why churned traces then *require* an
            // explicit --fault-horizon below.
            let whole_trace = matches!(
                workload.arrivals,
                eirs_repro::core::scenario::ArrivalSpec::TraceFile { .. }
            );
            let duration = match args.get("duration") {
                Some(_) => args.get_parsed_or("duration", 0.0f64).map_err(stringify)?,
                None if whole_trace => f64::INFINITY,
                None => 500.0,
            };
            let seed = args.get_parsed_or("seed", 1u64).map_err(stringify)?;
            let grid = args.get_parsed_or("grid", 64usize).map_err(stringify)?;
            if workers < 1 || route < 1 || batch < 1 {
                return Err("--shards, --route-shards, and --batch must be at least 1".into());
            }
            // Live generators never exhaust, so an explicit horizon must
            // be finite; the infinite default above only arises for
            // finite trace files.
            if duration.is_nan()
                || duration <= 0.0
                || (args.get("duration").is_some() && !duration.is_finite())
            {
                return Err(format!(
                    "--duration must be a positive time, got {duration}"
                ));
            }
            // Capacity churn: the fault model is engine identity, seeded
            // separately from the workload so the same traffic can be
            // replayed under different availability sample paths.
            let churn_cfg = match args.get("churn") {
                Some(spec) => {
                    let horizon = match args.get("fault-horizon") {
                        Some(_) => args
                            .get_parsed_or("fault-horizon", 0.0f64)
                            .map_err(stringify)?,
                        // Fault schedules are generated to a finite
                        // horizon; default to the run's own.
                        None if duration.is_finite() => duration,
                        None => {
                            return Err("--churn with an unbounded --duration needs an explicit \
                                 --fault-horizon (fault schedules are generated to a finite \
                                 horizon)"
                                .into())
                        }
                    };
                    if !(horizon > 0.0 && horizon.is_finite()) {
                        return Err(format!(
                            "--fault-horizon must be a positive finite time, got {horizon}"
                        ));
                    }
                    let parsed =
                        FaultSpec::parse(spec).map_err(|e| spec_error("churn", spec, &e))?;
                    Some(ChurnConfig {
                        spec: parsed,
                        seed: args.get_parsed_or("fault-seed", 1u64).map_err(stringify)?,
                        horizon,
                    })
                }
                None => None,
            };
            let shed_limit = match args.get("shed-limit") {
                Some(_) => {
                    let limit = args
                        .get_parsed_or("shed-limit", 0usize)
                        .map_err(stringify)?;
                    if limit == 0 {
                        return Err(
                            "--shed-limit must be at least 1 (0 would reject every arrival \
                             while degraded)"
                                .into(),
                        );
                    }
                    if churn_cfg.is_none() {
                        return Err("--shed-limit only applies under --churn (shedding is a \
                             degraded-mode policy)"
                            .into());
                    }
                    Some(limit)
                }
                None => None,
            };
            // Crash-recovery controls: a write-ahead journal plus the
            // snapshot-at / kill-after boundaries, and --recover true to
            // come back from them.
            let journal_path = args.get("journal");
            let snapshot_path = args.get("snapshot");
            let snapshot_at = match args.get("snapshot-at") {
                Some(_) => Some(args.get_parsed_or("snapshot-at", 0u64).map_err(stringify)?),
                None => None,
            };
            let kill_after = match args.get("kill-after") {
                Some(_) => Some(args.get_parsed_or("kill-after", 0u64).map_err(stringify)?),
                None => None,
            };
            let recover_mode = args.get_parsed_or("recover", false).map_err(stringify)?;
            if recover_mode {
                if snapshot_path.is_none() || journal_path.is_none() {
                    return Err(
                        "--recover true needs both --snapshot <path> (to restore) and \
                         --journal <path> (to replay)"
                            .into(),
                    );
                }
                if snapshot_at.is_some() || kill_after.is_some() {
                    return Err(
                        "--recover true cannot be combined with --snapshot-at/--kill-after \
                         (those control the crashing run, not the recovery)"
                            .into(),
                    );
                }
            } else {
                if (snapshot_at.is_some() || kill_after.is_some()) && journal_path.is_none() {
                    return Err(
                        "--snapshot-at/--kill-after need --journal <path>: killing without a \
                         write-ahead journal would lose arrivals irrecoverably"
                            .into(),
                    );
                }
                if snapshot_at.is_some() && snapshot_path.is_none() {
                    return Err("--snapshot-at needs --snapshot <path> to write to".into());
                }
            }
            // Networked serving, offline hot-swap, and journal replay
            // (the front end in crates/net): three further serve modes.
            let listen = args.get("listen").map(str::to_string);
            let replay_path = args.get("replay-journal").map(str::to_string);
            let swap_policy = args.get("swap-policy").map(str::to_string);
            let swap_at = match args.get("swap-at") {
                Some(_) => Some(args.get_parsed_or("swap-at", 0u64).map_err(stringify)?),
                None => None,
            };
            if swap_policy.is_some() != swap_at.is_some() {
                return Err(
                    "--swap-policy and --swap-at go together: the policy spec to \
                     install and the arrival-sequence barrier to install it at"
                        .into(),
                );
            }
            if let Some(spec) = &swap_policy {
                // Validate the swap spec up front: a bad spec should fail
                // the command, not the barrier halfway through a run.
                match spec.strip_prefix("optimize:") {
                    Some(family) => {
                        opt::parse_family(family, p.k)
                            .map_err(|e| spec_error("swap-policy", spec, &e))?;
                    }
                    None => {
                        parse_policy(spec).map_err(|e| spec_error("swap-policy", spec, &e))?;
                    }
                }
            }
            if replay_path.is_some()
                && (listen.is_some()
                    || recover_mode
                    || journal_path.is_some()
                    || snapshot_path.is_some()
                    || swap_policy.is_some())
            {
                return Err(
                    "--replay-journal is a standalone mode: it rebuilds a run from \
                     the journal alone and cannot be combined with --listen, --journal, \
                     --snapshot, --recover, or --swap-policy"
                        .into(),
                );
            }
            if listen.is_some()
                && (recover_mode
                    || snapshot_path.is_some()
                    || snapshot_at.is_some()
                    || kill_after.is_some())
            {
                return Err("--listen serves live connections; the snapshot/recovery \
                     controls (--snapshot, --snapshot-at, --kill-after, --recover) apply \
                     to offline runs — journal a networked run with --journal and rebuild \
                     it with --replay-journal"
                    .into());
            }
            if listen.is_none()
                && (args.get("queue-cap").is_some()
                    || args.get("shed").is_some()
                    || args.get("addr-file").is_some())
            {
                return Err(
                    "--queue-cap, --shed, and --addr-file only apply with --listen <addr>".into(),
                );
            }
            if args.get("drain").is_some() && replay_path.is_none() {
                return Err("--drain only applies with --replay-journal <path>".into());
            }
            if recover_mode && swap_policy.is_some() {
                return Err("--swap-policy cannot be combined with --recover true (the \
                     journal being replayed already records the generation schedule)"
                    .into());
            }
            if swap_policy.is_some()
                && listen.is_none()
                && (snapshot_at.is_some() || kill_after.is_some())
            {
                return Err(
                    "--swap-policy cannot be combined with --snapshot-at/--kill-after".into(),
                );
            }
            let policy_spec = args.get_or("policy", "if");
            let policy_name = policy.name();
            let table = CompiledTable::compile(policy, p.k, grid, grid);
            let table_shape = (table.max_i() + 1, table.max_j() + 1, table.table_bytes());
            let mut config = EngineConfig::new(p.k)
                .route_shards(route)
                .workers(workers)
                .batch(batch);
            if let Some(c) = churn_cfg {
                config = config.churn(c);
            }
            if let Some(s) = shed_limit {
                config = config.shed_limit(s);
            }
            // --replay-journal: rebuild an entire run — boot policy,
            // arrivals, and hot-swaps — from the write-ahead journal
            // alone, and report the reproduced digest.
            if let Some(jpath) = &replay_path {
                let k = p.k;
                // An offline `serve` reports its digest with jobs still in
                // flight at the horizon; a networked serve drains before
                // reporting. `--drain true` matches the latter.
                let drain = args.get_parsed_or("drain", false).map_err(stringify)?;
                let journal = Journal::load(std::path::Path::new(jpath.as_str()))
                    .map_err(|e| format!("cannot replay journal {jpath}: {e}"))?;
                let compile = move |spec: &str| -> Result<CompiledTable, String> {
                    Ok(CompiledTable::compile(parse_policy(spec)?, k, grid, grid))
                };
                let mut engine = eirs_repro::serve::replay_journal(config, &journal, &compile)
                    .map_err(|e| format!("cannot replay journal {jpath}: {e}"))?;
                let replayed = engine.ingested();
                if drain {
                    engine.drain();
                }
                let totals = engine.metrics_total();
                let digest = format!("0x{:016x}", engine.decision_digest());
                if json_mode(&args)? {
                    let mut doc = Json::object();
                    doc.set("schema", "eirs-serve-replay/v1")
                        .set("journal", jpath.as_str())
                        .set("replayed", replayed)
                        .set("completions", totals.completions)
                        .set("decisions", totals.decisions)
                        .set("decision_digest", digest)
                        .set("generation", engine.generation() as u64)
                        .set("swaps", swap_rows(engine.swap_log()));
                    print!("{}", doc.pretty());
                    return Ok(());
                }
                println!(
                    "replay: {jpath} -> {replayed} arrivals, {} completions, {} decisions",
                    totals.completions, totals.decisions
                );
                print_swap_log(engine.swap_log());
                println!("digest: {digest} (generation {})", engine.generation());
                return Ok(());
            }
            // --listen: put the engine behind a socket. Clients drive the
            // arrival stream (the workload flags are unused); the accept
            // loop, per-shard ingest queues, and the atomic hot-swap
            // barrier live in crates/net.
            if let Some(addr) = &listen {
                use eirs_repro::net::{NetConfig, ReoptSettings, SwapTrigger};
                let queue_cap = args
                    .get_parsed_or("queue-cap", 1024usize)
                    .map_err(stringify)?;
                if queue_cap < 1 {
                    return Err("--queue-cap must be at least 1".into());
                }
                let shed = args.get_parsed_or("shed", false).map_err(stringify)?;
                let listener = std::net::TcpListener::bind(addr.as_str())
                    .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
                let local = listener.local_addr().map_err(|e| e.to_string())?;
                // With `--listen 127.0.0.1:0` the OS picks the port; the
                // addr file is how a harness learns it.
                if let Some(path) = args.get("addr-file") {
                    std::fs::write(path, local.to_string())
                        .map_err(|e| format!("cannot write addr file {path}: {e}"))?;
                }
                let engine = ServeEngine::new(table, config);
                let journal = match journal_path {
                    Some(jpath) => {
                        let file = std::fs::File::create(jpath)
                            .map_err(|e| format!("cannot create journal {jpath}: {e}"))?;
                        let w: Box<dyn std::io::Write + Send> =
                            Box::new(std::io::BufWriter::new(file));
                        Some(
                            JournalWriter::create_with_spec(w, &engine, Some(&policy_spec))
                                .map_err(|e| format!("cannot write journal {jpath}: {e}"))?,
                        )
                    }
                    None => None,
                };
                let swaps = match (&swap_policy, swap_at) {
                    (Some(spec), Some(at)) => vec![SwapTrigger {
                        at_seq: at,
                        spec: spec.clone(),
                    }],
                    _ => Vec::new(),
                };
                let net_cfg = NetConfig {
                    queue_cap,
                    batch,
                    shed,
                    reopt: ReoptSettings {
                        mu_inelastic: p.mu_i,
                        mu_elastic: p.mu_e,
                        max_evals: args.get_parsed_or("budget", 60usize).map_err(stringify)?,
                        seed,
                    },
                };
                let k = p.k;
                let compile = move |spec: &str| -> Result<CompiledTable, String> {
                    Ok(CompiledTable::compile(parse_policy(spec)?, k, grid, grid))
                };
                // Stderr so --json true keeps stdout machine-clean.
                eprintln!("listening on {local} (policy={policy_name} k={k} route_shards={route})");
                let start = std::time::Instant::now();
                let report =
                    eirs_repro::net::serve(listener, engine, journal, swaps, net_cfg, &compile)?;
                let wall = start.elapsed().as_secs_f64();
                if json_mode(&args)? {
                    let mut cfg = Json::object();
                    cfg.set("route_shards", route)
                        .set("shard_workers", workers)
                        .set("batch", batch)
                        .set("queue_cap", queue_cap)
                        .set("shed", shed)
                        .set("grid", grid)
                        .set("seed", seed);
                    let mut doc = Json::object();
                    doc.set("schema", "eirs-serve-net/v1")
                        .set("params", params_json(&p))
                        .set("policy", policy_name)
                        .set("listen", local.to_string())
                        .set("config", cfg)
                        .set("connections", report.connections)
                        .set("client_arrivals", report.client_arrivals)
                        .set("ingested", report.ingested)
                        .set("net_sheds", report.net_sheds)
                        .set("engine_rejections", report.engine_rejections)
                        .set("completions", report.completions)
                        .set("accounting_balanced", report.accounting_balanced())
                        .set("decision_digest", format!("0x{:016x}", report.digest))
                        .set("generation", report.generation as u64)
                        .set("swaps", swap_rows(&report.swaps))
                        .set(
                            "swap_pause_seconds",
                            report
                                .swap_pause_seconds
                                .iter()
                                .map(|&s| Json::from(s))
                                .collect::<Vec<_>>(),
                        )
                        .set(
                            "swap_errors",
                            report
                                .swap_errors
                                .iter()
                                .map(|e| Json::from(e.as_str()))
                                .collect::<Vec<_>>(),
                        )
                        .set("protocol_errors", report.protocol_errors)
                        .set(
                            "journal_errors",
                            report
                                .journal_errors
                                .iter()
                                .map(|e| Json::from(e.as_str()))
                                .collect::<Vec<_>>(),
                        )
                        .set("wall_s", wall);
                    print!("{}", doc.pretty());
                    return Ok(());
                }
                println!(
                    "serve: policy={policy_name} listened on {local} (k={k} route_shards={route} \
                     workers={workers} batch={batch} queue_cap={queue_cap} shed={shed})"
                );
                println!(
                    "net:   {} connections, {} arrivals -> {} ingested, {} shed, {} rejected, \
                     {} completions in {wall:.3} s (accounting {})",
                    report.connections,
                    report.client_arrivals,
                    report.ingested,
                    report.net_sheds,
                    report.engine_rejections,
                    report.completions,
                    if report.accounting_balanced() {
                        "exact"
                    } else {
                        "VIOLATED"
                    }
                );
                print_swap_log(&report.swaps);
                for e in &report.swap_errors {
                    println!("swap:  FAILED: {e}");
                }
                for e in &report.journal_errors {
                    println!("journal: FAILED: {e}");
                }
                if report.protocol_errors > 0 {
                    println!(
                        "net:   {} protocol errors tore down connections",
                        report.protocol_errors
                    );
                }
                println!(
                    "digest: 0x{:016x} (generation {})",
                    report.digest, report.generation
                );
                return Ok(());
            }
            // The engine serves `route` independent k-server shards, so the
            // offered stream carries route x the single-cluster rate; the
            // load of every shard is then exactly the configured rho.
            // (Trace-file workloads replay the file verbatim instead.)
            let scaled = SystemParams::new(
                p.k * route as u32,
                p.lambda_i * route as f64,
                p.lambda_e * route as f64,
                p.mu_i,
                p.mu_e,
            )
            .map_err(|e| e.to_string())?;
            let mut source = workload.build_source(&scaled, seed, duration)?;
            let start = std::time::Instant::now();
            let (engine, ingested, killed, replayed) = if recover_mode {
                let spath = snapshot_path.expect("validated above");
                let snap = EngineSnapshot::load(std::path::Path::new(spath))
                    .map_err(|e| format!("cannot restore snapshot {spath}: {e}"))?;
                let jpath = journal_path.expect("validated above");
                let file = std::fs::File::open(jpath)
                    .map_err(|e| format!("cannot open journal {jpath}: {e}"))?;
                let journal = Journal::load_prefix(&mut std::io::BufReader::new(file))
                    .map_err(|e| format!("cannot replay journal {jpath}: {e}"))?;
                let mut engine = recover(table, config, &snap, &journal)
                    .map_err(|e| format!("cannot recover from {spath} + {jpath}: {e}"))?;
                let replayed = engine.ingested();
                // The journal already covers the first `replayed` arrivals;
                // skip past them in the regenerated source (same workload,
                // same seed) and continue the interrupted run.
                for _ in 0..replayed {
                    if source.next_arrival().is_none() {
                        break;
                    }
                }
                let continued = engine.run(source.as_mut(), duration);
                (engine, replayed + continued, false, Some(replayed))
            } else if let Some(swap_spec) = &swap_policy {
                // Offline hot-swap: a hand-rolled batched loop that splits
                // exactly at the --swap-at barrier. The trailing partial
                // batch is journaled and ingested before the swap and
                // before shutdown — never dropped at a batch boundary.
                let barrier = swap_at.expect("validated: --swap-policy needs --swap-at");
                let mut engine = ServeEngine::new(table, config);
                let mut wal = match journal_path {
                    Some(jpath) => {
                        let file = std::fs::File::create(jpath)
                            .map_err(|e| format!("cannot create journal {jpath}: {e}"))?;
                        Some(
                            JournalWriter::create_with_spec(
                                std::io::BufWriter::new(file),
                                &engine,
                                Some(&policy_spec),
                            )
                            .map_err(|e| format!("cannot write journal {jpath}: {e}"))?,
                        )
                    }
                    None => None,
                };
                let install =
                    |engine: &mut ServeEngine,
                     wal: &mut Option<JournalWriter<std::io::BufWriter<std::fs::File>>>|
                     -> Result<(), String> {
                        let resolved = match swap_spec.strip_prefix("optimize:") {
                            Some(family) => {
                                // Re-optimize against the traffic observed so
                                // far: per-class arrival counts over the
                                // engine's summed stream clock.
                                let seen = engine.metrics_total();
                                let stream_time: f64 =
                                    engine.metrics_per_shard().iter().map(|m| m.sim_time).sum();
                                let load = opt::ObservedLoad::from_counts(
                                    seen.arrivals_inelastic,
                                    seen.arrivals_elastic,
                                    stream_time,
                                )
                                .map_err(|e| format!("--swap-policy '{swap_spec}': {e}"))?;
                                opt::reoptimize(
                                    family,
                                    p.k,
                                    &load,
                                    p.mu_i,
                                    p.mu_e,
                                    &opt::Budget {
                                        max_evals: 60,
                                        seed,
                                    },
                                )
                                .map_err(|e| format!("--swap-policy '{swap_spec}': {e}"))?
                                .spec
                            }
                            None => swap_spec.clone(),
                        };
                        let swap_table = CompiledTable::compile(
                            parse_policy(&resolved)
                                .map_err(|e| spec_error("swap-policy", &resolved, &e))?,
                            p.k,
                            grid,
                            grid,
                        );
                        // Write-ahead: journal the generation record before
                        // any arrival is served under it.
                        let record = eirs_repro::serve::SwapRecord {
                            seq: engine.ingested(),
                            generation: engine.generation() + 1,
                            hash: swap_table.identity_hash(),
                            spec: resolved.clone(),
                        };
                        if let Some(w) = wal.as_mut() {
                            w.append_swap(&record)
                                .map_err(|e| format!("cannot write journal: {e}"))?;
                        }
                        let installed = engine.install_table(swap_table, &resolved);
                        debug_assert_eq!(installed, record);
                        Ok(())
                    };
                let mut swapped = false;
                let mut buffer: Vec<eirs_repro::sim::Arrival> = Vec::with_capacity(batch);
                loop {
                    if !swapped && engine.ingested() == barrier {
                        install(&mut engine, &mut wal)?;
                        swapped = true;
                    }
                    // Never fill past the barrier: the swap happens
                    // between batches, so a batch boundary must land on
                    // it exactly.
                    let limit = if swapped {
                        batch
                    } else {
                        batch.min((barrier - engine.ingested()) as usize)
                    };
                    buffer.clear();
                    let mut ended = false;
                    while buffer.len() < limit {
                        match source.next_arrival() {
                            Some(a) if a.time <= duration => buffer.push(a),
                            _ => {
                                ended = true;
                                break;
                            }
                        }
                    }
                    if !buffer.is_empty() {
                        if let Some(w) = wal.as_mut() {
                            w.append_batch(engine.ingested(), &buffer)
                                .map_err(|e| format!("cannot write journal: {e}"))?;
                        }
                        engine.ingest_batch(&buffer);
                    }
                    if ended {
                        // The stream ended before the barrier: the swap
                        // still takes effect, journaled at the actual
                        // end-of-stream barrier.
                        if !swapped {
                            install(&mut engine, &mut wal)?;
                        }
                        break;
                    }
                }
                let n = engine.ingested();
                (engine, n, false, None)
            } else {
                let mut engine = ServeEngine::new(table, config);
                match journal_path {
                    Some(jpath) => {
                        let file = std::fs::File::create(jpath)
                            .map_err(|e| format!("cannot create journal {jpath}: {e}"))?;
                        // Record the boot-policy spec in the header so
                        // --replay-journal can rebuild the run from the
                        // journal alone.
                        let mut wal = JournalWriter::create_with_spec(
                            std::io::BufWriter::new(file),
                            &engine,
                            Some(&policy_spec),
                        )
                        .map_err(|e| format!("cannot write journal {jpath}: {e}"))?;
                        let outcome = run_journaled(
                            &mut engine,
                            source.as_mut(),
                            duration,
                            &mut wal,
                            RunControls {
                                snapshot_at,
                                kill_after,
                            },
                        )
                        .map_err(|e| format!("cannot write journal {jpath}: {e}"))?;
                        if let Some(snap) = &outcome.snapshot {
                            let spath = snapshot_path.expect("validated above");
                            snap.save(std::path::Path::new(spath))
                                .map_err(|e| format!("cannot write snapshot {spath}: {e}"))?;
                        }
                        (engine, outcome.ingested, outcome.killed, None)
                    }
                    None => {
                        let n = engine.run(source.as_mut(), duration);
                        (engine, n, false, None)
                    }
                }
            };
            let wall = start.elapsed().as_secs_f64();
            let totals = engine.metrics_total();
            let per_shard = engine.metrics_per_shard();
            // Merged response quantiles come from the exactly-mergeable
            // histogram; per-shard ones from each shard's P² sketch.
            let response_hist = engine.response_histogram();
            if eirs_repro::obs::enabled() {
                eirs_repro::obs::publish_histogram(
                    "serve.decision_latency",
                    &engine.decision_latency(),
                );
                eirs_repro::obs::publish_histogram("serve.response_time", &response_hist);
            }
            let digest = format!("0x{:016x}", engine.decision_digest());
            let decisions_per_sec = totals.decisions as f64 / wall;
            // A plain `--snapshot` (no boundary flags) keeps its original
            // meaning: save the final engine state. A killed run saves
            // nothing extra (the crash state lives in the WAL), and a
            // recovery run treats the snapshot path as input only.
            if !recover_mode && !killed && snapshot_at.is_none() {
                if let Some(path) = snapshot_path {
                    engine
                        .snapshot()
                        .save(std::path::Path::new(path))
                        .map_err(|e| format!("cannot write snapshot {path}: {e}"))?;
                }
            }
            let churn_identity = engine.config().churn.map(|c| c.identity());
            if json_mode(&args)? {
                let mut cfg = Json::object();
                cfg.set("route_shards", route)
                    .set("shard_workers", workers)
                    .set("batch", batch)
                    .set("duration", duration)
                    .set("seed", seed)
                    .set("grid", grid)
                    .set(
                        "churn",
                        match &churn_identity {
                            Some(id) => Json::from(id.as_str()),
                            None => Json::Null,
                        },
                    )
                    .set(
                        "shed_limit",
                        match shed_limit {
                            Some(s) => Json::from(s as u64),
                            None => Json::Null,
                        },
                    );
                let mut tbl = Json::object();
                tbl.set("rows", table_shape.0)
                    .set("cols", table_shape.1)
                    .set("bytes", table_shape.2);
                let mut tot = Json::object();
                tot.set("arrivals", totals.arrivals)
                    .set("completions", totals.completions)
                    .set("decisions", totals.decisions)
                    .set("overflow_lookups", totals.overflow_lookups)
                    .set("degraded_decisions", totals.degraded_decisions)
                    .set("rejections", totals.rejections)
                    .set("preemptions", totals.preemptions)
                    .set("wall_s", wall)
                    .set("decisions_per_sec", decisions_per_sec);
                let merged_tails = if response_hist.is_empty() {
                    Json::Null
                } else {
                    let mut q = Json::object();
                    q.set("p50", response_hist.quantile_seconds(0.5))
                        .set("p95", response_hist.quantile_seconds(0.95))
                        .set("p99", response_hist.quantile_seconds(0.99))
                        .set("p999", response_hist.quantile_seconds(0.999));
                    q
                };
                tot.set("response_quantiles", merged_tails);
                let mut rows = Vec::with_capacity(per_shard.len());
                for (idx, m) in per_shard.iter().enumerate() {
                    let mut r = Json::object();
                    r.set("shard", idx)
                        .set("arrivals", m.arrivals)
                        .set("completions", m.completions)
                        .set("decisions", m.decisions)
                        .set("overflow_lookups", m.overflow_lookups)
                        .set("degraded_decisions", m.degraded_decisions)
                        .set("rejections", m.rejections)
                        .set("preemptions", m.preemptions)
                        .set("peak_inelastic", m.peak_inelastic)
                        .set("peak_elastic", m.peak_elastic)
                        .set(
                            "mean_response",
                            if m.completions > 0 {
                                Json::from(m.mean_response())
                            } else {
                                Json::Null
                            },
                        )
                        .set("sim_time", m.sim_time);
                    let (p50, p95, p99) = m.response_quantiles();
                    for (key, value) in [
                        ("response_p50", p50),
                        ("response_p95", p95),
                        ("response_p99", p99),
                    ] {
                        r.set(
                            key,
                            if m.completions > 0 {
                                Json::from(value)
                            } else {
                                Json::Null
                            },
                        );
                    }
                    rows.push(r);
                }
                let mut doc = Json::object();
                doc.set("schema", "eirs-serve/v1")
                    .set("params", params_json(&p))
                    .set("policy", policy_name)
                    .set("workload", workload.name.clone())
                    .set("config", cfg)
                    .set("table", tbl)
                    .set("totals", tot)
                    .set("decision_digest", digest)
                    .set("killed", killed)
                    .set("recovered", recover_mode)
                    .set(
                        "replayed",
                        match replayed {
                            Some(n) => Json::from(n),
                            None => Json::Null,
                        },
                    )
                    .set("generation", engine.generation() as u64)
                    .set("swaps", swap_rows(engine.swap_log()))
                    .set("shards", rows);
                print!("{}", doc.pretty());
                return Ok(());
            }
            println!(
                "serve: policy={policy_name} workload={} (k={} rho={:.3} per shard)",
                workload.name,
                p.k,
                p.load()
            );
            println!(
                "       route_shards={route} workers={workers} batch={batch} duration={duration} seed={seed}"
            );
            if let Some(id) = &churn_identity {
                println!(
                    "churn: {id}{}",
                    match shed_limit {
                        Some(s) => format!(" shed_limit={s}"),
                        None => String::new(),
                    }
                );
            }
            println!(
                "table: {}x{} grid ({} bytes); clamp region delegates to the policy",
                table_shape.0, table_shape.1, table_shape.2
            );
            if let Some(n) = replayed {
                println!("recovery: restored snapshot and replayed {n} journaled arrivals");
            }
            println!(
                "run:   {ingested} arrivals, {} completions, {} decisions in {wall:.3} s  \
                 ({:.2}M decisions/sec, {} overflow lookups)",
                totals.completions,
                totals.decisions,
                decisions_per_sec / 1e6,
                totals.overflow_lookups
            );
            if totals.degraded_decisions > 0 || totals.rejections > 0 || totals.preemptions > 0 {
                println!(
                    "faults: {} degraded decisions, {} rejections (shed), {} preempt-restarts",
                    totals.degraded_decisions, totals.rejections, totals.preemptions
                );
            }
            if killed {
                println!(
                    "killed: after {ingested} arrivals (no drain; recover with \
                     --recover true --snapshot ... --journal ...)"
                );
            }
            print_swap_log(engine.swap_log());
            println!("digest: {digest}");
            if !response_hist.is_empty() {
                println!(
                    "tails: response p50={:.4} p95={:.4} p99={:.4} p999={:.4} (merged across shards)",
                    response_hist.quantile_seconds(0.5),
                    response_hist.quantile_seconds(0.95),
                    response_hist.quantile_seconds(0.99),
                    response_hist.quantile_seconds(0.999)
                );
            }
            println!("shard  arrivals  completions  decisions  degraded  rejected  peak(i,j)  mean T    now");
            for (idx, m) in per_shard.iter().enumerate() {
                println!(
                    "{idx:>5}  {:>8}  {:>11}  {:>9}  {:>8}  {:>8}  ({:>3},{:>3})  {:<8.4}  {:.2}",
                    m.arrivals,
                    m.completions,
                    m.decisions,
                    m.degraded_decisions,
                    m.rejections,
                    m.peak_inelastic,
                    m.peak_elastic,
                    m.mean_response(),
                    m.sim_time
                );
            }
            Ok(())
        }
        "client" => {
            use eirs_repro::net::{run_client, ClientConfig};

            let Some(addr) = args.get("connect") else {
                return Err(
                    "client needs --connect <host:port> (a `serve --listen` address)".into(),
                );
            };
            let p = parse_params(&args)?;
            let workload = workload_flag(&args)?;
            let clients = args.get_parsed_or("clients", 1usize).map_err(stringify)?;
            if clients < 1 {
                return Err("--clients must be at least 1".into());
            }
            let seed = args.get_parsed_or("seed", 1u64).map_err(stringify)?;
            // Same horizon convention as serve: trace files replay whole
            // by default, live generators need a finite horizon.
            let whole_trace = matches!(
                workload.arrivals,
                eirs_repro::core::scenario::ArrivalSpec::TraceFile { .. }
            );
            let duration = match args.get("duration") {
                Some(_) => args.get_parsed_or("duration", 0.0f64).map_err(stringify)?,
                None if whole_trace => f64::INFINITY,
                None => 500.0,
            };
            if duration.is_nan()
                || duration <= 0.0
                || (args.get("duration").is_some() && !duration.is_finite())
            {
                return Err(format!(
                    "--duration must be a positive time, got {duration}"
                ));
            }
            let swap_spec = args.get("swap").map(str::to_string);
            let swap_after = match args.get("swap-after") {
                Some(_) => Some(args.get_parsed_or("swap-after", 0u64).map_err(stringify)?),
                None => None,
            };
            if swap_after.is_some() && swap_spec.is_none() {
                return Err("--swap-after needs --swap <spec> (the policy to request)".into());
            }
            // The whole workload is materialized up front so request ids
            // (global arrival indices) are assigned before the lanes
            // split across connections.
            let mut source = workload.build_source(&p, seed, duration)?;
            let mut arrivals = Vec::new();
            while let Some(a) = source.next_arrival() {
                if a.time > duration {
                    break;
                }
                arrivals.push(a);
            }
            if arrivals.is_empty() {
                return Err("the workload produced no arrivals to send".into());
            }
            let swap = swap_spec.map(|spec| {
                // Default barrier: mid-stream.
                (swap_after.unwrap_or(arrivals.len() as u64 / 2), spec)
            });
            let start = std::time::Instant::now();
            let report = run_client(addr, &arrivals, &ClientConfig { clients, swap })?;
            let wall = start.elapsed().as_secs_f64();
            if json_mode(&args)? {
                let lat = if report.latency.is_empty() {
                    Json::Null
                } else {
                    let mut q = Json::object();
                    q.set("count", report.latency.count())
                        .set("mean_s", report.latency.mean_seconds())
                        .set("p50_s", report.latency.quantile_seconds(0.5))
                        .set("p95_s", report.latency.quantile_seconds(0.95))
                        .set("p99_s", report.latency.quantile_seconds(0.99));
                    q
                };
                let mut doc = Json::object();
                doc.set("schema", "eirs-client/v1")
                    .set("connect", addr)
                    .set("clients", clients)
                    .set("workload", workload.name.clone())
                    .set("arrivals", report.arrivals)
                    .set("decisions", report.decisions)
                    .set("admitted", report.admitted)
                    .set("net_sheds", report.net_sheds)
                    .set("engine_rejections", report.engine_rejections)
                    .set("max_generation", report.max_generation as u64)
                    .set(
                        "control_replies",
                        report
                            .control_replies
                            .iter()
                            .map(|s| Json::from(s.as_str()))
                            .collect::<Vec<_>>(),
                    )
                    .set(
                        "server_errors",
                        report
                            .server_errors
                            .iter()
                            .map(|s| Json::from(s.as_str()))
                            .collect::<Vec<_>>(),
                    )
                    .set("wall_s", wall)
                    .set("requests_per_sec", report.decisions as f64 / wall)
                    .set("latency", lat);
                print!("{}", doc.pretty());
                return Ok(());
            }
            println!(
                "client: {clients} connections -> {addr}, workload={} ({} arrivals)",
                workload.name, report.arrivals
            );
            println!(
                "decisions: {} ({} admitted, {} shed, {} rejected) in {wall:.3} s ({:.0} req/s)",
                report.decisions,
                report.admitted,
                report.net_sheds,
                report.engine_rejections,
                report.decisions as f64 / wall
            );
            if !report.latency.is_empty() {
                println!(
                    "latency: mean={:.2}ms p50={:.2}ms p95={:.2}ms p99={:.2}ms",
                    report.latency.mean_seconds() * 1e3,
                    report.latency.quantile_seconds(0.5) * 1e3,
                    report.latency.quantile_seconds(0.95) * 1e3,
                    report.latency.quantile_seconds(0.99) * 1e3
                );
            }
            for reply in &report.control_replies {
                println!("control: {reply}");
            }
            for e in &report.server_errors {
                println!("server error: {e}");
            }
            println!(
                "generation: {} (highest seen in any decision)",
                report.max_generation
            );
            Ok(())
        }
        "counterexample" => {
            let ratio = args.get_parsed_or("ratio", 2.0).map_err(stringify)?;
            let g_if = expected_total_response_closed(&InelasticFirst, 2, 2, 1, 1.0, ratio)
                .map_err(|e| e.to_string())?;
            let g_ef = expected_total_response_closed(&ElasticFirst, 2, 2, 1, 1.0, ratio)
                .map_err(|e| e.to_string())?;
            println!("Theorem 6 closed system (k=2, start 2 inelastic + 1 elastic, mu_i=1, mu_e={ratio}):");
            println!("E[sum T] IF = {g_if:.6}");
            println!("E[sum T] EF = {g_ef:.6}");
            println!(
                "better: {}",
                if g_ef < g_if {
                    "Elastic-First"
                } else {
                    "Inelastic-First (or tie)"
                }
            );
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}
