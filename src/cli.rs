//! Flag parsing for the `eirs` command-line binary.
//!
//! Deliberately minimal (the approved dependency set has no argument
//! parser): flags are `--key value` pairs collected into a map, with typed
//! accessors and defaults. The binary in `src/bin/eirs.rs` stays a thin
//! wiring layer over the library.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    /// First positional argument (the subcommand).
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Errors from flag parsing or typed access.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` without a value, or a stray positional token.
    Malformed(String),
    /// A flag failed to parse as the requested type.
    BadValue {
        /// Flag name.
        flag: String,
        /// Raw value.
        value: String,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "missing subcommand"),
            CliError::Malformed(tok) => write!(f, "malformed argument: {tok}"),
            CliError::BadValue { flag, value } => {
                write!(f, "cannot parse --{flag} value '{value}'")
            }
        }
    }
}

impl std::error::Error for CliError {}

impl CliArgs {
    /// Parses `args` (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut it = args.into_iter();
        let command = it.next().ok_or(CliError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(CliError::Malformed(command));
        }
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(CliError::Malformed(tok));
            };
            let value = it.next().ok_or_else(|| CliError::Malformed(tok.clone()))?;
            flags.insert(name.to_string(), value);
        }
        Ok(Self { command, flags })
    }

    /// Raw string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// String flag with default.
    pub fn get_or(&self, name: &str, default: &str) -> String {
        self.get(name).unwrap_or(default).to_string()
    }

    /// Typed flag with default.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| CliError::BadValue {
                flag: name.to_string(),
                value: raw.to_string(),
            }),
        }
    }

    /// The global `--threads N` flag: the sweep worker count, as an
    /// explicit alternative to the `EIRS_THREADS` environment variable.
    /// `None` when absent; zero is rejected (a sweep needs at least one
    /// worker).
    pub fn threads(&self) -> Result<Option<usize>, CliError> {
        match self.get("threads") {
            None => Ok(None),
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Some(n)),
                _ => Err(CliError::BadValue {
                    flag: "threads".to_string(),
                    value: raw.to_string(),
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliArgs, CliError> {
        CliArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["analyze", "--k", "4", "--rho", "0.7"]).unwrap();
        assert_eq!(a.command, "analyze");
        assert_eq!(a.get("k"), Some("4"));
        assert_eq!(a.get_parsed_or("rho", 0.0).unwrap(), 0.7);
        assert_eq!(a.get_parsed_or::<u32>("k", 1).unwrap(), 4);
    }

    #[test]
    fn defaults_apply_for_missing_flags() {
        let a = parse(&["compare"]).unwrap();
        assert_eq!(a.get_parsed_or("k", 4u32).unwrap(), 4);
        assert_eq!(a.get_or("policy", "if"), "if");
    }

    #[test]
    fn rejects_missing_command() {
        assert_eq!(parse(&[]), Err(CliError::MissingCommand));
        assert!(matches!(parse(&["--k", "4"]), Err(CliError::Malformed(_))));
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(matches!(
            parse(&["analyze", "--k"]),
            Err(CliError::Malformed(_))
        ));
    }

    #[test]
    fn threads_flag_parses_and_validates() {
        // Absent: no override requested.
        assert_eq!(parse(&["analyze"]).unwrap().threads(), Ok(None));
        // Present: explicit worker count.
        let a = parse(&["compare", "--threads", "6"]).unwrap();
        assert_eq!(a.threads(), Ok(Some(6)));
        // Zero workers and garbage are rejected.
        for bad in ["0", "many", "-2"] {
            let a = parse(&["compare", "--threads", bad]).unwrap();
            assert!(
                matches!(a.threads(), Err(CliError::BadValue { .. })),
                "--threads {bad} should be rejected"
            );
        }
    }

    #[test]
    fn rejects_unparsable_value() {
        let a = parse(&["analyze", "--k", "four"]).unwrap();
        assert!(matches!(
            a.get_parsed_or::<u32>("k", 1),
            Err(CliError::BadValue { .. })
        ));
    }
}
