//! # eirs — Elastic/Inelastic Resource Scheduling
//!
//! Workspace façade for the reproduction of Berg, Harchol-Balter, Moseley,
//! Wang & Whitehouse, *"Optimal Resource Allocation for Elastic and
//! Inelastic Jobs"* (SPAA 2020). Re-exports every sub-crate under one roof
//! so examples and downstream users can depend on a single package:
//!
//! * [`core`] (`eirs-core`) — model parameters, the shared policy layer
//!   (`core::policy`), the policy-generic response-time analysis
//!   (`core::analysis::analyze_policy`), the Theorem 6 counterexample,
//!   experiment parameterizations;
//! * [`sim`] (`eirs-sim`) — allocation policies and the discrete-event /
//!   state-level simulators;
//! * [`markov`] (`eirs-markov`) — CTMC and QBD matrix-analytic solvers;
//! * [`queueing`] (`eirs-queueing`) — M/M/1, M/M/k, phase-type
//!   distributions, Coxian busy-period fitting;
//! * [`mdp`] (`eirs-mdp`) — truncated average-cost MDP (numerical
//!   optimality), bridged into the policy layer via
//!   `MdpSolution::tabular_policy`;
//! * [`opt`] (`eirs-opt`) — derivative-free policy optimization over the
//!   shared families (parameter spaces, analytic/CRN-DES objectives,
//!   golden-section / Nelder–Mead / pattern-search / cross-entropy),
//!   certified against the MDP optimum;
//! * [`serve`] (`eirs-serve`) — the online allocation-decision server:
//!   policies compiled to O(1) lookup tables, a sharded cluster engine
//!   replaying live event streams bit-identically to the DES, per-shard
//!   ops metrics, and snapshot/restore;
//! * [`net`] (`eirs-net`) — the networked serving front end: the
//!   `eirsnp01` framed TCP protocol, bounded per-shard ingest queues,
//!   the load-generating client, and atomic journaled policy hot-swap
//!   (observe → re-optimize → redeploy);
//! * [`bench`](mod@bench) (`eirs-bench`) — figure/table regeneration harnesses and
//!   the `BENCH_*.json` writers (the CLI's `--json true` mode reuses its
//!   JSON serializer);
//! * [`srpt`] (`eirs-srpt`) — Appendix A batch scheduling and dual fitting;
//! * [`multiclass`] (`eirs-multiclass`) — the Section 6 extension: many
//!   classes with bounded elasticity;
//! * [`numerics`] (`eirs-numerics`) — the dense linear-algebra substrate.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for paper-vs-measured
//! results of every figure.

pub mod cli;

pub use eirs_bench as bench;
pub use eirs_core as core;
pub use eirs_markov as markov;
pub use eirs_mdp as mdp;
pub use eirs_multiclass as multiclass;
pub use eirs_net as net;
pub use eirs_numerics as numerics;
pub use eirs_obs as obs;
pub use eirs_opt as opt;
pub use eirs_queueing as queueing;
pub use eirs_serve as serve;
pub use eirs_sim as sim;
pub use eirs_srpt as srpt;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use eirs_core::prelude::*;
    pub use eirs_queueing::{Exponential, MMk, MM1};
    pub use eirs_sim::des::{run_markovian, DesConfig, Simulation, StopRule};
    pub use eirs_sim::{Arrival, ArrivalTrace, JobClass, PoissonStream, WorkTrajectory};
}
