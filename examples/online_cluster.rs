//! Online cluster serving: search a policy, compile it, serve a live
//! stream, snapshot mid-flight, and restore bit-identically.
//!
//! ```text
//! cargo run --release --example online_cluster
//! ```
//!
//! The full loop the serve layer closes: `eirs_opt` finds a good
//! switching curve for the open regime (µ_I < µ_E, where no closed-form
//! optimum is known), the policy table compiler bakes it into an O(1)
//! decision table, and the sharded engine replays a bursty arrival
//! stream against it — with ops metrics, a decision digest, and a
//! snapshot/restore round trip along the way.

use eirs_repro::core::analysis::AnalyzeOptions;
use eirs_repro::core::scenario::{ArrivalSpec, ServiceSpec, Workload};
use eirs_repro::opt::optim::{optimize, Budget, Method};
use eirs_repro::opt::space::SwitchingCurveFamily;
use eirs_repro::opt::{AnalyticObjective, ParamSpace};
use eirs_repro::prelude::*;
use eirs_repro::serve::{CompiledTable, EngineConfig, ServeEngine};

fn main() {
    // ---- 1. Search: a switching curve for the open regime ------------
    let params = SystemParams::with_equal_lambdas(4, 0.5, 1.0, 0.7).expect("stable parameters");
    let family = SwitchingCurveFamily {
        max_intercept: 12,
        max_slope: 3.0,
    };
    let objective = AnalyticObjective::poisson_exp(params, AnalyzeOptions::default());
    let report =
        optimize(&family, &objective, Method::Auto, &Budget::default()).expect("search converges");
    println!(
        "searched: {} -> E[T] = {:.4}  ({} evaluations)",
        report.best_policy, report.best_value, report.evaluations
    );
    let policy = family.decode(&report.best_x);

    // ---- 2. Compile: bake the winner into a decision table -----------
    let table = CompiledTable::compile(policy, params.k, 64, 64);
    println!(
        "compiled: {} — {}x{} grid, {} bytes, clamp region delegates to the policy",
        table.name(),
        table.max_i() + 1,
        table.max_j() + 1,
        table.table_bytes()
    );

    // ---- 3. Serve: a bursty stream over 8 hash-routed shards ---------
    // The stream carries 8x the single-cluster rate so each of the 8
    // independent k-server shards runs at the configured load.
    let route_shards = 8usize;
    let workload = Workload::new(
        ArrivalSpec::Bursty { mean_burst: 4.0 },
        ServiceSpec::Exponential,
        ServiceSpec::Exponential,
    );
    let scaled = SystemParams::new(
        params.k * route_shards as u32,
        params.lambda_i * route_shards as f64,
        params.lambda_e * route_shards as f64,
        params.mu_i,
        params.mu_e,
    )
    .expect("scaled stream stays stable");
    let horizon = 2_000.0;
    let mut source = workload
        .build_source(&scaled, 7, horizon)
        .expect("bursty source builds");
    let config = EngineConfig::new(params.k)
        .route_shards(route_shards)
        .workers(4)
        .batch(1024);
    let mut engine = ServeEngine::new(table, config);
    let start = std::time::Instant::now();
    let ingested = engine.run(source.as_mut(), horizon);
    let wall = start.elapsed().as_secs_f64();
    let totals = engine.metrics_total();
    println!(
        "served:   {ingested} arrivals, {} decisions in {:.3} s ({:.2}M decisions/sec)",
        totals.decisions,
        wall,
        totals.decisions as f64 / wall / 1e6
    );
    println!(
        "ops:      mean T = {:.4}, peak queues ({}, {}), {} overflow lookups, digest 0x{:016x}",
        totals.mean_response(),
        totals.peak_inelastic,
        totals.peak_elastic,
        totals.overflow_lookups,
        engine.decision_digest()
    );

    // ---- 4. Snapshot / restore: continuation is bit-identical --------
    let trace = ArrivalTrace::record_poisson(
        scaled.lambda_i,
        scaled.lambda_e,
        Box::new(Exponential::new(scaled.mu_i)),
        Box::new(Exponential::new(scaled.mu_e)),
        11,
        100.0,
    );
    let fresh_table = || CompiledTable::compile(family.decode(&report.best_x), params.k, 64, 64);
    let mut live = ServeEngine::new(fresh_table(), config);
    let half = trace.len() / 2;
    live.ingest_batch(&trace.arrivals()[..half]);
    let snap = live.snapshot();
    let mut restored =
        ServeEngine::from_snapshot(fresh_table(), config, &snap).expect("snapshot restores");
    live.ingest_batch(&trace.arrivals()[half..]);
    live.drain();
    restored.ingest_batch(&trace.arrivals()[half..]);
    restored.drain();
    assert_eq!(restored.decision_digest(), live.decision_digest());
    assert_eq!(restored.metrics_total(), live.metrics_total());
    println!(
        "snapshot: restored engine continued to the same digest 0x{:016x} — bit-identical",
        restored.decision_digest()
    );
}
