//! Capacity planning with the analytic solver (Figure 6 as a design tool).
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//!
//! How many servers does a mixed elastic/inelastic workload need to meet a
//! mean-response-time target? Because the matrix-analytic solver evaluates
//! a configuration in milliseconds, it can sweep cluster sizes and policies
//! directly — no simulation required — and expose how the policy choice
//! changes the answer (sometimes by whole servers).

use eirs_repro::prelude::*;

/// Finds the smallest k meeting the SLA under the given policy's analysis.
fn min_servers(
    analyze: &dyn Fn(&SystemParams) -> f64,
    lambda_i: f64,
    lambda_e: f64,
    mu_i: f64,
    mu_e: f64,
    sla: f64,
) -> Option<(u32, f64)> {
    for k in 1..=256u32 {
        match SystemParams::new(k, lambda_i, lambda_e, mu_i, mu_e) {
            Ok(p) => {
                let t = analyze(&p);
                if t <= sla {
                    return Some((k, t));
                }
            }
            Err(_) => continue, // unstable at this k: need more servers
        }
    }
    None
}

fn main() {
    // Demand: 6 inelastic and 6 elastic jobs per second; inelastic jobs are
    // small (mean 0.5s), elastic jobs are large (mean 2s of total work).
    let (lambda_i, lambda_e): (f64, f64) = (6.0, 6.0);
    let (mu_i, mu_e): (f64, f64) = (2.0, 0.5);
    println!(
        "Workload: λ_I = {lambda_i}/s (mean {:.1}s), λ_E = {lambda_e}/s (mean {:.1}s of work)",
        1.0 / mu_i,
        1.0 / mu_e
    );
    let min_stable = (lambda_i / mu_i + lambda_e / mu_e).ceil() as u32;
    println!("Bare stability needs k > {min_stable} servers.\n");

    let if_mrt = |p: &SystemParams| {
        analyze_inelastic_first(p)
            .expect("IF analysis")
            .mean_response
    };
    let ef_mrt = |p: &SystemParams| analyze_elastic_first(p).expect("EF analysis").mean_response;

    println!("  SLA E[T] ≤   k (IF)   achieved    k (EF)   achieved");
    for sla in [5.0, 3.0, 2.5, 2.2, 2.1] {
        let r_if = min_servers(&if_mrt, lambda_i, lambda_e, mu_i, mu_e, sla);
        let r_ef = min_servers(&ef_mrt, lambda_i, lambda_e, mu_i, mu_e, sla);
        let fmt = |r: Option<(u32, f64)>| match r {
            Some((k, t)) => format!("{k:<9}{t:<10.3}"),
            None => "  (>256)          ".to_string(),
        };
        println!("  {sla:<13.1}{}  {}", fmt(r_if), fmt(r_ef));
    }

    println!("\nFigure-6-style scaling at fixed load (ρ = 0.9, µ_I = 0.25, µ_E = 1):");
    println!("  k      E[T] IF    E[T] EF");
    for k in (2..=16).step_by(2) {
        let p = SystemParams::with_equal_lambdas(k, 0.25, 1.0, 0.9).expect("stable");
        println!("  {k:<7}{:<11.3}{:<11.3}", if_mrt(&p), ef_mrt(&p));
    }
    println!(
        "\nEven at k = 16 the gap between the policies stays large — the\n\
         paper's Figure 6 message: more servers do not wash out a bad\n\
         allocation policy when load is held constant."
    );
}
