//! Beyond two classes: a heterogeneous cluster with bounded elasticity
//! (the paper's Section 6 extension, implemented in `eirs-multiclass`).
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```
//!
//! A 16-server cluster runs three kinds of work:
//!
//! * **queries** — tiny, strictly sequential (cap 1);
//! * **analytics** — mid-size, parallelizable up to 4 servers (cap 4);
//! * **batch** — huge, parallelizable across the whole cluster (cap 16).
//!
//! The paper's IF/EF dichotomy generalizes to priority *orders* over
//! classes. This example evaluates every allocation order exactly on the
//! truncated CTMC, plus a water-filling fair share via simulation, and
//! shows the paper's lesson surviving the generalization: serve the least
//! flexible (and small) work first; the most flexible class mops up the
//! leftovers at almost no cost to itself.

use eirs_repro::multiclass::{
    evaluate_multiclass, least_flexible_first, most_flexible_first, simulate_multiclass, ClassSpec,
    MultiPolicy, MultiSimConfig, MultiSystem, PriorityOrder, WaterFilling,
};

fn build_system() -> MultiSystem {
    MultiSystem::new(
        16,
        vec![
            // name, λ (jobs/s), µ (1/mean size), cap
            ClassSpec::exponential("queries", 6.0, 4.0, 1),
            ClassSpec::exponential("analytics", 1.5, 0.5, 4),
            ClassSpec::exponential("batch", 0.4, 0.1, 16),
        ],
    )
}

fn main() {
    let system = build_system();
    println!(
        "Heterogeneous cluster: k = {}, rho = {:.2}",
        system.k,
        system.load()
    );
    for c in &system.classes {
        println!(
            "  class {:<10} λ = {:<5} mean size = {:<5} cap = {}",
            c.name,
            c.lambda,
            c.mean_size(),
            c.cap
        );
    }

    // All six priority orders, evaluated exactly on the truncated chain.
    println!("\nExact truncated-CTMC evaluation of all priority orders:");
    println!("  order                          E[T]     E[T_qry]  E[T_ana]  E[T_bat]");
    let names = ["queries", "analytics", "batch"];
    let mut best: Option<(String, f64)> = None;
    for perm in [
        [0usize, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ] {
        let label = format!(
            "{} > {} > {}",
            names[perm[0]], names[perm[1]], names[perm[2]]
        );
        let policy = PriorityOrder::new(perm.to_vec(), label.clone());
        let a = evaluate_multiclass(&system, &policy, &[60, 40, 30], 1e-7, 300_000)
            .expect("evaluation converges");
        println!(
            "  {label:<30} {:<8.3} {:<9.3} {:<9.3} {:<9.3}",
            a.overall_mean_response, a.mean_response[0], a.mean_response[1], a.mean_response[2]
        );
        if best
            .as_ref()
            .is_none_or(|(_, t)| a.overall_mean_response < *t)
        {
            best = Some((label, a.overall_mean_response));
        }
    }
    let (best_label, best_t) = best.expect("some order evaluated");
    println!("  best order: {best_label} (E[T] = {best_t:.3})");

    let lff = least_flexible_first(&system);
    let mff = most_flexible_first(&system);
    println!(
        "\n  Least-Flexible-First (cap-ascending: queries > analytics > batch) is\n\
         the generalization of the paper's optimal Inelastic-First;\n\
         Most-Flexible-First generalizes Elastic-First."
    );

    // Simulation adds the fair-share baseline and tail latencies.
    println!("\nSimulation (400k departures), with P99 latency per class:");
    println!("  policy                 E[T]     P99 qry   P99 ana   P99 bat   util");
    for policy in [&lff as &dyn MultiPolicy, &mff, &WaterFilling] {
        let r = simulate_multiclass(
            &system,
            policy,
            MultiSimConfig {
                seed: 42,
                warmup_departures: 50_000,
                departures: 400_000,
            },
        );
        println!(
            "  {:<22} {:<8.3} {:<9.2} {:<9.2} {:<9.2} {:.3}",
            policy.name(),
            r.mean_response,
            r.per_class[0].tail_response.2,
            r.per_class[1].tail_response.2,
            r.per_class[2].tail_response.2,
            r.utilization
        );
    }
    println!(
        "\n  Serving the rigid little queries first keeps their tail latency\n\
         close to their bare service time, while the batch class, which can\n\
         flex across every idle server, barely notices — the two-class\n\
         insight of the paper carries over unchanged."
    );
}
