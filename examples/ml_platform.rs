//! A shared ML platform: training + inference on one cluster
//! (paper Section 1.3, second example).
//!
//! ```text
//! cargo run --release --example ml_platform
//! ```
//!
//! Training jobs are elastic (distributed SGD scales across workers) and
//! large; inference requests are inelastic (single data point, one server)
//! and tiny but latency-sensitive. This example sweeps the platform load
//! and shows what each allocation policy does to *inference* latency and to
//! overall mean response time — the tension the paper resolves: giving
//! inference strict priority costs training almost nothing and is in fact
//! optimal for the overall mean.

use eirs_repro::prelude::*;

fn main() {
    let k = 32;
    // Inference: mean 0.2s of work (µ_I = 5/s). Training: mean 10 minutes
    // of single-server work (µ_E = 1/600 per second).
    let (mu_inf, mu_train) = (5.0, 1.0 / 600.0);
    println!("ML platform: k = {k} servers, inference ~Exp({mu_inf}), training ~Exp({mu_train})");
    println!();
    println!("         ------- Inelastic-First -------   -------- Elastic-First --------");
    println!("  load   E[T_inf]   E[T_train]  E[T]       E[T_inf]   E[T_train]  E[T]");

    for rho in [0.3, 0.5, 0.7, 0.8, 0.9, 0.95] {
        let params =
            SystemParams::with_equal_lambdas(k, mu_inf, mu_train, rho).expect("stable parameters");
        let a_if = analyze_inelastic_first(&params).expect("IF analysis");
        let a_ef = analyze_elastic_first(&params).expect("EF analysis");
        println!(
            "  {rho:<7.2}{:<11.4}{:<12.1}{:<11.4}{:<11.4}{:<12.1}{:<9.4}",
            a_if.mean_response_inelastic,
            a_if.mean_response_elastic,
            a_if.mean_response,
            a_ef.mean_response_inelastic,
            a_ef.mean_response_elastic,
            a_ef.mean_response,
        );
    }

    println!();
    println!(
        "Reading the table: under Inelastic-First, inference latency stays a\n\
         few hundred milliseconds even at 95% load (inference sees a private\n\
         M/M/{k}), while training times barely move relative to Elastic-First.\n\
         Because µ_I ≥ µ_E, Theorem 5 says Inelastic-First is not merely a\n\
         good SLA trade-off — it minimizes the overall mean response time."
    );

    // Tail check by simulation at 90% load: the DES records every response.
    let params = SystemParams::with_equal_lambdas(k, mu_inf, mu_train, 0.9).unwrap();
    let r = eirs_repro::sim::des::run_markovian(
        &InelasticFirst,
        params.k,
        params.lambda_i,
        params.lambda_e,
        params.mu_i,
        params.mu_e,
        11,
        50_000,
        400_000,
    );
    println!(
        "\nSimulated at ρ = 0.9 under IF: E[T_inference] = {:.4}s across {} requests.",
        r.mean_response_inelastic, r.completed[0]
    );
}
