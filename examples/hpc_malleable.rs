//! HPC scheduling with malleable jobs — the regime where Inelastic-First
//! fails (paper Sections 1.3 and 4.3).
//!
//! ```text
//! cargo run --release --example hpc_malleable
//! ```
//!
//! In HPC workloads, malleable (elastic) jobs coexist with rigid
//! single-node (inelastic) jobs, and unlike the datacenter examples it is
//! *not* clear which class is bigger. When the rigid jobs are larger on
//! average (µ_I < µ_E), Theorem 6 shows Inelastic-First loses its
//! optimality. This example maps the policy landscape in that regime:
//! analytic IF vs EF curves, the Theorem 6 closed system, and the
//! numerically-optimal MDP policy that neither matches.

use eirs_repro::core::counterexample::expected_total_response_closed;
use eirs_repro::mdp::{ef_allocation, evaluate_policy, if_allocation, solve_optimal, MdpConfig};
use eirs_repro::prelude::*;

fn main() {
    // Part 1: the Theorem 6 closed system, exactly.
    println!("Theorem 6 counterexample (k = 2, start: 2 rigid + 1 malleable, no arrivals)");
    println!("  µ_E/µ_I   E[ΣT] IF     E[ΣT] EF     better");
    for ratio in [1.0, 1.5, 2.0, 3.0, 4.0] {
        let g_if = expected_total_response_closed(&InelasticFirst, 2, 2, 1, 1.0, ratio)
            .expect("closed system solves");
        let g_ef = expected_total_response_closed(&ElasticFirst, 2, 2, 1, 1.0, ratio)
            .expect("closed system solves");
        let better = if g_ef < g_if - 1e-12 {
            "EF"
        } else {
            "IF (or tie)"
        };
        println!("  {ratio:<10.1}{g_if:<13.6}{g_ef:<13.6}{better}");
    }
    println!("  (at µ_E = 2µ_I these are the paper's 35/12 and 33/12)\n");

    // Part 2: steady state — where does EF overtake IF as rigid jobs grow?
    let k = 4;
    println!("Steady state, k = {k}, ρ = 0.9, µ_E = 1 (paper Figure 5c slice):");
    println!("  µ_I      E[T] IF     E[T] EF     winner");
    for mu_i in [0.15, 0.25, 0.5, 0.75, 1.0, 1.5] {
        let params = SystemParams::with_equal_lambdas(k, mu_i, 1.0, 0.9).expect("stable");
        let c = eirs_repro::core::experiments::compare(&params).expect("analysis");
        println!(
            "  {mu_i:<9.2}{:<12.4}{:<12.4}{:?}",
            c.mrt_if, c.mrt_ef, c.winner
        );
    }

    // Part 3: the open question — what does the *optimal* policy look like
    // when rigid jobs are larger? Solve the truncated MDP and compare.
    println!("\nNumerically optimal policy (truncated MDP, k = 2, µ_I = 0.25, µ_E = 1, ρ = 0.8):");
    let params = SystemParams::with_equal_lambdas(2, 0.25, 1.0, 0.8).expect("stable");
    let cfg = MdpConfig {
        k: params.k,
        lambda_i: params.lambda_i,
        lambda_e: params.lambda_e,
        mu_i: params.mu_i,
        mu_e: params.mu_e,
        max_i: 60,
        max_j: 60,
        allow_idling: false,
    };
    let opt = solve_optimal(&cfg, 1e-9, 500_000).expect("value iteration converges");
    let g_if = evaluate_policy(&cfg, &if_allocation(params.k), 1e-9, 500_000).unwrap();
    let g_ef = evaluate_policy(&cfg, &ef_allocation(params.k), 1e-9, 500_000).unwrap();
    let lambda = params.total_lambda();
    println!("  E[T] optimal = {:.4}", opt.mean_response(lambda));
    println!("  E[T] IF      = {:.4}", g_if / lambda);
    println!("  E[T] EF      = {:.4}", g_ef / lambda);

    // Show the optimal allocation in the low corner of the state space.
    println!("\n  Optimal servers-to-rigid in state (i rigid, j malleable):");
    print!("       ");
    for j in 0..=6 {
        print!("j={j:<3}");
    }
    println!();
    for i in 0..=6usize {
        print!("  i={i:<3}");
        for j in 0..=6usize {
            let (a, _) = opt.action(i, j);
            print!("  {a:<3}");
        }
        println!();
    }
    println!(
        "\n  With big rigid jobs the optimal policy stops matching IF\n\
         (which would always show min(i, 2)): in mixed states it diverts\n\
         servers to malleable jobs. The exact structure of the optimal\n\
         policy in this regime is the paper's open question (Section 6)."
    );
}
