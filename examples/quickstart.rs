//! Quickstart: analyze and simulate Elastic-First vs Inelastic-First.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's model (k servers, two Poisson classes with
//! exponential sizes), computes mean response times for both priority
//! policies with the matrix-analytic solver, and cross-checks one of them
//! against the discrete-event simulator.

use eirs_repro::prelude::*;

fn main() {
    // A 4-server cluster at 70% load. Inelastic jobs are 2x smaller on
    // average than elastic jobs (µ_I = 2, µ_E = 1) — the common case the
    // paper motivates with MapReduce and ML-serving workloads.
    let params = SystemParams::with_equal_lambdas(4, 2.0, 1.0, 0.7).expect("parameters are stable");
    println!(
        "System: k = {}, λ_I = λ_E = {:.4}, µ_I = {}, µ_E = {}, ρ = {:.2}",
        params.k,
        params.lambda_i,
        params.mu_i,
        params.mu_e,
        params.load()
    );
    println!();

    // Analytic mean response times (busy-period transformation + QBD).
    let a_if = analyze_inelastic_first(&params).expect("IF analysis");
    let a_ef = analyze_elastic_first(&params).expect("EF analysis");
    println!("Analysis (Section 5 of the paper):");
    println!("  policy           E[T]      E[T_I]    E[T_E]");
    println!(
        "  Inelastic-First  {:<9.4} {:<9.4} {:<9.4}",
        a_if.mean_response, a_if.mean_response_inelastic, a_if.mean_response_elastic
    );
    println!(
        "  Elastic-First    {:<9.4} {:<9.4} {:<9.4}",
        a_ef.mean_response, a_ef.mean_response_inelastic, a_ef.mean_response_elastic
    );
    println!();

    // Theorem 5: with µ_I ≥ µ_E, IF is optimal — so it must beat EF.
    assert!(a_if.mean_response <= a_ef.mean_response);
    println!(
        "µ_I ≥ µ_E, so Theorem 5 applies: Inelastic-First is optimal \
         ({:.1}% better than Elastic-First here).",
        100.0 * (a_ef.mean_response / a_if.mean_response - 1.0)
    );
    println!();

    // Cross-check with the job-level discrete-event simulator.
    println!("Simulating Inelastic-First (500k departures)…");
    let report = eirs_repro::sim::des::run_markovian(
        &InelasticFirst,
        params.k,
        params.lambda_i,
        params.lambda_e,
        params.mu_i,
        params.mu_e,
        42,      // seed
        50_000,  // warm-up departures
        500_000, // measured departures
    );
    let rel = (report.mean_response - a_if.mean_response).abs() / report.mean_response;
    println!(
        "  simulated E[T] = {:.4}  (analysis {:.4}, difference {:.2}%)",
        report.mean_response,
        a_if.mean_response,
        100.0 * rel
    );
    println!("  simulated utilization = {:.3}", report.utilization);
}
