//! MapReduce-style cluster scheduling (paper Section 1.3, first example).
//!
//! ```text
//! cargo run --release --example mapreduce
//! ```
//!
//! A cluster processes a stream of map stages (elastic: parallelize across
//! any number of servers, lots of inherent work) and reduce stages
//! (inelastic: sequential, little work). The paper's headline result says
//! the cluster should run reduce stages first — preemptive priority to the
//! inelastic jobs — and this example measures how much that buys over
//! giving priority to the big parallel maps or fair-sharing the cluster.

use eirs_repro::prelude::*;
use eirs_repro::sim::des::run_markovian;
use eirs_repro::sim::policy::AllocationPolicy;

fn main() {
    // A 16-server cluster. Reduce stages average 30 seconds of work
    // (µ_I = 2/min), map stages average 4 minutes (µ_E = 0.25/min);
    // stage arrivals are balanced so the cluster runs at 80% load.
    let k = 16;
    let (mu_reduce, mu_map) = (2.0, 0.25);
    let params =
        SystemParams::with_equal_lambdas(k, mu_reduce, mu_map, 0.8).expect("stable parameters");
    println!(
        "MapReduce cluster: k = {k}, map ~Exp(µ={mu_map}) [elastic], \
         reduce ~Exp(µ={mu_reduce}) [inelastic], ρ = {:.2}",
        params.load()
    );
    println!("Stage arrival rate: {:.3}/min per type\n", params.lambda_i);

    // Analysis for the two priority policies.
    let a_if = analyze_inelastic_first(&params).unwrap();
    let a_ef = analyze_elastic_first(&params).unwrap();

    // Simulation for all policies, including the fair-share baseline the
    // analysis does not cover.
    #[allow(clippy::type_complexity)]
    let policies: Vec<(&dyn AllocationPolicy, Option<(f64, f64, f64)>)> = vec![
        (
            &InelasticFirst,
            Some((
                a_if.mean_response,
                a_if.mean_response_inelastic,
                a_if.mean_response_elastic,
            )),
        ),
        (
            &ElasticFirst,
            Some((
                a_ef.mean_response,
                a_ef.mean_response_inelastic,
                a_ef.mean_response_elastic,
            )),
        ),
        (&FairShare, None),
    ];

    println!("                       ---- simulation ----          ---- analysis ----");
    println!("  policy               E[T]    E[T_red] E[T_map]     E[T]    E[T_red] E[T_map]");
    let mut results = Vec::new();
    for (policy, analytic) in policies {
        let r = run_markovian(
            policy,
            params.k,
            params.lambda_i,
            params.lambda_e,
            params.mu_i,
            params.mu_e,
            7,
            100_000,
            800_000,
        );
        let analytic_str = match analytic {
            Some((t, ti, te)) => format!("{t:<8.3}{ti:<9.3}{te:<8.3}"),
            None => "      (no closed form)    ".to_string(),
        };
        println!(
            "  {:<20} {:<8.3}{:<9.3}{:<9.3}    {}",
            policy.name(),
            r.mean_response,
            r.mean_response_inelastic,
            r.mean_response_elastic,
            analytic_str,
        );
        results.push((policy.name(), r.mean_response));
    }

    let best = results
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    println!(
        "\nBest policy: {} — with µ_I(reduce) ≥ µ_E(map) this is exactly what \
         Theorem 5 predicts: run the small sequential stages first and keep \
         the big parallel maps as background filler that soaks up every idle \
         server.",
        best.0
    );
}
